//! GNN epoch cost model.
//!
//! Expands a model configuration (the operator counts of Table I) over a
//! concrete graph batch into the kernel-launch sequence of one training step,
//! for both engines:
//!
//! * **DGL baseline** — per layer: a `cub` sort of edge indices, the Table I
//!   scatter ops as index-driven reads of node rows (vertex→edge dataflow),
//!   the gather ops as atomic index-driven writes (edge→vertex), dense
//!   `sgemm` projections, and elementwise neural ops.
//! * **MEGA** — per layer: the same `sgemm`/elementwise volume over the
//!   (slightly longer) path buffer, banded window reads instead of the
//!   index-driven reads, a near-sequential path→node scatter, and no sort.
//!
//! The backward pass reuses the forward sequence with reads and writes
//! mirrored, the standard 2× cost of training.

use crate::device::DeviceConfig;
use crate::profiler::Profiler;
use crate::report::ProfileReport;
use mega_core::AttentionSchedule;
use mega_graph::Graph;
use serde::{Deserialize, Serialize};

/// Operator counts of a GNN configuration (paper Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name for reports.
    pub name: String,
    /// Hidden dimension `d`.
    pub hidden_dim: usize,
    /// Number of stacked attention layers.
    pub layers: usize,
    /// Projection matrices per layer (parameter volume = `proj_per_layer`·d²).
    pub proj_per_layer: usize,
    /// Vertex→edge scatter calls per layer (Table I "Scatter(edges)").
    pub scatter_calls: usize,
    /// Edge→vertex gather calls per layer (Table I "Gather(nodes)").
    pub gather_calls: usize,
    /// Elementwise neural ops per layer (activations, norms, residuals).
    pub elementwise_calls: usize,
    /// Segment-reduction passes per layer over per-edge attention scores
    /// (softmax max/sum/normalize for GT; the gated normalizer for GCN).
    /// These run at small feature width — the worst case for index-driven
    /// access.
    pub segment_passes: usize,
}

impl ModelSpec {
    /// Gated Graph ConvNet: 5·d² parameters, ×1 scatter, ×2 gather.
    pub fn gated_gcn(hidden_dim: usize, layers: usize) -> Self {
        ModelSpec {
            name: "GCN".to_string(),
            hidden_dim,
            layers,
            proj_per_layer: 5,
            scatter_calls: 1,
            gather_calls: 2,
            elementwise_calls: 8,
            segment_passes: 1,
        }
    }

    /// Graph Transformer: 14·d² parameters, ×5 scatter, ×2 gather.
    pub fn graph_transformer(hidden_dim: usize, layers: usize) -> Self {
        ModelSpec {
            name: "GT".to_string(),
            hidden_dim,
            layers,
            proj_per_layer: 14,
            scatter_calls: 5,
            gather_calls: 2,
            elementwise_calls: 10,
            segment_passes: 3,
        }
    }

    /// Graph Attention Network (extension beyond Table I): ~3·d² parameters,
    /// ×2 scatter (source/destination score reads), ×1 gather, with the
    /// softmax's segment passes.
    pub fn gat(hidden_dim: usize, layers: usize) -> Self {
        ModelSpec {
            name: "GAT".to_string(),
            hidden_dim,
            layers,
            proj_per_layer: 3,
            scatter_calls: 2,
            gather_calls: 1,
            elementwise_calls: 5,
            segment_passes: 3,
        }
    }

    /// Trainable parameter count per layer (`proj_per_layer`·d²), the Table I
    /// "parameter volume" row.
    pub fn params_per_layer(&self) -> usize {
        self.proj_per_layer * self.hidden_dim * self.hidden_dim
    }
}

/// Which execution engine to cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Conventional graph attention via index-driven kernels.
    DglBaseline,
    /// MEGA banded attention over the path representation.
    Mega,
}

/// Flattened topology of one training batch.
#[derive(Debug, Clone)]
pub struct BatchTopology {
    /// Total nodes across the batch.
    pub n_nodes: usize,
    /// Directed adjacency slots across the batch (`2m` for undirected).
    pub n_slots: usize,
    /// Source node per slot (edge-parallel order).
    pub slot_src: Vec<usize>,
    /// Destination node per slot.
    pub slot_dst: Vec<usize>,
    /// Total path length across the batch (0 when no schedules given).
    pub path_len: usize,
    /// Window ω (max over the batch; 0 when no schedules given).
    pub window: usize,
    /// Node row for each path position.
    pub position_to_node: Vec<usize>,
    /// Active band slots across the batch (each original edge claims one;
    /// 0 when no schedules given). MEGA's symmetric diagonal reuse means
    /// edge-stream ops process `band_slots` rows where the baseline
    /// processes `n_slots = 2m` directed slots (§III-C).
    pub band_slots: usize,
}

impl BatchTopology {
    /// Builds the baseline topology from a batch of graphs.
    pub fn from_graphs(graphs: &[Graph]) -> Self {
        let mut offset = 0usize;
        let mut slot_src = Vec::new();
        let mut slot_dst = Vec::new();
        for g in graphs {
            for v in 0..g.node_count() {
                for &u in g.neighbors(v) {
                    slot_src.push(offset + u);
                    slot_dst.push(offset + v);
                }
            }
            offset += g.node_count();
        }
        BatchTopology {
            n_nodes: offset,
            n_slots: slot_src.len(),
            slot_src,
            slot_dst,
            path_len: 0,
            window: 0,
            position_to_node: Vec::new(),
            band_slots: 0,
        }
    }

    /// Extends a baseline topology with MEGA schedules (one per graph, same
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `schedules.len() != graphs.len()`.
    pub fn from_graphs_with_schedules(graphs: &[Graph], schedules: &[AttentionSchedule]) -> Self {
        assert_eq!(graphs.len(), schedules.len(), "one schedule per graph");
        let mut topo = Self::from_graphs(graphs);
        let mut offset = 0usize;
        for (g, s) in graphs.iter().zip(schedules) {
            for &v in s.gather_index() {
                topo.position_to_node.push(offset + v);
            }
            topo.window = topo.window.max(s.path().window());
            topo.band_slots += s.band().covered_edge_count();
            offset += g.node_count();
        }
        topo.path_len = topo.position_to_node.len();
        topo
    }
}

/// Feature width of per-edge attention scores (one f32 per head).
const SCORE_WIDTH: usize = 8;

/// The per-epoch cost of a (model, engine, batch) combination.
#[derive(Debug, Clone)]
pub struct EpochCost {
    /// Simulated seconds for one training step (one batch).
    pub step_seconds: f64,
    /// Simulated seconds for the full epoch.
    pub epoch_seconds: f64,
    /// Steps per epoch used for scaling.
    pub steps: usize,
    /// Profile of the simulated step.
    pub report: ProfileReport,
}

/// Costs GNN training steps on a simulated device.
#[derive(Debug, Clone)]
pub struct GnnCostModel {
    device: DeviceConfig,
    spec: ModelSpec,
    engine: EngineKind,
}

impl GnnCostModel {
    /// A cost model for `spec` running on `device` with `engine`.
    pub fn new(device: DeviceConfig, spec: ModelSpec, engine: EngineKind) -> Self {
        GnnCostModel {
            device,
            spec,
            engine,
        }
    }

    /// The model spec.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The engine.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Simulates one training step (forward + backward) on `profiler`.
    ///
    /// # Panics
    ///
    /// Panics if `engine` is [`EngineKind::Mega`] but `topo` carries no path
    /// (built without schedules).
    pub fn simulate_step(&self, profiler: &mut Profiler, topo: &BatchTopology) {
        match self.engine {
            EngineKind::DglBaseline => self.simulate_step_dgl(profiler, topo),
            EngineKind::Mega => self.simulate_step_mega(profiler, topo),
        }
    }

    fn simulate_step_dgl(&self, p: &mut Profiler, topo: &BatchTopology) {
        let d = self.spec.hidden_dim;
        let nodes = p.alloc(topo.n_nodes * d * 4);
        let edges = p.alloc(topo.n_slots * d * 4);
        let weights = p.alloc(d * d * 4);
        p.launch_memcpy(nodes, topo.n_nodes * d * 4);
        for _layer in 0..self.spec.layers {
            // Forward + backward: mirrored index traffic, 2x dense volume.
            for pass in 0..2 {
                p.launch_sort(edges, topo.n_slots);
                for _ in 0..self.spec.scatter_calls {
                    // Vertex→edge: read node rows by index. Frameworks
                    // materialize every op output in a fresh tensor, so the
                    // cache churns between kernels.
                    let src = p.alloc(topo.n_nodes * d * 4);
                    p.launch_gather(src, &topo.slot_src, d, topo.n_slots);
                }
                for _ in 0..self.spec.gather_calls {
                    // Edge→vertex: atomic writes to node rows by index.
                    let dst = p.alloc(topo.n_nodes * d * 4);
                    p.launch_scatter(dst, &topo.slot_dst, d, topo.n_nodes);
                }
                for _ in 0..self.spec.segment_passes {
                    // Per-edge attention-score reductions (softmax passes):
                    // narrow rows, index-driven — the least coalescable kernel.
                    let scores = p.alloc(topo.n_slots * SCORE_WIDTH * 4);
                    p.launch_scatter(scores, &topo.slot_dst, SCORE_WIDTH, topo.n_nodes);
                    p.launch_gather(scores, &topo.slot_dst, SCORE_WIDTH, topo.n_slots);
                }
                // Dense projections: roughly a third of each layer's
                // matrices act on the edge stream (2m directed rows), the
                // rest on node rows.
                let edge_projs = self.spec.proj_per_layer / 3;
                for _ in 0..edge_projs {
                    let out = p.alloc(topo.n_slots * d * 4);
                    p.launch_linear_relu(edges, weights, out, topo.n_slots, d, d);
                }
                for _ in edge_projs..self.spec.proj_per_layer {
                    let out = p.alloc(topo.n_nodes * d * 4);
                    p.launch_linear_relu(nodes, weights, out, topo.n_nodes, d, d);
                }
                let edge_elt = self.spec.elementwise_calls / 2;
                for _ in 0..edge_elt {
                    let out = p.alloc(topo.n_slots * d * 4);
                    p.launch_elementwise(out, topo.n_slots * d, 4);
                }
                for _ in edge_elt..self.spec.elementwise_calls {
                    let out = p.alloc(topo.n_nodes * d * 4);
                    p.launch_elementwise(out, topo.n_nodes * d, 4);
                }
                let _ = pass;
            }
        }
    }

    fn simulate_step_mega(&self, p: &mut Profiler, topo: &BatchTopology) {
        assert!(
            topo.path_len > 0,
            "Mega engine requires a topology built with schedules"
        );
        let d = self.spec.hidden_dim;
        let path_buf = p.alloc(topo.path_len * d * 4);
        let nodes = p.alloc(topo.n_nodes * d * 4);
        let weights = p.alloc(d * d * 4);
        p.launch_memcpy(path_buf, topo.path_len * d * 4);
        let window = topo.window.max(1);
        for _layer in 0..self.spec.layers {
            for pass in 0..2 {
                for _ in 0..self.spec.scatter_calls {
                    if pass == 0 {
                        // Forward: windowed reads along the path, sequential.
                        // Fresh output tensors per op, as in the baseline.
                        let buf = p.alloc(topo.path_len * d * 4);
                        p.launch_band_gather(buf, topo.path_len, window, d);
                    } else {
                        // Backward: the banded weight gradient walks the same
                        // band but interleaves activation and upstream-grad
                        // reads — its own kernel, so profiles attribute
                        // forward gather and weight-grad separately.
                        let grad = p.alloc(topo.path_len * d * 4);
                        p.launch_band_wgrad(path_buf, grad, topo.path_len, window, d);
                    }
                }
                for _ in 0..self.spec.gather_calls {
                    // Path positions → node rows: near-sequential writes.
                    p.launch_band_scatter(nodes, &topo.position_to_node, d);
                }
                for _ in 0..self.spec.segment_passes {
                    // Score reductions ride the band too: sequential passes
                    // over path-ordered scores.
                    let scores = p.alloc(topo.path_len * SCORE_WIDTH * 4);
                    p.launch_band_gather(scores, topo.path_len, window, SCORE_WIDTH);
                    p.launch_band_scatter(nodes, &topo.position_to_node, SCORE_WIDTH);
                }
                // Dense projections: the edge-stream third runs over the
                // band slots (one per undirected edge — the symmetric
                // diagonal reuse of §III-C halves it vs the baseline's 2m),
                // the rest over node rows.
                let band_rows = topo.band_slots.max(1);
                let edge_projs = self.spec.proj_per_layer / 3;
                for _ in 0..edge_projs {
                    let out = p.alloc(band_rows * d * 4);
                    p.launch_linear_relu(path_buf, weights, out, band_rows, d, d);
                }
                for _ in edge_projs..self.spec.proj_per_layer {
                    let out = p.alloc(topo.n_nodes * d * 4);
                    p.launch_linear_relu(nodes, weights, out, topo.n_nodes, d, d);
                }
                let edge_elt = self.spec.elementwise_calls / 2;
                for _ in 0..edge_elt {
                    let out = p.alloc(band_rows * d * 4);
                    p.launch_elementwise(out, band_rows * d, 4);
                }
                for _ in edge_elt..self.spec.elementwise_calls {
                    let out = p.alloc(topo.n_nodes * d * 4);
                    p.launch_elementwise(out, topo.n_nodes * d, 4);
                }
                let _ = pass;
            }
        }
    }

    /// Costs one epoch: simulates a single representative step on a fresh
    /// profiler and scales to `steps` batches.
    pub fn epoch_cost(&self, topo: &BatchTopology, steps: usize) -> EpochCost {
        let mut p = Profiler::new(self.device.clone());
        self.simulate_step(&mut p, topo);
        let step_seconds = p.elapsed_seconds();
        EpochCost {
            step_seconds,
            epoch_seconds: step_seconds * steps as f64,
            steps,
            report: p.report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_core::{preprocess, MegaConfig};
    use mega_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch(n_graphs: usize) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n_graphs)
            .map(|_| generate::molecular_chain(23, 4, 3, &mut rng).unwrap())
            .collect()
    }

    fn schedules(graphs: &[Graph]) -> Vec<AttentionSchedule> {
        graphs
            .iter()
            .map(|g| preprocess(g, &MegaConfig::default()).unwrap())
            .collect()
    }

    #[test]
    fn topology_offsets_are_consistent() {
        let graphs = batch(3);
        let topo = BatchTopology::from_graphs(&graphs);
        assert_eq!(topo.n_nodes, 69);
        assert_eq!(
            topo.n_slots,
            graphs.iter().map(|g| 2 * g.edge_count()).sum::<usize>()
        );
        assert!(topo.slot_src.iter().all(|&v| v < topo.n_nodes));
        assert!(topo.slot_dst.iter().all(|&v| v < topo.n_nodes));
    }

    #[test]
    fn schedule_topology_adds_path() {
        let graphs = batch(2);
        let s = schedules(&graphs);
        let topo = BatchTopology::from_graphs_with_schedules(&graphs, &s);
        assert!(topo.path_len >= topo.n_nodes);
        assert!(topo.window >= 1);
        assert!(topo.position_to_node.iter().all(|&v| v < topo.n_nodes));
    }

    #[test]
    fn mega_step_is_faster_than_dgl() {
        let graphs = batch(32);
        let s = schedules(&graphs);
        let topo = BatchTopology::from_graphs_with_schedules(&graphs, &s);
        let spec = ModelSpec::graph_transformer(64, 2);
        let dgl = GnnCostModel::new(
            DeviceConfig::gtx_1080(),
            spec.clone(),
            EngineKind::DglBaseline,
        )
        .epoch_cost(&topo, 10);
        let mega = GnnCostModel::new(DeviceConfig::gtx_1080(), spec, EngineKind::Mega)
            .epoch_cost(&topo, 10);
        assert!(
            mega.epoch_seconds < dgl.epoch_seconds,
            "mega {} vs dgl {}",
            mega.epoch_seconds,
            dgl.epoch_seconds
        );
    }

    #[test]
    fn gt_spends_more_on_graph_ops_than_gcn() {
        // The paper's profiling scale (batch 64, hidden 128): at tiny scales
        // launch overhead flattens the shares.
        let graphs = batch(64);
        let topo = BatchTopology::from_graphs(&graphs);
        let dev = DeviceConfig::gtx_1080();
        let gcn = GnnCostModel::new(
            dev.clone(),
            ModelSpec::gated_gcn(128, 2),
            EngineKind::DglBaseline,
        )
        .epoch_cost(&topo, 1);
        let gt = GnnCostModel::new(
            dev,
            ModelSpec::graph_transformer(128, 2),
            EngineKind::DglBaseline,
        )
        .epoch_cost(&topo, 1);
        assert!(
            gt.report.graph_op_time_share() > gcn.report.graph_op_time_share(),
            "gt {} vs gcn {}",
            gt.report.graph_op_time_share(),
            gcn.report.graph_op_time_share()
        );
    }

    #[test]
    fn mega_aggregate_efficiency_beats_dgl() {
        let graphs = batch(16);
        let s = schedules(&graphs);
        let topo = BatchTopology::from_graphs_with_schedules(&graphs, &s);
        let dev = DeviceConfig::gtx_1080();
        let spec = ModelSpec::graph_transformer(128, 2);
        let dgl = GnnCostModel::new(dev.clone(), spec.clone(), EngineKind::DglBaseline)
            .epoch_cost(&topo, 1);
        let mega = GnnCostModel::new(dev, spec, EngineKind::Mega).epoch_cost(&topo, 1);
        assert!(mega.report.aggregate_sm_efficiency() > dgl.report.aggregate_sm_efficiency());
        assert!(mega.report.aggregate_stall_pct() < dgl.report.aggregate_stall_pct());
    }

    #[test]
    fn table_one_parameter_volumes() {
        assert_eq!(ModelSpec::gated_gcn(64, 1).params_per_layer(), 5 * 64 * 64);
        assert_eq!(
            ModelSpec::graph_transformer(64, 1).params_per_layer(),
            14 * 64 * 64
        );
    }

    #[test]
    #[should_panic(expected = "requires a topology built with schedules")]
    fn mega_requires_schedules() {
        let graphs = batch(2);
        let topo = BatchTopology::from_graphs(&graphs);
        let model = GnnCostModel::new(
            DeviceConfig::gtx_1080(),
            ModelSpec::gated_gcn(32, 1),
            EngineKind::Mega,
        );
        let mut p = Profiler::new(DeviceConfig::gtx_1080());
        model.simulate_step(&mut p, &topo);
    }
}
