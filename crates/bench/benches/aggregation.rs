//! Criterion benches of the CPU aggregation primitives: index-driven
//! scatter/gather (baseline) versus the banded path layout (MEGA). The CPU
//! shows the same locality effect the GPU simulator models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mega_core::{preprocess, MegaConfig};
use mega_graph::generate;
use mega_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FEAT: usize = 64;

fn bench_gather_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather");
    let mut rng = StdRng::seed_from_u64(3);
    let g = generate::barabasi_albert(2000, 4, &mut rng).unwrap();
    let schedule = preprocess(&g, &MegaConfig::default()).unwrap();
    let n = g.node_count();
    let feats = Tensor::full(n, FEAT, 1.0);

    // Baseline: gather per adjacency slot (index-driven).
    let mut slot_src = Vec::new();
    for v in 0..n {
        for &u in g.neighbors(v) {
            slot_src.push(u);
        }
    }
    group.bench_function(BenchmarkId::new("scattered", "ba-2000"), |b| {
        b.iter(|| feats.gather_rows(&slot_src))
    });

    // MEGA: gather in path order (sequential).
    let path: Vec<usize> = schedule.gather_index().to_vec();
    group.bench_function(BenchmarkId::new("path-ordered", "ba-2000"), |b| {
        b.iter(|| feats.gather_rows(&path))
    });
    group.finish();
}

fn bench_scatter_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("scatter_add");
    let mut rng = StdRng::seed_from_u64(4);
    let g = generate::barabasi_albert(2000, 4, &mut rng).unwrap();
    let n = g.node_count();
    let mut slot_dst = Vec::new();
    for v in 0..n {
        for _ in g.neighbors(v) {
            slot_dst.push(v);
        }
    }
    let messages = Tensor::full(slot_dst.len(), FEAT, 0.5);
    group.bench_function("by-destination", |b| {
        b.iter(|| messages.scatter_add_rows(&slot_dst, n))
    });
    group.finish();
}

criterion_group!(benches, bench_gather_patterns, bench_scatter_add);
criterion_main!(benches);
