//! Basic graph algorithms used by the traversal, statistics and test suites.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Result of a breadth-first search from a source node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the source, or `usize::MAX` if `v`
    /// is unreachable.
    pub dist: Vec<usize>,
    /// Nodes in the order they were first visited.
    pub order: Vec<NodeId>,
}

/// Breadth-first search over `g` from `source`.
///
/// # Panics
///
/// Panics if `source >= g.node_count()`.
///
/// # Example
///
/// ```
/// use mega_graph::{algo, GraphBuilder};
///
/// # fn main() -> Result<(), mega_graph::GraphError> {
/// let g = GraphBuilder::undirected(4).edges([(0, 1), (1, 2)])?.build()?;
/// let bfs = algo::bfs(&g, 0);
/// assert_eq!(bfs.dist[2], 2);
/// assert_eq!(bfs.dist[3], usize::MAX); // isolated
/// # Ok(())
/// # }
/// ```
pub fn bfs(g: &Graph, source: NodeId) -> BfsResult {
    assert!(source < g.node_count(), "bfs source {source} out of range");
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in g.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    BfsResult { dist, order }
}

/// Connected components of an undirected graph (weakly connected for directed
/// graphs, since traversal follows stored out-neighbors only).
///
/// Returns `(component_of, component_count)` where `component_of[v]` labels the
/// component of `v` with an id in `0..component_count`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[start] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if comp[u] == usize::MAX {
                    comp[u] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Whether the graph is connected (a single component covering all nodes).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).1 == 1
}

/// Number of nodes with odd degree — relevant to the paper's Eulerian-path
/// discussion (§III-B): a connected graph admits an Eulerian path iff it has
/// 0 or 2 odd-degree nodes, which is why MEGA relaxes full traversal with
/// jumps and revisits.
pub fn odd_degree_count(g: &Graph) -> usize {
    (0..g.node_count())
        .filter(|&v| g.degree(v) % 2 == 1)
        .count()
}

/// Number of triangles in the graph (each counted once).
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0usize;
    for v in 0..g.node_count() {
        let nbrs = g.neighbors(v);
        for (i, &a) in nbrs.iter().enumerate() {
            if a <= v {
                continue;
            }
            for &b in &nbrs[i + 1..] {
                if b > a && g.contains_edge(a, b) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Local clustering coefficient of `v`: the fraction of neighbor pairs that
/// are themselves connected; 0 for degree < 2.
///
/// # Panics
///
/// Panics if `v >= g.node_count()`.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.contains_edge(a, b) {
                links += 1;
            }
        }
    }
    links as f64 / (d * (d - 1) / 2) as f64
}

/// Average clustering coefficient — how clique-like neighborhoods are.
/// High clustering is where Eq. 2's correlation objective has signal to
/// exploit (see the `ablation_policy` bench).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|v| local_clustering(g, v)).sum::<f64>() / n as f64
}

/// Graph diameter via BFS from every node. `None` if the graph is
/// disconnected. Intended for the small benchmark graphs (O(n·m)).
pub fn diameter(g: &Graph) -> Option<usize> {
    let mut best = 0usize;
    for v in 0..g.node_count() {
        let r = bfs(g, v);
        for &d in &r.dist {
            if d == usize::MAX {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_triangles() -> Graph {
        GraphBuilder::undirected(6)
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn bfs_distances() {
        let g = GraphBuilder::undirected(5)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .unwrap()
            .build()
            .unwrap();
        let r = bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn components_found() {
        let g = two_triangles();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn odd_degree_counting() {
        // Path graph: endpoints odd.
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(odd_degree_count(&g), 2);
        // Cycle: all even.
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(odd_degree_count(&g), 0);
    }

    #[test]
    fn triangle_counting() {
        // K4 has C(4,3) = 4 triangles.
        let g = crate::generate::complete(4).unwrap();
        assert_eq!(triangle_count(&g), 4);
        let g = crate::generate::cycle(5).unwrap();
        assert_eq!(triangle_count(&g), 0);
        let g = crate::generate::caveman(2, 3).unwrap();
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn clustering_coefficients() {
        let g = crate::generate::complete(5).unwrap();
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        let g = crate::generate::star(5).unwrap();
        assert_eq!(average_clustering(&g), 0.0);
        // Triangle with a pendant: node 0 in the triangle clusters at 1 when
        // degree 2.
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .unwrap()
            .build()
            .unwrap();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
        assert!(local_clustering(&g, 2) < 1.0);
        assert_eq!(local_clustering(&g, 3), 0.0);
    }

    #[test]
    fn diameter_of_path_and_disconnected() {
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(diameter(&g), Some(3));
        assert_eq!(diameter(&two_triangles()), None);
    }
}
