//! Error type for MEGA preprocessing.

use mega_graph::GraphError;
use std::error::Error;
use std::fmt;

/// Error returned by MEGA configuration and preprocessing.
#[derive(Debug, Clone, PartialEq)]
pub enum MegaError {
    /// A configuration field was outside its valid domain.
    InvalidConfig {
        /// The field name.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// The traversal failed to reach the requested edge coverage; carries the
    /// coverage that was achievable.
    CoverageUnreachable {
        /// The requested coverage θ.
        requested: f64,
        /// The coverage actually achieved.
        achieved: f64,
    },
    /// An underlying graph operation failed.
    Graph(GraphError),
}

impl fmt::Display for MegaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MegaError::InvalidConfig { field, reason } => {
                write!(f, "invalid config field `{field}`: {reason}")
            }
            MegaError::CoverageUnreachable {
                requested,
                achieved,
            } => {
                write!(
                    f,
                    "requested edge coverage {requested} unreachable; achieved {achieved}"
                )
            }
            MegaError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for MegaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MegaError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for MegaError {
    fn from(e: GraphError) -> Self {
        MegaError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = MegaError::InvalidConfig {
            field: "window",
            reason: "must be >= 1".into(),
        };
        assert!(e.to_string().contains("window"));
    }

    #[test]
    fn graph_errors_convert() {
        let ge = GraphError::Empty;
        let me: MegaError = ge.clone().into();
        assert_eq!(me, MegaError::Graph(ge));
        assert!(Error::source(&me).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MegaError>();
    }
}
