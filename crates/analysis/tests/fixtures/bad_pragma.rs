// `bad-pragma` fixture: malformed suppressions must themselves fire.
// mega-lint: allow(no-fma)
// mega-lint: allow(imaginary-rule, reason = "x")
// mega-lint: allow(no-fma, reason = "")
pub fn nothing() {}
