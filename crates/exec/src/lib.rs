//! Pluggable kernel execution backends for MEGA.
//!
//! Every kernel the training stack executes — dense GEMM, elementwise ops,
//! row gather/scatter, segment softmax, layer/batch norm, and the banded
//! attention kernels — is dispatched through the [`Backend`] trait. The
//! autograd tape in `mega-tensor`, the GNN layers, and the `BandScheduler`
//! all call through a `dyn Backend`, so swapping in a faster implementation
//! (or a profiling decorator — see `mega-gpu-sim`'s `SimBackend`) is a
//! one-crate change.
//!
//! Three concrete backends live here:
//!
//! * [`ReferenceBackend`] — the default-method loops of [`kernels`], the
//!   exact arithmetic the workspace has always used.
//! * [`BlockedBackend`] — cache-tiled GEMM plus fused bias-activation.
//!   Bit-identical to the reference (tiling only reorders *memory* traffic;
//!   each output element folds its `k` products in the same ascending
//!   order), just faster on matrices that overflow cache.
//! * [`SimdBackend`] — explicit-width vector lanes (AVX intrinsics with a
//!   portable scalar-lane fallback) over the blocked strip layout, for the
//!   GEMM micro-kernel, the elementwise family, and the fused epilogue.
//!   Bit-identical too: lanes vectorize across output elements, never
//!   across a single element's `k` fold.
//!
//! [`BufferPool`] supplies recycled output buffers so steady-state training
//! stops allocating per tape node.
//!
//! This is the only workspace crate allowed to contain `unsafe` (and only
//! in `simd.rs`) — enforced by `mega-lint`'s `unsafe-scope` rule, with
//! every site carrying a `// SAFETY:` comment (`undocumented-unsafe` rule)
//! and unsafe operations never implicit inside unsafe fns.

#![deny(unsafe_op_in_unsafe_fn)]

mod blocked;
pub mod kernels;
mod pack;
mod partition;
mod pool;
mod profiled;
mod reference;
mod simd;

pub use blocked::BlockedBackend;
pub use pack::{Orientation, PackCache, PackedB};
pub use pool::BufferPool;
pub use profiled::{Calibration, ProfiledBackend};
pub use reference::ReferenceBackend;
pub use simd::SimdBackend;

use mega_core::band::BandMask;
use mega_core::Parallelism;
use std::sync::Arc;

/// Elementwise activation selector for [`Backend::unary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Unary {
    /// `max(x, 0)`.
    Relu,
    /// `x` if positive, else `slope · x`.
    LeakyRelu(f32),
    /// `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// One execution backend: every kernel the system runs, behind one dispatch
/// point.
///
/// All tensors are row-major `f32` slices with explicit shapes. Kernels that
/// accumulate (`matmul`, `scatter_add_rows`, `banded_*`) expect a zeroed
/// `out`; the rest overwrite every element. Default methods delegate to the
/// reference loops in [`kernels`], so a backend only overrides the kernels
/// it actually accelerates — and every override must keep the documented
/// per-output-element accumulation order, because training histories are
/// compared bit-for-bit across backends and thread counts.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Stable name, as accepted by [`backend_by_name`] and the CLI.
    fn name(&self) -> &'static str;

    /// Dense GEMM `out += a · b` (`n × k` times `k × m`), parallelized under
    /// `par` with bit-identical results for every thread count.
    #[allow(clippy::too_many_arguments)]
    fn matmul(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        kernels::matmul_par(a, b, n, k, m, par, out);
    }

    /// Fused dense layer + activation: `out = relu(x · w + bias)`.
    ///
    /// Same arithmetic as `matmul` → add bias row → ReLU; fusing saves
    /// memory sweeps, never precision.
    #[allow(clippy::too_many_arguments)]
    fn linear_relu(
        &self,
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        kernels::matmul_par(x, w, n, k, m, par, out);
        kernels::bias_relu_inplace(out, bias, n, m);
    }

    /// Whether [`Backend::prepack`] produces packs (and therefore whether
    /// [`Backend::matmul_packed`] / [`Backend::linear_relu_packed`] are
    /// usable). Callers that must do preparatory work *before* packing —
    /// e.g. transposing `b` for a gradient GEMM — should check this first
    /// so the preparation is not wasted on a backend that declines to pack.
    fn supports_prepack(&self) -> bool {
        false
    }

    /// Packs a `k × m` GEMM `b` operand into this backend's internal strip
    /// layout, or `None` when the backend has no packed representation (the
    /// default). A returned pack is a pure copy — no arithmetic — and is
    /// only meaningful to the backend that produced it, consumed via
    /// [`Backend::matmul_packed`] / [`Backend::linear_relu_packed`].
    fn prepack(&self, b: &[f32], k: usize, m: usize) -> Option<PackedB> {
        let _ = (b, k, m);
        None
    }

    /// [`Backend::matmul`] with `b` already packed by this backend's
    /// [`Backend::prepack`]. Backends that return `Some` from `prepack`
    /// must override this; the default cannot consume any pack.
    fn matmul_packed(
        &self,
        a: &[f32],
        packed: &PackedB,
        n: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let _ = (a, packed, n, par, out);
        panic!(
            "backend `{}` produced a pack it cannot consume: prepack and \
             matmul_packed must be overridden together",
            self.name()
        );
    }

    /// [`Backend::linear_relu`] with `w` already packed by this backend's
    /// [`Backend::prepack`]. Same override contract as
    /// [`Backend::matmul_packed`].
    fn linear_relu_packed(
        &self,
        x: &[f32],
        packed: &PackedB,
        bias: &[f32],
        n: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let _ = (x, packed, bias, n, par, out);
        panic!(
            "backend `{}` produced a pack it cannot consume: prepack and \
             linear_relu_packed must be overridden together",
            self.name()
        );
    }

    /// Fused dense layer + LeakyReLU: `out = leaky_relu(x · w + bias)`.
    ///
    /// Same arithmetic as `matmul` → add bias row → LeakyReLU (each element
    /// is rounded at every step; nothing is contracted), one output sweep.
    #[allow(clippy::too_many_arguments)]
    fn linear_leaky_relu(
        &self,
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        slope: f32,
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        self.matmul(x, w, n, k, m, par, out);
        kernels::bias_leaky_relu_inplace(out, bias, slope, n, m);
    }

    /// Elementwise `out = a + b`.
    fn add(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernels::add(a, b, out);
    }

    /// Elementwise `out = a - b`.
    fn sub(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernels::sub(a, b, out);
    }

    /// Elementwise `out = a ⊙ b`.
    fn mul(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernels::mul(a, b, out);
    }

    /// Elementwise `out = k · a`.
    fn scale(&self, a: &[f32], k: f32, out: &mut [f32]) {
        kernels::scale(a, k, out);
    }

    /// Fused scale-then-add `out = k · a + b` — the planner's replacement
    /// for a `scale` feeding a single `add`. Multiply then separately
    /// rounded add per element, exactly the unfused pair's arithmetic.
    fn axpy(&self, a: &[f32], k: f32, b: &[f32], out: &mut [f32]) {
        kernels::axpy(a, k, b, out);
    }

    /// Adds a `1 × m` bias row to every row of the `n × m` input.
    fn add_bias_rows(&self, x: &[f32], bias: &[f32], n: usize, m: usize, out: &mut [f32]) {
        kernels::add_bias_rows(x, bias, n, m, out);
    }

    /// Elementwise activation.
    fn unary(&self, op: Unary, x: &[f32], out: &mut [f32]) {
        kernels::unary(op, x, out);
    }

    /// Row gather `out[i] = src[index[i]]`.
    fn gather_rows(
        &self,
        src: &[f32],
        src_rows: usize,
        cols: usize,
        index: &[usize],
        out: &mut [f32],
    ) {
        kernels::gather_rows(src, src_rows, cols, index, out);
    }

    /// Row scatter-add `out[index[i]] += src[i]` into `out_rows` buckets.
    fn scatter_add_rows(
        &self,
        src: &[f32],
        index: &[usize],
        cols: usize,
        out_rows: usize,
        out: &mut [f32],
    ) {
        kernels::scatter_add_rows(src, index, cols, out_rows, out);
    }

    /// Scales row `r` by `factors[r]`.
    fn scale_rows(&self, x: &[f32], factors: &[f32], cols: usize, out: &mut [f32]) {
        kernels::scale_rows(x, factors, cols, out);
    }

    /// Column-wise softmax within row segments.
    fn segment_softmax(
        &self,
        x: &[f32],
        rows: usize,
        cols: usize,
        segments: &[usize],
        n_segments: usize,
        out: &mut [f32],
    ) {
        kernels::segment_softmax(x, rows, cols, segments, n_segments, out);
    }

    /// Row-wise layer normalization with affine parameters.
    #[allow(clippy::too_many_arguments)]
    fn layer_norm(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        out: &mut [f32],
    ) {
        kernels::layer_norm(x, gamma, beta, rows, cols, eps, out);
    }

    /// Column-wise batch normalization with affine parameters.
    #[allow(clippy::too_many_arguments)]
    fn batch_norm(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        out: &mut [f32],
    ) {
        kernels::batch_norm(x, gamma, beta, rows, cols, eps, out);
    }

    /// Fused [`Backend::layer_norm`] + elementwise activation, applied to
    /// the normalized output in place — bitwise the unfused pair.
    #[allow(clippy::too_many_arguments)]
    fn layer_norm_act(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        act: Unary,
        out: &mut [f32],
    ) {
        self.layer_norm(x, gamma, beta, rows, cols, eps, out);
        kernels::unary_inplace(act, out);
    }

    /// Fused [`Backend::batch_norm`] + elementwise activation, applied to
    /// the normalized output in place — bitwise the unfused pair.
    #[allow(clippy::too_many_arguments)]
    fn batch_norm_act(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        act: Unary,
        out: &mut [f32],
    ) {
        self.batch_norm(x, gamma, beta, rows, cols, eps, out);
        kernels::unary_inplace(act, out);
    }

    /// Banded attention aggregation: `out = A·x` with `A` the symmetric
    /// banded slot-weight matrix. `out` must be a zeroed `L × dim` buffer.
    fn banded_aggregate(
        &self,
        band: &BandMask,
        x: &[f32],
        dim: usize,
        weights: &[f32],
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let v = kernels::banded_aggregate(band, x, dim, weights, par);
        out.copy_from_slice(&v);
    }

    /// Banded attention per-edge weight gradient into a zeroed
    /// `edge_count`-length buffer.
    #[allow(clippy::too_many_arguments)]
    fn banded_weight_grad(
        &self,
        band: &BandMask,
        x: &[f32],
        d_out: &[f32],
        dim: usize,
        edge_count: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let v = kernels::banded_weight_grad(band, x, d_out, dim, edge_count, par);
        out.copy_from_slice(&v);
    }
}

/// Resolves a backend by its CLI name (`reference`, `blocked`, `simd`, or
/// `profiled` — the roofline decorator over the reference backend; the CLI
/// also accepts `profiled:<inner>` and wraps the named inner backend).
pub fn backend_by_name(name: &str) -> Option<Arc<dyn Backend>> {
    match name {
        "reference" => Some(Arc::new(ReferenceBackend)),
        "blocked" => Some(Arc::new(BlockedBackend)),
        "simd" => Some(Arc::new(SimdBackend::new())),
        "profiled" => Some(Arc::new(ProfiledBackend::new(Arc::new(ReferenceBackend)))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_lookup_by_name() {
        assert_eq!(backend_by_name("reference").unwrap().name(), "reference");
        assert_eq!(backend_by_name("blocked").unwrap().name(), "blocked");
        assert_eq!(backend_by_name("simd").unwrap().name(), "simd");
        assert_eq!(backend_by_name("profiled").unwrap().name(), "profiled");
        assert!(backend_by_name("cuda").is_none());
    }

    #[test]
    fn default_methods_match_kernels() {
        let b = ReferenceBackend;
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let c = [5.0f32, 6.0, 7.0, 8.0];
        let mut out = [0.0f32; 4];
        b.matmul(&a, &c, 2, 2, 2, &Parallelism::with_threads(1), &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
        b.add(&a, &c, &mut out);
        assert_eq!(out, [6.0, 8.0, 10.0, 12.0]);
        b.unary(Unary::Relu, &[-1.0, 2.0], &mut out[..2]);
        assert_eq!(&out[..2], &[0.0, 2.0]);
    }

    #[test]
    fn linear_relu_fuses_bias_and_activation() {
        let b = ReferenceBackend;
        // x = [[1, -1]], w = [[1, 2], [3, 4]], bias = [0.5, -10]
        let x = [1.0f32, -1.0];
        let w = [1.0f32, 2.0, 3.0, 4.0];
        let bias = [0.5f32, -10.0];
        let mut out = [0.0f32; 2];
        b.linear_relu(
            &x,
            &w,
            &bias,
            1,
            2,
            2,
            &Parallelism::with_threads(1),
            &mut out,
        );
        // x·w = [-2, -2]; +bias = [-1.5, -12]; relu = [0, 0]
        assert_eq!(out, [0.0, 0.0]);
        let x2 = [1.0f32, 1.0];
        b.linear_relu(
            &x2,
            &w,
            &bias,
            1,
            2,
            2,
            &Parallelism::with_threads(1),
            &mut out,
        );
        // x·w = [4, 6]; +bias = [4.5, -4]; relu = [4.5, 0]
        assert_eq!(out, [4.5, 0.0]);
    }
}
