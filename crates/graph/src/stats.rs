//! Degree and sparsity statistics (paper Tables II and III).
//!
//! Table II reports per-dataset averages of node count, edge count and
//! sparsity. Table III reports the *consistency* of degree distributions
//! across the graphs of a dataset: the mean of per-graph degree standard
//! deviations `μ(σ(d))`, the standard deviations across graphs of the
//! per-graph min/max/mean degrees (`σ(d_min)`, `σ(d_max)`, `σ(d_mean)`), and
//! the mean Kolmogorov–Smirnov similarity `μ(ε)` between degree
//! distributions of graph pairs.

use crate::graph::Graph;
use crate::ks;
use serde::{Deserialize, Serialize};

/// Summary statistics of one graph's degree sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Population standard deviation of the degree sequence.
    pub std_dev: f64,
}

impl DegreeStats {
    /// Computes degree statistics for `g`.
    ///
    /// # Example
    ///
    /// ```
    /// use mega_graph::{DegreeStats, GraphBuilder};
    ///
    /// # fn main() -> Result<(), mega_graph::GraphError> {
    /// let g = GraphBuilder::undirected(3).edges([(0, 1), (1, 2)])?.build()?;
    /// let s = DegreeStats::of(&g);
    /// assert_eq!((s.min, s.max), (1, 2));
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(g: &Graph) -> Self {
        let degrees = g.degrees();
        let n = degrees.len().max(1) as f64;
        let mean = degrees.iter().sum::<usize>() as f64 / n;
        let var = degrees
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        DegreeStats {
            min: degrees.iter().copied().min().unwrap_or(0),
            max: degrees.iter().copied().max().unwrap_or(0),
            mean,
            std_dev: var.sqrt(),
        }
    }
}

/// Dataset-level statistics over a collection of graphs, reproducing the
/// quantities in Tables II and III of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of graphs summarized.
    pub graph_count: usize,
    /// Mean node count per graph (Table II "nodes").
    pub mean_nodes: f64,
    /// Mean edge count per graph (Table II "edges").
    pub mean_edges: f64,
    /// Mean sparsity per graph (Table II "sparsity").
    pub mean_sparsity: f64,
    /// μ(σ(d)): mean over graphs of the degree standard deviation.
    pub mean_degree_std: f64,
    /// σ(d_min): standard deviation across graphs of the minimum degree.
    pub std_min_degree: f64,
    /// σ(d_max): standard deviation across graphs of the maximum degree.
    pub std_max_degree: f64,
    /// σ(d_mean): standard deviation across graphs of the mean degree.
    pub std_mean_degree: f64,
    /// μ(ε): mean KS similarity between degree distributions of sampled graph
    /// pairs; values near 1 mean the distribution shape is shared.
    pub mean_ks_similarity: f64,
}

fn std_dev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt()
}

impl DatasetStats {
    /// Computes dataset statistics over `graphs`.
    ///
    /// The KS similarity term averages the pairwise KS similarity over up to
    /// `max_ks_pairs` consecutive graph pairs (the full quadratic pair set is
    /// unnecessary for a stable estimate).
    pub fn of(graphs: &[Graph], max_ks_pairs: usize) -> Self {
        let gc = graphs.len();
        let mut nodes = Vec::with_capacity(gc);
        let mut edges = Vec::with_capacity(gc);
        let mut sparsity = Vec::with_capacity(gc);
        let mut d_std = Vec::with_capacity(gc);
        let mut d_min = Vec::with_capacity(gc);
        let mut d_max = Vec::with_capacity(gc);
        let mut d_mean = Vec::with_capacity(gc);
        for g in graphs {
            let s = DegreeStats::of(g);
            nodes.push(g.node_count() as f64);
            edges.push(g.edge_count() as f64);
            sparsity.push(g.sparsity());
            d_std.push(s.std_dev);
            d_min.push(s.min as f64);
            d_max.push(s.max as f64);
            d_mean.push(s.mean);
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };

        let mut ks_scores = Vec::new();
        for pair in graphs.windows(2).take(max_ks_pairs) {
            let a: Vec<f64> = pair[0].degrees().iter().map(|&d| d as f64).collect();
            let b: Vec<f64> = pair[1].degrees().iter().map(|&d| d as f64).collect();
            ks_scores.push(ks::similarity(&a, &b));
        }

        DatasetStats {
            graph_count: gc,
            mean_nodes: mean(&nodes),
            mean_edges: mean(&edges),
            mean_sparsity: mean(&sparsity),
            mean_degree_std: mean(&d_std),
            std_min_degree: std_dev(&d_min),
            std_max_degree: std_dev(&d_max),
            std_mean_degree: std_dev(&d_mean),
            mean_ks_similarity: if ks_scores.is_empty() {
                1.0
            } else {
                mean(&ks_scores)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::undirected(n);
        for v in 0..n {
            b.edge(v, (v + 1) % n).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn degree_stats_of_regular_graph() {
        let s = DegreeStats::of(&cycle(6));
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.std_dev.abs() < 1e-12);
    }

    #[test]
    fn dataset_of_identical_regular_graphs_is_fully_consistent() {
        // Mirrors the CSL row of Table III: all-zero variance terms, μ(ε)=1.
        let graphs: Vec<Graph> = (0..5).map(|_| cycle(8)).collect();
        let st = DatasetStats::of(&graphs, 10);
        assert!(st.mean_degree_std.abs() < 1e-12);
        assert!(st.std_min_degree.abs() < 1e-12);
        assert!(st.std_max_degree.abs() < 1e-12);
        assert!(st.std_mean_degree.abs() < 1e-12);
        assert!((st.mean_ks_similarity - 1.0).abs() < 1e-12);
        assert!((st.mean_nodes - 8.0).abs() < 1e-12);
        assert!((st.mean_edges - 8.0).abs() < 1e-12);
    }

    #[test]
    fn dataset_of_heterogeneous_graphs_shows_variance() {
        let star = GraphBuilder::undirected(5)
            .edges([(0, 1), (0, 2), (0, 3), (0, 4)])
            .unwrap()
            .build()
            .unwrap();
        let graphs = vec![cycle(5), star];
        let st = DatasetStats::of(&graphs, 10);
        assert!(st.std_max_degree > 0.0);
        assert!(st.mean_ks_similarity < 1.0);
    }

    #[test]
    fn empty_dataset_is_well_defined() {
        let st = DatasetStats::of(&[], 10);
        assert_eq!(st.graph_count, 0);
        assert_eq!(st.mean_nodes, 0.0);
        assert_eq!(st.mean_ks_similarity, 1.0);
    }
}
