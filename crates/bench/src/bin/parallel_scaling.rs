//! Parallel band-engine scaling on a 10k-node synthetic graph.
//!
//! Reports two strictly separated views per thread count, so a modeled
//! figure can never silently stand in for a measured one again (the
//! previous revision's headline 3.7× was the model; the wall clock on a
//! small host said 0.7×):
//!
//! * **modeled** — the work-division speedup implied by the [`ChunkPlan`]
//!   built for *exactly* `threads` workers (`Parallelism::pinned`, so the
//!   plan is host-independent): per-chunk work (slot visits × feature dim,
//!   including the ±ω overlap reads) is replayed through the engine's
//!   dynamic pull schedule and the makespan compared against the serial
//!   total. An idealized machine with `threads` real cores.
//! * **measured** — wall time of the engine as production configures it
//!   (`Parallelism::with_threads`, clamped to the host's cores), for both
//!   the forward aggregation and the weight gradient, with the worker
//!   count that actually ran. On a single-core host every measured speedup
//!   is ≈ 1.0 by construction — the clamp dispatches serial — and that is
//!   the honest number.
//!
//! The wall-clock gate lives in `crates/exec/tests/scaling.rs`; this bin
//! is the reporting side of the same split (methodology in EXPERIMENTS.md).

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::parallel::{host_threads, ChunkPlan, Parallelism};
use mega_core::{preprocess, MegaConfig};
use mega_exec::kernels::{
    banded_aggregate, banded_aggregate_serial, banded_weight_grad, banded_weight_grad_serial,
};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

const NODES: usize = 10_000;
const FEAT: usize = 64;
const REPS: usize = 5;

#[derive(Serialize)]
struct Modeled {
    speedup: f64,
    efficiency: f64,
}

#[derive(Serialize)]
struct Measured {
    effective_threads: usize,
    aggregate_ms: f64,
    aggregate_speedup: f64,
    wgrad_ms: f64,
    wgrad_speedup: f64,
}

#[derive(Serialize)]
struct Row {
    threads: usize,
    chunks: usize,
    modeled: Modeled,
    measured: Measured,
}

#[derive(Serialize)]
struct Report {
    graph: String,
    nodes: usize,
    edges: usize,
    path_len: usize,
    window: usize,
    feature_dim: usize,
    host_cores: usize,
    methodology: String,
    serial_aggregate_ms: f64,
    serial_wgrad_ms: f64,
    rows: Vec<Row>,
}

/// Slot-visit work units of one chunk: the chunked kernel scans up to 2ω
/// band offsets per owned row and touches `dim` lanes per active slot.
fn chunk_work(plan: &ChunkPlan, band: &mega_core::BandMask, idx: usize) -> u64 {
    let c = plan.chunks()[idx];
    let w = plan.window();
    let mut units = 0u64;
    for r in c.start..c.end {
        for lo in r.saturating_sub(w)..r {
            units += 1; // offset scan
            if band.slot(lo, r - lo).is_some() {
                units += FEAT as u64;
            }
        }
        for k in 1..=w {
            units += 1;
            if band.slot(r, k).is_some() {
                units += FEAT as u64;
            }
        }
    }
    units
}

/// Makespan of the engine's dynamic schedule: `threads` workers repeatedly
/// pull the next chunk index, exactly like the atomic-counter pool.
fn makespan(work: &[u64], threads: usize) -> u64 {
    let mut finish = vec![0u64; threads.max(1)];
    for &w in work {
        let earliest = (0..finish.len()).min_by_key(|&i| finish[i]).unwrap();
        finish[earliest] += w;
    }
    finish.into_iter().max().unwrap_or(0)
}

fn median_ms<F: FnMut() -> Vec<f32>>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            let out = f();
            std::hint::black_box(&out);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(17);
    let g = generate::barabasi_albert(NODES, 4, &mut rng).unwrap();
    let schedule = preprocess(&g, &MegaConfig::default()).unwrap();
    let band = schedule.band();
    let len = band.len();
    let x: Vec<f32> = (0..len * FEAT)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let edges = schedule.working_graph().edge_count();
    let weights: Vec<f32> = (0..edges).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let d_out: Vec<f32> = (0..len * FEAT)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();

    let serial_aggregate_ms = median_ms(|| banded_aggregate_serial(band, &x, FEAT, &weights));
    let serial_wgrad_ms = median_ms(|| banded_weight_grad_serial(band, &x, &d_out, FEAT, edges));
    let host_cores = host_threads();
    mega_obs::data!(
        "graph: ba-{NODES} | path {len} | window {} | dim {FEAT} | serial fwd {:.3} ms, \
         wgrad {:.3} ms | {host_cores} host core(s)\n",
        band.window(),
        serial_aggregate_ms,
        serial_wgrad_ms
    );

    let mut table = TableWriter::new(&[
        "threads",
        "eff",
        "chunks",
        "model speedup",
        "model eff",
        "fwd(ms)",
        "fwd speedup",
        "wgrad(ms)",
        "wgrad speedup",
    ]);
    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        // Modeled: the plan for exactly `threads` workers, whatever this
        // host has — pinned past the core clamp, like an idealized machine.
        let pinned = Parallelism::pinned(threads);
        let plan = ChunkPlan::for_band(band, &pinned);
        let work: Vec<u64> = (0..plan.chunks().len())
            .map(|i| chunk_work(&plan, band, i))
            .collect();
        let span = makespan(&work, threads);
        // The serial kernel walks active slots directly (2 row updates of
        // `dim` lanes per slot, no offset scan); the chunked engine pays its
        // full scan cost, so the model charges it against serial honestly.
        let serial_units: u64 = 2 * FEAT as u64 * band.active_slots().len() as u64;
        // At one worker the engine dispatches straight to the serial kernel.
        let model_speedup = if threads <= 1 {
            1.0
        } else {
            serial_units as f64 / span.max(1) as f64
        };

        // Measured: the production config — clamped to the host's cores.
        let par = Parallelism::with_threads(threads);
        let aggregate_ms = median_ms(|| banded_aggregate(band, &x, FEAT, &weights, &par));
        let wgrad_ms = median_ms(|| banded_weight_grad(band, &x, &d_out, FEAT, edges, &par));
        let row = Row {
            threads,
            chunks: plan.chunks().len(),
            modeled: Modeled {
                speedup: model_speedup,
                efficiency: model_speedup / threads as f64,
            },
            measured: Measured {
                effective_threads: par.effective_threads(),
                aggregate_ms,
                aggregate_speedup: serial_aggregate_ms / aggregate_ms,
                wgrad_ms,
                wgrad_speedup: serial_wgrad_ms / wgrad_ms,
            },
        };
        table.row(&[
            fmt(threads as f64, 0),
            fmt(row.measured.effective_threads as f64, 0),
            fmt(row.chunks as f64, 0),
            fmt(row.modeled.speedup, 2),
            fmt(row.modeled.efficiency, 2),
            fmt(row.measured.aggregate_ms, 3),
            fmt(row.measured.aggregate_speedup, 2),
            fmt(row.measured.wgrad_ms, 3),
            fmt(row.measured.wgrad_speedup, 2),
        ]);
        rows.push(row);
    }
    table.print();

    save_json(
        "parallel_scaling",
        &Report {
            graph: format!("ba-{NODES}"),
            nodes: g.node_count(),
            edges: g.edge_count(),
            path_len: len,
            window: band.window(),
            feature_dim: FEAT,
            host_cores,
            methodology: "modeled = ChunkPlan work division replayed through the dynamic \
                          pull schedule for exactly `threads` workers (host-independent); \
                          measured = median wall-clock of the engine as production \
                          configures it, clamped to host cores. Headline scaling claims \
                          must cite `measured`; see EXPERIMENTS.md."
                .into(),
            serial_aggregate_ms,
            serial_wgrad_ms,
            rows,
        },
    );
}
