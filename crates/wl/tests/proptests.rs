//! Property-based tests for WL refinement and similarity scores.

use mega_core::{preprocess, MegaConfig, WindowPolicy};
use mega_graph::{Graph, GraphBuilder};
use mega_wl::{
    global_similarity, labels, path_similarity, path_similarity_merged, subtree_similarity,
    wl_indistinguishable,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..40).prop_map(move |pairs| {
            let mut b = GraphBuilder::undirected(n);
            b.dedup(true);
            for v in 1..n {
                b.edge(v - 1, v).unwrap();
            }
            for (a, c) in pairs {
                b.edge(a, c).unwrap();
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A graph is always WL-indistinguishable from itself.
    #[test]
    fn self_indistinguishable(g in arb_graph()) {
        prop_assert!(wl_indistinguishable(&g, &g, 3));
        prop_assert!((subtree_similarity(&g, &g, 3) - 1.0).abs() < 1e-12);
    }

    /// Relabeling nodes (an explicit isomorphism) never distinguishes.
    #[test]
    fn isomorphic_relabeling_indistinguishable(g in arb_graph(), seed in 0u64..500) {
        let n = g.node_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut b = GraphBuilder::undirected(n);
        for (a, c) in g.edges() {
            b.edge(perm[a], perm[c]).unwrap();
        }
        let h = b.build().unwrap();
        prop_assert!(wl_indistinguishable(&g, &h, 3));
    }

    /// Refinement colors only ever split (distinct-color count is
    /// non-decreasing over rounds).
    #[test]
    fn refinement_monotone(g in arb_graph()) {
        let h = labels::refine(&g, 4);
        let distinct = |round: &Vec<u64>| {
            let mut r = round.clone();
            r.sort_unstable();
            r.dedup();
            r.len()
        };
        for w in h.rounds.windows(2) {
            prop_assert!(distinct(&w[1]) >= distinct(&w[0]));
        }
    }

    /// Similarity scores stay in [0, 1]; 1-hop path similarity is exactly 1
    /// at full coverage; merged-flow similarity is 1 at every hop.
    #[test]
    fn similarity_ranges(g in arb_graph(), window in 1usize..4) {
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(window));
        let s = preprocess(&g, &cfg).unwrap();
        prop_assert!((path_similarity(&g, &s, 1) - 1.0).abs() < 1e-12);
        for hops in 1..=3 {
            let p = path_similarity(&g, &s, hops);
            let q = global_similarity(&g, hops);
            let m = path_similarity_merged(&g, &s, hops);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
            prop_assert!((m - 1.0).abs() < 1e-12, "hops {hops}");
        }
    }

    /// Subtree similarity is symmetric.
    #[test]
    fn subtree_similarity_symmetric(a in arb_graph(), b in arb_graph()) {
        let ab = subtree_similarity(&a, &b, 3);
        let ba = subtree_similarity(&b, &a, 3);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
    }
}
