//! Reverse-mode autograd tape.
//!
//! A [`Tape`] records a computation as a sequence of nodes; every op method
//! returns a [`Var`] handle. [`Tape::backward`] walks the nodes in reverse,
//! producing a gradient tensor per node. The op set is tailored to GNN
//! training: dense linear algebra, activations, normalizations, losses, and
//! the index-driven graph ops (row gather, scatter-add, segment softmax)
//! that express both the DGL-style baseline and MEGA's banded attention.
//!
//! Tape ops are thin autograd wrappers: the numeric work — forward kernels
//! and the matrix products of the backward pass — dispatches through a
//! [`Backend`] (default [`ReferenceBackend`], bit-identical to the
//! pre-backend tape), and output buffers come from a shared [`BufferPool`]
//! so steady-state training recycles allocations instead of making fresh
//! ones per node. Dropped tapes return their node buffers to the pool.

use crate::tensor::Tensor;
use mega_exec::{kernels, Backend, BufferPool, ReferenceBackend, Unary};
use std::sync::Arc;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    LinearRelu(Var, Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    AddRow(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    LeakyRelu(Var, f32),
    Dropout(Var, Arc<Vec<bool>>, f32),
    Sigmoid(Var),
    Tanh(Var),
    Sum(Var),
    Mean(Var),
    DivEps(Var, Var, f32),
    RowDot(Var, Var),
    MulColBroadcast(Var, Var),
    ConcatCols(Arc<Vec<Var>>),
    GatherRows(Var, Arc<Vec<usize>>),
    ScatterAddRows(Var, Arc<Vec<usize>>),
    ScaleRows(Var, Arc<Vec<f32>>),
    SegmentSoftmax(Var, Arc<Vec<usize>>, usize),
    LayerNorm(Var, Var, Var, f32),
    BatchNorm(Var, Var, Var, f32),
    L1Loss(Var, Arc<Tensor>),
    CrossEntropy(Var, Arc<Vec<usize>>),
}

impl Op {
    /// Stable metric-name suffix of the op kind, for the
    /// `tensor.tape.op.<kind>` counters.
    fn kind_name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::MatMul(..) => "matmul",
            Op::LinearRelu(..) => "linear_relu",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::AddRow(..) => "add_row",
            Op::Scale(..) => "scale",
            Op::Relu(..) => "relu",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Dropout(..) => "dropout",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::Sum(..) => "sum",
            Op::Mean(..) => "mean",
            Op::DivEps(..) => "div_eps",
            Op::RowDot(..) => "row_dot",
            Op::MulColBroadcast(..) => "mul_col_broadcast",
            Op::ConcatCols(..) => "concat_cols",
            Op::GatherRows(..) => "gather_rows",
            Op::ScatterAddRows(..) => "scatter_add_rows",
            Op::ScaleRows(..) => "scale_rows",
            Op::SegmentSoftmax(..) => "segment_softmax",
            Op::LayerNorm(..) => "layer_norm",
            Op::BatchNorm(..) => "batch_norm",
            Op::L1Loss(..) => "l1_loss",
            Op::CrossEntropy(..) => "cross_entropy",
        }
    }
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Gradients of one backward pass, indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Tensor>,
}

impl Gradients {
    /// The gradient with respect to `v` (zeros when `v` has no influence on
    /// the loss).
    ///
    /// # Panics
    ///
    /// Panics if `v` came from a different tape (index out of range).
    pub fn wrt(&self, v: Var) -> &Tensor {
        &self.grads[v.0]
    }
}

/// `t += s` elementwise — the slice-level twin of [`Tensor::add_assign`],
/// used by the backward pass to fold pooled kernel outputs into gradient
/// accumulators without wrapping them in a temporary tensor.
fn add_slice(t: &mut Tensor, s: &[f32]) {
    debug_assert_eq!(t.as_slice().len(), s.len());
    for (o, &v) in t.as_mut_slice().iter_mut().zip(s) {
        *o += v;
    }
}

/// Reverse-mode autograd tape. Build values with the op methods, then call
/// [`Tape::backward`] on a scalar node.
pub struct Tape {
    nodes: Vec<Node>,
    par: mega_core::Parallelism,
    backend: Arc<dyn Backend>,
    pool: Arc<BufferPool>,
}

impl Default for Tape {
    fn default() -> Self {
        Tape::new()
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        // Recycle every node's buffer; with a shared pool the next tape's
        // forward pass allocates (almost) nothing.
        for node in self.nodes.drain(..) {
            self.pool.release(node.value.into_data());
        }
    }
}

impl Tape {
    /// A fresh, empty tape on the default [`ReferenceBackend`] with a
    /// private buffer pool.
    pub fn new() -> Self {
        Tape::with_exec(Arc::new(ReferenceBackend), Arc::new(BufferPool::new()))
    }

    /// A fresh tape dispatching kernels to `backend` and drawing output
    /// buffers from `pool` (share one pool across tapes to recycle
    /// allocations between batches).
    pub fn with_exec(backend: Arc<dyn Backend>, pool: Arc<BufferPool>) -> Self {
        Tape {
            nodes: Vec::new(),
            par: mega_core::Parallelism::default(),
            backend,
            pool,
        }
    }

    /// Swaps the execution backend. Every backend is bit-compatible with the
    /// reference (enforced by property tests), so this never changes values.
    pub fn set_backend(&mut self, backend: Arc<dyn Backend>) {
        self.backend = backend;
    }

    /// The tape's execution backend.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// Swaps the buffer pool future nodes draw from.
    pub fn set_pool(&mut self, pool: Arc<BufferPool>) {
        self.pool = pool;
    }

    /// Sets the thread budget used by the tape's heavy kernels (currently the
    /// matrix products of [`Tape::matmul`] and its backward pass).
    ///
    /// The parallel kernels partition output rows, so results — forward
    /// values and gradients alike — are bit-identical for every setting.
    pub fn set_parallelism(&mut self, par: mega_core::Parallelism) {
        self.par = par;
    }

    /// The tape's current thread budget.
    pub fn parallelism(&self) -> mega_core::Parallelism {
        self.par
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value held at `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The first node (in recording order) whose value holds a NaN or an
    /// infinity, as `(node index, op kind name)` — `None` when every value
    /// on the tape is finite.
    ///
    /// Recording order is evaluation order, so the returned node is where
    /// non-finiteness *entered* the forward pass: everything downstream is
    /// contaminated by it, everything upstream was still healthy. The
    /// trainer's NaN/Inf sentinel uses this to name the offending op in its
    /// diagnostic dump.
    pub fn first_nonfinite(&self) -> Option<(usize, &'static str)> {
        self.nodes.iter().enumerate().find_map(|(i, n)| {
            n.value
                .as_slice()
                .iter()
                .any(|v| !v.is_finite())
                .then(|| (i, n.op.kind_name()))
        })
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        if mega_obs::enabled() {
            mega_obs::counter_add("tensor.tape.ops", 1);
            let mut name = String::with_capacity(32);
            name.push_str("tensor.tape.op.");
            name.push_str(op.kind_name());
            mega_obs::counter_add(&name, 1);
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records an input tensor (parameter or constant); gradients are
    /// computed for every leaf reachable from the loss.
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Acquires a pooled buffer sized for an `rows × cols` output.
    fn out_buf(&self, rows: usize, cols: usize) -> Vec<f32> {
        self.pool.acquire(rows * cols)
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t = mega_obs::timer();
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(
            x.cols(),
            y.rows(),
            "matmul: inner dims {}x{} · {}x{}",
            x.rows(),
            x.cols(),
            y.rows(),
            y.cols()
        );
        let (n, k, m) = (x.rows(), x.cols(), y.cols());
        let mut out = self.out_buf(n, m);
        self.backend
            .matmul(x.as_slice(), y.as_slice(), n, k, m, &self.par, &mut out);
        t.observe("tensor.matmul_ns");
        self.push(Tensor::from_vec(n, m, out), Op::MatMul(a, b))
    }

    /// Fused dense layer: `relu(x · w + bias)` in one node.
    ///
    /// Forward and backward match the unfused `matmul` → `add_row` → `relu`
    /// chain value-for-value while saving two intermediate tensors and two
    /// memory sweeps; backends may fuse further (see `BlockedBackend`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `bias` is not `1 × w.cols()`.
    pub fn linear_relu(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let t = mega_obs::timer();
        let (vx, vw, vb) = (self.value(x), self.value(w), self.value(bias));
        assert_eq!(
            vx.cols(),
            vw.rows(),
            "linear_relu: inner dims {}x{} · {}x{}",
            vx.rows(),
            vx.cols(),
            vw.rows(),
            vw.cols()
        );
        assert_eq!(vb.rows(), 1, "bias must be a single row");
        assert_eq!(vb.cols(), vw.cols(), "bias width mismatch");
        let (n, k, m) = (vx.rows(), vx.cols(), vw.cols());
        let mut out = self.out_buf(n, m);
        self.backend.linear_relu(
            vx.as_slice(),
            vw.as_slice(),
            vb.as_slice(),
            n,
            k,
            m,
            &self.par,
            &mut out,
        );
        t.observe("tensor.matmul_ns");
        self.push(Tensor::from_vec(n, m, out), Op::LinearRelu(x, w, bias))
    }

    /// Elementwise sum of same-shape tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(
            x.shape(),
            y.shape(),
            "add: shape mismatch {:?} vs {:?}",
            x.shape(),
            y.shape()
        );
        let mut out = self.out_buf(x.rows(), x.cols());
        self.backend.add(x.as_slice(), y.as_slice(), &mut out);
        let t = Tensor::from_vec(x.rows(), x.cols(), out);
        self.push(t, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(
            x.shape(),
            y.shape(),
            "sub: shape mismatch {:?} vs {:?}",
            x.shape(),
            y.shape()
        );
        let mut out = self.out_buf(x.rows(), x.cols());
        self.backend.sub(x.as_slice(), y.as_slice(), &mut out);
        let t = Tensor::from_vec(x.rows(), x.cols(), out);
        self.push(t, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(
            x.shape(),
            y.shape(),
            "mul: shape mismatch {:?} vs {:?}",
            x.shape(),
            y.shape()
        );
        let mut out = self.out_buf(x.rows(), x.cols());
        self.backend.mul(x.as_slice(), y.as_slice(), &mut out);
        let t = Tensor::from_vec(x.rows(), x.cols(), out);
        self.push(t, Op::Mul(a, b))
    }

    /// Adds a `1 × c` bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × a.cols()`.
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let (x, b) = (self.value(a), self.value(bias));
        assert_eq!(b.rows(), 1, "bias must be a single row");
        assert_eq!(b.cols(), x.cols(), "bias width mismatch");
        let mut out = self.out_buf(x.rows(), x.cols());
        self.backend
            .add_bias_rows(x.as_slice(), b.as_slice(), x.rows(), x.cols(), &mut out);
        let t = Tensor::from_vec(x.rows(), x.cols(), out);
        self.push(t, Op::AddRow(a, bias))
    }

    /// Multiplies every element by `k`.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let x = self.value(a);
        let mut out = self.out_buf(x.rows(), x.cols());
        self.backend.scale(x.as_slice(), k, &mut out);
        let t = Tensor::from_vec(x.rows(), x.cols(), out);
        self.push(t, Op::Scale(a, k))
    }

    /// Elementwise activation through the backend.
    fn unary_op(&mut self, a: Var, unary: Unary, op: Op) -> Var {
        let x = self.value(a);
        let mut out = self.out_buf(x.rows(), x.cols());
        self.backend.unary(unary, x.as_slice(), &mut out);
        let t = Tensor::from_vec(x.rows(), x.cols(), out);
        self.push(t, op)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary_op(a, Unary::Relu, Op::Relu(a))
    }

    /// Leaky rectified linear unit: `x` if positive, else `slope * x`.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        self.unary_op(a, Unary::LeakyRelu(slope), Op::LeakyRelu(a, slope))
    }

    /// Inverted dropout with a precomputed keep-mask: kept elements are
    /// scaled by `1 / keep_prob`, dropped elements become zero. The caller
    /// supplies the mask so training loops control the randomness.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the element count or
    /// `keep_prob` is not in `(0, 1]`.
    pub fn dropout(&mut self, a: Var, mask: Arc<Vec<bool>>, keep_prob: f32) -> Var {
        let x = self.value(a);
        assert_eq!(mask.len(), x.rows() * x.cols(), "one mask bit per element");
        assert!(
            keep_prob > 0.0 && keep_prob <= 1.0,
            "keep_prob must be in (0, 1]"
        );
        let inv = 1.0 / keep_prob;
        let mut out = x.clone();
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            *o = if mask[i] { *o * inv } else { 0.0 };
        }
        self.push(out, Op::Dropout(a, mask, keep_prob))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary_op(a, Unary::Sigmoid, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary_op(a, Unary::Tanh, Op::Tanh(a))
    }

    /// Sum of all elements (scalar `1 × 1`).
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(v, Op::Sum(a))
    }

    /// Mean of all elements (scalar `1 × 1`).
    pub fn mean(&mut self, a: Var) -> Var {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(v, Op::Mean(a))
    }

    /// Elementwise `a / (b + eps)` for same-shape tensors (the paper's gated
    /// aggregation normalizer).
    pub fn div_eps(&mut self, a: Var, b: Var, eps: f32) -> Var {
        let v = self.value(a).zip_map(self.value(b), |x, y| x / (y + eps));
        self.push(v, Op::DivEps(a, b, eps))
    }

    /// Row-wise dot product of same-shape tensors: output is `r × 1` with
    /// `out[i] = Σ_c a[i,c]·b[i,c]` (attention scores).
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(x.shape(), y.shape(), "row_dot shape mismatch");
        let mut out = Tensor::zeros(x.rows(), 1);
        for r in 0..x.rows() {
            let s: f32 = x.row(r).iter().zip(y.row(r)).map(|(&p, &q)| p * q).sum();
            out.set(r, 0, s);
        }
        self.push(out, Op::RowDot(a, b))
    }

    /// Broadcast-multiplies each row of `a` (`r × c`) by the matching scalar
    /// in `w` (`r × 1`) — applying attention weights to values.
    pub fn mul_col_broadcast(&mut self, a: Var, w: Var) -> Var {
        let (x, y) = (self.value(a), self.value(w));
        assert_eq!(y.cols(), 1, "weights must be a column");
        assert_eq!(x.rows(), y.rows(), "row count mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            let k = y.at(r, 0);
            for o in out.row_mut(r) {
                *o *= k;
            }
        }
        self.push(out, Op::MulColBroadcast(a, w))
    }

    /// Horizontally concatenates tensors with equal row counts (multi-head
    /// attention heads → model width).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut offset = 0usize;
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                let src = t.row(r).to_vec();
                out.row_mut(r)[offset..offset + src.len()].copy_from_slice(&src);
            }
            offset += t.cols();
        }
        self.push(out, Op::ConcatCols(Arc::new(parts.to_vec())))
    }

    /// Gathers rows of `a` by `index` (e.g. node features → per-edge source
    /// features, or node features → path positions).
    pub fn gather_rows(&mut self, a: Var, index: Arc<Vec<usize>>) -> Var {
        let x = self.value(a);
        let mut out = self.out_buf(index.len(), x.cols());
        self.backend
            .gather_rows(x.as_slice(), x.rows(), x.cols(), &index, &mut out);
        let t = Tensor::from_vec(index.len(), x.cols(), out);
        self.push(t, Op::GatherRows(a, index))
    }

    /// Scatter-adds rows of `a` into `out_rows` buckets by `index` (e.g.
    /// per-edge messages → destination nodes, or path positions → nodes).
    pub fn scatter_add_rows(&mut self, a: Var, index: Arc<Vec<usize>>, out_rows: usize) -> Var {
        let x = self.value(a);
        let mut out = self.out_buf(out_rows, x.cols());
        self.backend
            .scatter_add_rows(x.as_slice(), &index, x.cols(), out_rows, &mut out);
        let t = Tensor::from_vec(out_rows, x.cols(), out);
        self.push(t, Op::ScatterAddRows(a, index))
    }

    /// Scales row `i` by `factors[i]` (segment means, appearance averaging).
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != a.rows()`.
    pub fn scale_rows(&mut self, a: Var, factors: Arc<Vec<f32>>) -> Var {
        let x = self.value(a);
        assert_eq!(factors.len(), x.rows(), "one factor per row required");
        let mut out = self.out_buf(x.rows(), x.cols());
        self.backend
            .scale_rows(x.as_slice(), &factors, x.cols(), &mut out);
        let t = Tensor::from_vec(x.rows(), x.cols(), out);
        self.push(t, Op::ScaleRows(a, factors))
    }

    /// Column-wise softmax within row segments: rows sharing `segments[i]`
    /// form one softmax group per column (attention over a node's incident
    /// edges). `n_segments` bounds the segment ids.
    ///
    /// # Panics
    ///
    /// Panics if `segments.len() != a.rows()` or an id is out of range.
    pub fn segment_softmax(&mut self, a: Var, segments: Arc<Vec<usize>>, n_segments: usize) -> Var {
        let x = self.value(a);
        assert_eq!(segments.len(), x.rows(), "one segment id per row required");
        let (r, c) = x.shape();
        let mut out = self.out_buf(r, c);
        self.backend
            .segment_softmax(x.as_slice(), r, c, &segments, n_segments, &mut out);
        let t = Tensor::from_vec(r, c, out);
        self.push(t, Op::SegmentSoftmax(a, segments, n_segments))
    }

    /// Row-wise layer normalization with learnable `gamma`, `beta` (each
    /// `1 × c`).
    pub fn layer_norm(&mut self, a: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (x, g, b) = (self.value(a), self.value(gamma), self.value(beta));
        assert_eq!(g.shape(), (1, x.cols()), "gamma shape");
        assert_eq!(b.shape(), (1, x.cols()), "beta shape");
        let (r, c) = x.shape();
        let mut out = self.out_buf(r, c);
        self.backend.layer_norm(
            x.as_slice(),
            g.as_slice(),
            b.as_slice(),
            r,
            c,
            eps,
            &mut out,
        );
        let t = Tensor::from_vec(r, c, out);
        self.push(t, Op::LayerNorm(a, gamma, beta, eps))
    }

    /// Column-wise batch normalization (statistics over rows) with learnable
    /// `gamma`, `beta` (each `1 × c`). Training-mode statistics only.
    pub fn batch_norm(&mut self, a: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (x, g, b) = (self.value(a), self.value(gamma), self.value(beta));
        assert_eq!(g.shape(), (1, x.cols()), "gamma shape");
        assert_eq!(b.shape(), (1, x.cols()), "beta shape");
        let (r, c) = x.shape();
        let mut out = self.out_buf(r, c);
        self.backend.batch_norm(
            x.as_slice(),
            g.as_slice(),
            b.as_slice(),
            r,
            c,
            eps,
            &mut out,
        );
        let t = Tensor::from_vec(r, c, out);
        self.push(t, Op::BatchNorm(a, gamma, beta, eps))
    }

    /// Mean absolute error against a constant target (scalar output).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn l1_loss(&mut self, pred: Var, target: Tensor) -> Var {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "l1 target shape mismatch");
        let n = (p.rows() * p.cols()).max(1) as f32;
        let loss = p
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f32>()
            / n;
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            Op::L1Loss(pred, Arc::new(target)),
        )
    }

    /// Softmax cross-entropy over rows of `logits` against integer class
    /// labels (scalar mean output).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or a label is out of range.
    pub fn cross_entropy(&mut self, logits: Var, labels: Arc<Vec<usize>>) -> Var {
        let x = self.value(logits);
        assert_eq!(labels.len(), x.rows(), "one label per row required");
        let mut loss = 0.0f32;
        for i in 0..x.rows() {
            let row = x.row(i);
            assert!(labels[i] < x.cols(), "label {} out of range", labels[i]);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let logsum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            loss += logsum - row[labels[i]];
        }
        loss /= x.rows().max(1) as f32;
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            Op::CrossEntropy(logits, labels),
        )
    }

    /// Runs the backward pass from the scalar node `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        let _span = mega_obs::span("tape_backward");
        mega_obs::counter_add("tensor.tape.backward_passes", 1);
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        let mut grads: Vec<Tensor> = self
            .nodes
            .iter()
            .map(|n| Tensor::zeros(n.value.rows(), n.value.cols()))
            .collect();
        grads[loss.0].set(0, 0, 1.0);

        for idx in (0..=loss.0).rev() {
            if grads[idx].as_slice().iter().all(|&g| g == 0.0) {
                continue;
            }
            let g = grads[idx].clone();
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                    let (n, k, m) = (va.rows(), va.cols(), vb.cols());
                    // da = g · bᵀ, db = aᵀ · g — both through the backend so
                    // an accelerated GEMM speeds the backward pass too.
                    let mut bt = self.pool.acquire(k * m);
                    kernels::transpose(vb.as_slice(), k, m, &mut bt);
                    let mut da = self.pool.acquire(n * k);
                    self.backend
                        .matmul(g.as_slice(), &bt, n, m, k, &self.par, &mut da);
                    add_slice(&mut grads[a.0], &da);
                    self.pool.release(bt);
                    self.pool.release(da);
                    let mut at = self.pool.acquire(n * k);
                    kernels::transpose(va.as_slice(), n, k, &mut at);
                    let mut db = self.pool.acquire(k * m);
                    self.backend
                        .matmul(&at, g.as_slice(), k, n, m, &self.par, &mut db);
                    add_slice(&mut grads[b.0], &db);
                    self.pool.release(at);
                    self.pool.release(db);
                }
                Op::LinearRelu(x, w, bias) => {
                    let (vx, vw) = (&self.nodes[x.0].value, &self.nodes[w.0].value);
                    let out = &self.nodes[idx].value;
                    let (n, k, m) = (vx.rows(), vx.cols(), vw.cols());
                    // Mask the upstream gradient by the activation: the kept
                    // pre-activations are exactly the positive outputs.
                    let mut gm = self.pool.acquire(n * m);
                    for ((o, &gv), &ov) in gm.iter_mut().zip(g.as_slice()).zip(out.as_slice()) {
                        *o = if ov > 0.0 { gv } else { 0.0 };
                    }
                    // dbias = column sums of gm, folded row-major as the
                    // unfused AddRow backward does.
                    let mut db = self.pool.acquire(m);
                    for r in 0..n {
                        for c in 0..m {
                            db[c] += gm[r * m + c];
                        }
                    }
                    add_slice(&mut grads[bias.0], &db);
                    self.pool.release(db);
                    // dx = gm · wᵀ, dw = xᵀ · gm — the MatMul backward on the
                    // masked gradient.
                    let mut wt = self.pool.acquire(k * m);
                    kernels::transpose(vw.as_slice(), k, m, &mut wt);
                    let mut dx = self.pool.acquire(n * k);
                    self.backend.matmul(&gm, &wt, n, m, k, &self.par, &mut dx);
                    add_slice(&mut grads[x.0], &dx);
                    self.pool.release(wt);
                    self.pool.release(dx);
                    let mut xt = self.pool.acquire(n * k);
                    kernels::transpose(vx.as_slice(), n, k, &mut xt);
                    let mut dw = self.pool.acquire(k * m);
                    self.backend.matmul(&xt, &gm, k, n, m, &self.par, &mut dw);
                    add_slice(&mut grads[w.0], &dw);
                    self.pool.release(xt);
                    self.pool.release(dw);
                    self.pool.release(gm);
                }
                Op::Add(a, b) => {
                    grads[a.0].add_assign(&g);
                    grads[b.0].add_assign(&g);
                }
                Op::Sub(a, b) => {
                    grads[a.0].add_assign(&g);
                    let neg = g.scale(-1.0);
                    grads[b.0].add_assign(&neg);
                }
                Op::Mul(a, b) => {
                    let da = g.mul(&self.nodes[b.0].value);
                    let db = g.mul(&self.nodes[a.0].value);
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::AddRow(a, bias) => {
                    grads[a.0].add_assign(&g);
                    let mut db = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            db.set(0, c, db.at(0, c) + g.at(r, c));
                        }
                    }
                    grads[bias.0].add_assign(&db);
                }
                Op::Scale(a, k) => {
                    let da = g.scale(*k);
                    grads[a.0].add_assign(&da);
                }
                Op::Relu(a) => {
                    let da = g.zip_map(
                        &self.nodes[a.0].value,
                        |gg, x| if x > 0.0 { gg } else { 0.0 },
                    );
                    grads[a.0].add_assign(&da);
                }
                Op::LeakyRelu(a, slope) => {
                    let da = g.zip_map(&self.nodes[a.0].value, |gg, x| {
                        if x > 0.0 {
                            gg
                        } else {
                            gg * slope
                        }
                    });
                    grads[a.0].add_assign(&da);
                }
                Op::Dropout(a, mask, keep_prob) => {
                    let inv = 1.0 / keep_prob;
                    let mut da = g.clone();
                    for (i, o) in da.as_mut_slice().iter_mut().enumerate() {
                        *o = if mask[i] { *o * inv } else { 0.0 };
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let da = g.zip_map(y, |gg, s| gg * s * (1.0 - s));
                    grads[a.0].add_assign(&da);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let da = g.zip_map(y, |gg, t| gg * (1.0 - t * t));
                    grads[a.0].add_assign(&da);
                }
                Op::Sum(a) => {
                    let va = &self.nodes[a.0].value;
                    let da = Tensor::full(va.rows(), va.cols(), g.at(0, 0));
                    grads[a.0].add_assign(&da);
                }
                Op::Mean(a) => {
                    let va = &self.nodes[a.0].value;
                    let n = (va.rows() * va.cols()).max(1) as f32;
                    let da = Tensor::full(va.rows(), va.cols(), g.at(0, 0) / n);
                    grads[a.0].add_assign(&da);
                }
                Op::DivEps(a, b, eps) => {
                    let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                    let da = g.zip_map(vb, |gg, y| gg / (y + eps));
                    let mut db = Tensor::zeros(vb.rows(), vb.cols());
                    for i in 0..db.as_slice().len() {
                        let y = vb.as_slice()[i] + eps;
                        db.as_mut_slice()[i] = -g.as_slice()[i] * va.as_slice()[i] / (y * y);
                    }
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::RowDot(a, b) => {
                    let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                    let mut da = Tensor::zeros(va.rows(), va.cols());
                    let mut db = Tensor::zeros(vb.rows(), vb.cols());
                    for r in 0..va.rows() {
                        let gr = g.at(r, 0);
                        for c in 0..va.cols() {
                            da.set(r, c, gr * vb.at(r, c));
                            db.set(r, c, gr * va.at(r, c));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::MulColBroadcast(a, w) => {
                    let (va, vw) = (&self.nodes[a.0].value, &self.nodes[w.0].value);
                    let mut da = Tensor::zeros(va.rows(), va.cols());
                    let mut dw = Tensor::zeros(vw.rows(), 1);
                    for r in 0..va.rows() {
                        let k = vw.at(r, 0);
                        let mut acc = 0.0f32;
                        for c in 0..va.cols() {
                            da.set(r, c, g.at(r, c) * k);
                            acc += g.at(r, c) * va.at(r, c);
                        }
                        dw.set(r, 0, acc);
                    }
                    grads[a.0].add_assign(&da);
                    grads[w.0].add_assign(&dw);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0usize;
                    for &p in parts.iter() {
                        let w = self.nodes[p.0].value.cols();
                        let mut dp = Tensor::zeros(g.rows(), w);
                        for r in 0..g.rows() {
                            for c in 0..w {
                                dp.set(r, c, g.at(r, offset + c));
                            }
                        }
                        grads[p.0].add_assign(&dp);
                        offset += w;
                    }
                }
                Op::GatherRows(a, index) => {
                    let da = g.scatter_add_rows(index, self.nodes[a.0].value.rows());
                    grads[a.0].add_assign(&da);
                }
                Op::ScatterAddRows(a, index) => {
                    let da = g.gather_rows(index);
                    grads[a.0].add_assign(&da);
                }
                Op::ScaleRows(a, factors) => {
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        let k = factors[r];
                        for v in da.row_mut(r) {
                            *v *= k;
                        }
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::SegmentSoftmax(a, segments, n_segments) => {
                    let p = &self.nodes[idx].value;
                    let (r, c) = p.shape();
                    // dx = p ⊙ (g - Σ_seg (g ⊙ p)) per column.
                    let mut dots = vec![0.0f32; n_segments * c];
                    for i in 0..r {
                        let s = segments[i];
                        for j in 0..c {
                            dots[s * c + j] += g.at(i, j) * p.at(i, j);
                        }
                    }
                    let mut da = Tensor::zeros(r, c);
                    for i in 0..r {
                        let s = segments[i];
                        for j in 0..c {
                            da.set(i, j, p.at(i, j) * (g.at(i, j) - dots[s * c + j]));
                        }
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::LayerNorm(a, gamma, beta, eps) => {
                    let x = &self.nodes[a.0].value;
                    let gm = &self.nodes[gamma.0].value;
                    let (r, c) = x.shape();
                    let cn = c as f32;
                    let mut da = Tensor::zeros(r, c);
                    let mut dgamma = Tensor::zeros(1, c);
                    let mut dbeta = Tensor::zeros(1, c);
                    for i in 0..r {
                        let row = x.row(i);
                        let mean = row.iter().sum::<f32>() / cn;
                        let var = row.iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / cn;
                        let inv = 1.0 / (var + eps).sqrt();
                        let xhat: Vec<f32> = row.iter().map(|&v| (v - mean) * inv).collect();
                        let dxhat: Vec<f32> = (0..c).map(|j| g.at(i, j) * gm.at(0, j)).collect();
                        let mean_dxhat = dxhat.iter().sum::<f32>() / cn;
                        let mean_dxhat_xhat =
                            dxhat.iter().zip(&xhat).map(|(&d, &h)| d * h).sum::<f32>() / cn;
                        for j in 0..c {
                            da.set(
                                i,
                                j,
                                inv * (dxhat[j] - mean_dxhat - xhat[j] * mean_dxhat_xhat),
                            );
                            dgamma.set(0, j, dgamma.at(0, j) + g.at(i, j) * xhat[j]);
                            dbeta.set(0, j, dbeta.at(0, j) + g.at(i, j));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[gamma.0].add_assign(&dgamma);
                    grads[beta.0].add_assign(&dbeta);
                }
                Op::BatchNorm(a, gamma, beta, eps) => {
                    let x = &self.nodes[a.0].value;
                    let gm = &self.nodes[gamma.0].value;
                    let (r, c) = x.shape();
                    let rn = r.max(1) as f32;
                    let mut da = Tensor::zeros(r, c);
                    let mut dgamma = Tensor::zeros(1, c);
                    let mut dbeta = Tensor::zeros(1, c);
                    for j in 0..c {
                        let mut mean = 0.0f32;
                        for i in 0..r {
                            mean += x.at(i, j);
                        }
                        mean /= rn;
                        let mut var = 0.0f32;
                        for i in 0..r {
                            var += (x.at(i, j) - mean).powi(2);
                        }
                        var /= rn;
                        let inv = 1.0 / (var + eps).sqrt();
                        let xhat: Vec<f32> = (0..r).map(|i| (x.at(i, j) - mean) * inv).collect();
                        let dxhat: Vec<f32> = (0..r).map(|i| g.at(i, j) * gm.at(0, j)).collect();
                        let mean_dxhat = dxhat.iter().sum::<f32>() / rn;
                        let mean_dxhat_xhat =
                            dxhat.iter().zip(&xhat).map(|(&d, &h)| d * h).sum::<f32>() / rn;
                        for i in 0..r {
                            da.set(
                                i,
                                j,
                                inv * (dxhat[i] - mean_dxhat - xhat[i] * mean_dxhat_xhat),
                            );
                            dgamma.set(0, j, dgamma.at(0, j) + g.at(i, j) * xhat[i]);
                            dbeta.set(0, j, dbeta.at(0, j) + g.at(i, j));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[gamma.0].add_assign(&dgamma);
                    grads[beta.0].add_assign(&dbeta);
                }
                Op::L1Loss(pred, target) => {
                    let p = &self.nodes[pred.0].value;
                    let n = (p.rows() * p.cols()).max(1) as f32;
                    let scale = g.at(0, 0) / n;
                    let dp = p.zip_map(target, |a, b| {
                        if a > b {
                            scale
                        } else if a < b {
                            -scale
                        } else {
                            0.0
                        }
                    });
                    grads[pred.0].add_assign(&dp);
                }
                Op::CrossEntropy(logits, labels) => {
                    let x = &self.nodes[logits.0].value;
                    let (r, c) = x.shape();
                    let scale = g.at(0, 0) / r.max(1) as f32;
                    let mut dx = Tensor::zeros(r, c);
                    for i in 0..r {
                        let row = x.row(i);
                        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                        let sum: f32 = row.iter().map(|&v| (v - max).exp()).sum();
                        for (j, &logit) in row.iter().enumerate() {
                            let p = (logit - max).exp() / sum;
                            let y = if labels[i] == j { 1.0 } else { 0.0 };
                            dx.set(i, j, scale * (p - y));
                        }
                    }
                    grads[logits.0].add_assign(&dx);
                }
            }
        }
        Gradients { grads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference gradient check of a scalar function of one
    /// leaf tensor.
    fn check_grad<F>(input: Tensor, f: F, tol: f32)
    where
        F: Fn(&mut Tape, Var) -> Var,
    {
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = f(&mut tape, x);
        let analytic = tape.backward(loss).wrt(x).clone();

        let h = 1e-3f32;
        for i in 0..input.as_slice().len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += h;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let lp = f(&mut tp, xp);
            let fp = tp.value(lp).at(0, 0);

            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= h;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let lm = f(&mut tm, xm);
            let fm = tm.value(lm).at(0, 0);

            let numeric = (fp - fm) / (2.0 * h);
            let got = analytic.as_slice()[i];
            assert!(
                (numeric - got).abs() < tol,
                "element {i}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    fn sample(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Deterministic pseudo-random values in (-1, 1), away from relu kinks.
        let mut v = Vec::with_capacity(rows * cols);
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        for _ in 0..rows * cols {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let x = ((state >> 8) as f32 / (1u32 << 24) as f32) * 1.6 - 0.8;
            v.push(if x.abs() < 0.05 { x + 0.1 } else { x });
        }
        Tensor::from_vec(rows, cols, v)
    }

    #[test]
    fn grad_matmul() {
        check_grad(
            sample(3, 4, 1),
            |t, x| {
                let w = t.leaf(sample(4, 2, 2));
                let y = t.matmul(x, w);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_linear_relu() {
        check_grad(
            sample(3, 4, 28),
            |t, x| {
                let w = t.leaf(sample(4, 2, 29));
                let b = t.leaf(sample(1, 2, 31));
                let y = t.linear_relu(x, w, b);
                t.sum(y)
            },
            2e-2,
        );
        // Weight and bias gradients via the weight as the probed leaf.
        check_grad(
            sample(4, 2, 32),
            |t, w| {
                let x = t.leaf(sample(3, 4, 33));
                let b = t.leaf(sample(1, 2, 34));
                let y = t.linear_relu(x, w, b);
                t.sum(y)
            },
            2e-2,
        );
    }

    #[test]
    fn linear_relu_matches_unfused_chain() {
        let x = sample(5, 7, 40);
        let w = sample(7, 3, 41);
        let b = sample(1, 3, 42);

        let mut fused = Tape::new();
        let (fx, fw, fb) = (
            fused.leaf(x.clone()),
            fused.leaf(w.clone()),
            fused.leaf(b.clone()),
        );
        let fy = fused.linear_relu(fx, fw, fb);
        let floss = fused.sum(fy);
        let fg = fused.backward(floss);

        let mut unfused = Tape::new();
        let (ux, uw, ub) = (unfused.leaf(x), unfused.leaf(w), unfused.leaf(b));
        let um = unfused.matmul(ux, uw);
        let ua = unfused.add_row(um, ub);
        let uy = unfused.relu(ua);
        let uloss = unfused.sum(uy);
        let ug = unfused.backward(uloss);

        for (a, c) in fused
            .value(fy)
            .as_slice()
            .iter()
            .zip(unfused.value(uy).as_slice())
        {
            assert_eq!(a.to_bits(), c.to_bits());
        }
        for (v_f, v_u) in [(fx, ux), (fw, uw), (fb, ub)] {
            for (a, c) in fg.wrt(v_f).as_slice().iter().zip(ug.wrt(v_u).as_slice()) {
                assert_eq!(a.to_bits(), c.to_bits());
            }
        }
    }

    #[test]
    fn shared_pool_recycles_node_buffers() {
        use mega_exec::{BufferPool, ReferenceBackend};
        let pool = Arc::new(BufferPool::new());
        for _ in 0..3 {
            let mut tape = Tape::with_exec(Arc::new(ReferenceBackend), pool.clone());
            let a = tape.leaf(sample(8, 8, 50));
            let b = tape.leaf(sample(8, 8, 51));
            let c = tape.matmul(a, b);
            let loss = tape.sum(c);
            let _ = tape.backward(loss);
        }
        // Later tapes must have drawn buffers recycled from earlier drops.
        assert!(pool.hits() > 0, "pool never recycled a buffer");
    }

    #[test]
    fn grad_elementwise_chain() {
        check_grad(
            sample(2, 3, 3),
            |t, x| {
                let y = t.mul(x, x);
                let z = t.scale(y, 0.5);
                t.mean(z)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        check_grad(
            sample(2, 3, 4),
            |t, x| {
                let y = t.sigmoid(x);
                t.sum(y)
            },
            1e-2,
        );
        check_grad(
            sample(2, 3, 5),
            |t, x| {
                let y = t.tanh(x);
                t.sum(y)
            },
            1e-2,
        );
        check_grad(
            sample(2, 3, 6),
            |t, x| {
                let y = t.relu(x);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_add_row_bias() {
        check_grad(
            sample(1, 3, 7),
            |t, bias| {
                let a = t.leaf(sample(4, 3, 8));
                let y = t.add_row(a, bias);
                let z = t.mul(y, y);
                t.sum(z)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_div_eps() {
        check_grad(
            sample(2, 2, 9),
            |t, x| {
                let d = t.leaf(Tensor::full(2, 2, 2.0));
                let y = t.div_eps(x, d, 1e-3);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_row_dot_and_broadcast() {
        check_grad(
            sample(3, 4, 10),
            |t, x| {
                let other = t.leaf(sample(3, 4, 11));
                let w = t.row_dot(x, other);
                let y = t.mul_col_broadcast(other, w);
                t.sum(y)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        let idx = Arc::new(vec![0usize, 2, 2, 1]);
        check_grad(
            sample(3, 2, 12),
            move |t, x| {
                let g = t.gather_rows(x, idx.clone());
                let sq = t.mul(g, g);
                let s = t.scatter_add_rows(sq, Arc::new(vec![0, 0, 1, 1]), 2);
                t.sum(s)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_segment_softmax() {
        let segs = Arc::new(vec![0usize, 0, 1, 1, 1]);
        check_grad(
            sample(5, 2, 13),
            move |t, x| {
                let p = t.segment_softmax(x, segs.clone(), 2);
                let w = t.leaf(sample(5, 2, 14));
                let y = t.mul(p, w);
                t.sum(y)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        check_grad(
            sample(3, 4, 15),
            |t, x| {
                let gamma = t.leaf(Tensor::full(1, 4, 1.2));
                let beta = t.leaf(Tensor::full(1, 4, 0.1));
                let y = t.layer_norm(x, gamma, beta, 1e-5);
                let w = t.leaf(sample(3, 4, 16));
                let z = t.mul(y, w);
                t.sum(z)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_batch_norm() {
        check_grad(
            sample(4, 3, 17),
            |t, x| {
                let gamma = t.leaf(Tensor::full(1, 3, 0.9));
                let beta = t.leaf(Tensor::full(1, 3, -0.2));
                let y = t.batch_norm(x, gamma, beta, 1e-5);
                let w = t.leaf(sample(4, 3, 18));
                let z = t.mul(y, w);
                t.sum(z)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_leaky_relu() {
        check_grad(
            sample(2, 3, 27),
            |t, x| {
                let y = t.leaky_relu(x, 0.2);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn dropout_forward_and_grad() {
        let mask = Arc::new(vec![true, false, true, true]);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_rows(&[&[2.0, 2.0], &[2.0, 2.0]]));
        let y = tape.dropout(x, mask.clone(), 0.5);
        assert_eq!(tape.value(y).as_slice(), &[4.0, 0.0, 4.0, 4.0]);
        let loss = tape.sum(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.wrt(x).as_slice(), &[2.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "one mask bit per element")]
    fn dropout_mask_length_checked() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(2, 2));
        tape.dropout(x, Arc::new(vec![true]), 0.5);
    }

    #[test]
    fn grad_losses() {
        let target = sample(3, 1, 19);
        check_grad(
            sample(3, 1, 20),
            move |t, x| t.l1_loss(x, target.clone()),
            1e-2,
        );
        let labels = Arc::new(vec![0usize, 2, 1]);
        check_grad(
            sample(3, 3, 21),
            move |t, x| t.cross_entropy(x, labels.clone()),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_cols() {
        check_grad(
            sample(2, 2, 22),
            |t, x| {
                let other = t.leaf(sample(2, 3, 23));
                let y = t.concat_cols(&[x, other]);
                let w = t.leaf(sample(2, 5, 24));
                let z = t.mul(y, w);
                t.sum(z)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_scale_rows_and_sub() {
        let f = Arc::new(vec![0.5f32, 2.0, -1.0]);
        check_grad(
            sample(3, 2, 25),
            move |t, x| {
                let y = t.scale_rows(x, f.clone());
                let o = t.leaf(sample(3, 2, 26));
                let d = t.sub(y, o);
                let sq = t.mul(d, d);
                t.mean(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn unused_leaf_gets_zero_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(2, 2, 1.0));
        let unused = tape.leaf(Tensor::full(3, 1, 5.0));
        let loss = tape.sum(x);
        let grads = tape.backward(loss);
        assert!(grads.wrt(unused).as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn grad_accumulates_over_shared_use() {
        // loss = sum(x + x) -> dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(2, 2, 1.0));
        let y = tape.add(x, x);
        let loss = tape.sum(y);
        let grads = tape.backward(loss);
        assert!(grads
            .wrt(x)
            .as_slice()
            .iter()
            .all(|&g| (g - 2.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(2, 2));
        tape.backward(x);
    }

    #[test]
    fn first_nonfinite_names_the_entry_point() {
        let mut tape = Tape::new();
        let healthy = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(tape.first_nonfinite(), None);
        // Inf enters through a scale; everything downstream is contaminated
        // but the scan must name the first offender in recording order.
        let blown = tape.scale(healthy, f32::INFINITY);
        let _downstream = tape.relu(blown);
        let (idx, kind) = tape.first_nonfinite().expect("inf on tape");
        assert_eq!(idx, 1);
        assert_eq!(kind, "scale");
        // NaN is caught too (inf - inf inside an add of opposing infs).
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 1, vec![f32::NAN]));
        let (idx, kind) = tape.first_nonfinite().expect("nan on tape");
        assert_eq!((idx, kind), (0, "leaf"));
        let _ = x;
    }

    #[test]
    fn segment_softmax_rows_sum_to_one_per_segment() {
        let mut tape = Tape::new();
        let x = tape.leaf(sample(6, 2, 30));
        let segs = Arc::new(vec![0usize, 1, 0, 1, 2, 2]);
        let p = tape.segment_softmax(x, segs.clone(), 3);
        let v = tape.value(p);
        for seg in 0..3 {
            for col in 0..2 {
                let s: f32 = (0..6)
                    .filter(|&i| segs[i] == seg)
                    .map(|i| v.at(i, col))
                    .sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }
}
