//! §IV-B6: distributed communication analysis.
//!
//! Communication volume and communicating-pair counts for edge-cut
//! partitioning (hash and BFS-locality) versus MEGA's path-segment
//! partitioning, across partition counts. The path partition needs exactly
//! `k − 1` neighbor exchanges — the paper's `O(k)` claim — plus a bounded
//! replica-sync term from node revisits.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::{preprocess, MegaConfig};
use mega_dist::{bfs_partition, edge_cut_volume, hash_partition, path_partition_volume};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    partitions: usize,
    hash_pairs: usize,
    hash_volume: usize,
    bfs_pairs: usize,
    bfs_volume: usize,
    path_pairs: usize,
    path_volume: usize,
    path_replicas: usize,
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(6);
    let g = generate::barabasi_albert(2000, 3, &mut rng).unwrap();
    let schedule = preprocess(&g, &MegaConfig::default()).unwrap();
    mega_obs::data!(
        "graph: n={} m={} | path length {} (expansion {:.2})\n",
        g.node_count(),
        g.edge_count(),
        schedule.path().len(),
        schedule.path().expansion_factor()
    );
    let mut table = TableWriter::new(&[
        "k",
        "hash pairs",
        "hash vol",
        "bfs pairs",
        "bfs vol",
        "path pairs",
        "path vol",
        "replicas",
    ]);
    let mut rows = Vec::new();
    for &k in &[2usize, 4, 8, 16, 32, 64] {
        let hash = edge_cut_volume(&g, &hash_partition(&g, k), k);
        let bfs = edge_cut_volume(&g, &bfs_partition(&g, k), k);
        let path = path_partition_volume(&schedule, k);
        table.row(&[
            k.to_string(),
            hash.comm_pairs.to_string(),
            hash.volume_rows.to_string(),
            bfs.comm_pairs.to_string(),
            bfs.volume_rows.to_string(),
            path.comm_pairs.to_string(),
            path.volume_rows.to_string(),
            path.replica_rows.to_string(),
        ]);
        rows.push(Row {
            partitions: k,
            hash_pairs: hash.comm_pairs,
            hash_volume: hash.volume_rows,
            bfs_pairs: bfs.comm_pairs,
            bfs_volume: bfs.volume_rows,
            path_pairs: path.comm_pairs,
            path_volume: path.volume_rows,
            path_replicas: path.replica_rows,
        });
    }
    mega_obs::data!("Distributed communication analysis (BA graph, n=2000, m=3 attachment)\n");
    table.print();
    mega_obs::data!(
        "\nPaper claims: edge-cut partitions approach all-to-all (pairs ~ k^2/2) with volume\n\
         growing with cut edges; the path partition needs exactly k-1 adjacent exchanges (O(k))\n\
         at the cost of {} replica rows ({}% of nodes).",
        rows.last().unwrap().path_replicas,
        fmt(
            100.0 * rows.last().unwrap().path_replicas as f64 / 2000.0,
            1
        )
    );
    save_json("dist_comm_analysis", &rows);
}
