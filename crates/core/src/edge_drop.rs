//! DropEdge-style random edge removal (paper §IV-B5).
//!
//! "20% of edges are randomly dropped within every graph and its respective
//! path representation" — dropping happens *before* traversal so the path is
//! built over (and only needs to cover) the surviving edges, shortening the
//! path and the training epoch.

use mega_graph::{EdgeList, Graph, GraphError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns a copy of `g` with `fraction` of its edges removed uniformly at
/// random (all nodes kept). `fraction` is clamped to `[0, 1)`; at least one
/// edge is kept when the input has any, so downstream traversal always has
/// work to do.
///
/// # Errors
///
/// Propagates [`GraphError`] from graph reconstruction (cannot occur for
/// inputs that were themselves valid [`Graph`]s).
///
/// # Example
///
/// ```
/// use mega_core::edge_drop::drop_edges;
/// use mega_graph::generate;
///
/// # fn main() -> Result<(), mega_graph::GraphError> {
/// let g = generate::complete(10).unwrap(); // 45 edges
/// let dropped = drop_edges(&g, 0.2, 7)?;
/// assert_eq!(dropped.edge_count(), 36); // 45 - floor(0.2 * 45)
/// assert_eq!(dropped.node_count(), 10);
/// # Ok(())
/// # }
/// ```
pub fn drop_edges(g: &Graph, fraction: f64, seed: u64) -> Result<Graph, GraphError> {
    let fraction = fraction.clamp(0.0, 1.0 - f64::EPSILON);
    let m = g.edge_count();
    let drop = ((m as f64) * fraction).floor() as usize;
    let keep = m.saturating_sub(drop).max(usize::from(m > 0));
    let mut pairs: Vec<(usize, usize)> = g.edges().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    pairs.shuffle(&mut rng);
    pairs.truncate(keep);
    // Keep deterministic edge order independent of the shuffle for stable
    // downstream edge ids.
    pairs.sort_unstable();
    let coo = EdgeList::from_pairs(g.node_count(), pairs)?;
    Graph::from_edge_list(coo, g.direction())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::generate;

    #[test]
    fn zero_fraction_is_identity_topology() {
        let g = generate::cycle(8).unwrap();
        let d = drop_edges(&g, 0.0, 1).unwrap();
        assert_eq!(d.edge_count(), 8);
        for (s, t) in g.edges() {
            assert!(d.contains_edge(s, t));
        }
    }

    #[test]
    fn drops_expected_count() {
        let g = generate::complete(12).unwrap(); // 66 edges
        let d = drop_edges(&g, 0.5, 3).unwrap();
        assert_eq!(d.edge_count(), 33);
    }

    #[test]
    fn surviving_edges_are_subset() {
        let g = generate::complete(9).unwrap();
        let d = drop_edges(&g, 0.3, 11).unwrap();
        for (s, t) in d.edges() {
            assert!(g.contains_edge(s, t));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generate::complete(10).unwrap();
        let a = drop_edges(&g, 0.4, 5).unwrap();
        let b = drop_edges(&g, 0.4, 5).unwrap();
        assert_eq!(a.edge_list(), b.edge_list());
        let c = drop_edges(&g, 0.4, 6).unwrap();
        // Different seed should (with overwhelming probability) differ.
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn never_drops_to_zero_edges() {
        let g = generate::path(2).unwrap(); // single edge
        let d = drop_edges(&g, 0.99, 1).unwrap();
        assert_eq!(d.edge_count(), 1);
    }
}
