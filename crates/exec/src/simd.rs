//! Explicit-width SIMD kernels over the blocked strip layout.
//!
//! [`SimdBackend`] is the workspace's first vectorized hot path: the GEMM
//! micro-kernel, the elementwise family (`add`/`sub`/`mul`/`scale`,
//! `scale_rows`, `add_bias_rows`), the clamp-family activations, and the
//! fused `linear_relu` epilogue all run on explicit-width lane structs —
//! AVX `__m256` intrinsics where the CPU has them, a portable
//! const-generic scalar-lane fallback everywhere else. No new
//! dependencies: the AVX path is `std::arch` behind a runtime
//! `is_x86_feature_detected!` check, and every other architecture takes
//! the portable path.
//!
//! **Bit-identity** with [`ReferenceBackend`](crate::ReferenceBackend) is
//! preserved by construction:
//!
//! * The GEMM micro-kernel vectorizes over the `n`/`NR` *column* dimension
//!   of [`BlockedBackend`](crate::BlockedBackend)'s packed `k × NR` strips,
//!   so every SIMD lane owns one output element and folds its `k` products
//!   in the same ascending-`k` scalar order as the reference loop. Lane-wise
//!   `mul` + `add` only — no FMA (Rust never contracts `a*b + c`), no
//!   horizontal reductions (a horizontal sum would reassociate the fold and
//!   change the bits).
//! * The reference kernel's `a == 0.0` zero-skip is a *scalar* test on the
//!   broadcast multiplier, so it fires identically for all lanes.
//! * Elementwise lanes are independent by definition; `vmaxps(x, 0)` and
//!   scalar `f32::max(x, 0.0)` agree on every input including `-0.0` and
//!   NaN (both return the second operand for NaN inputs).
//! * Transcendental activations (`sigmoid`, `tanh`) stay on the scalar
//!   libm loops — a vectorized `exp` approximation could not be
//!   bit-identical — so [`SimdBackend`] simply delegates those.
//!
//! The portable fallback mirrors the AVX loop structure with `[f32; W]`
//! lane structs (`W ∈ {4, 8, 16}`): same strip walk, same per-lane
//! arithmetic, so its bits match both the AVX path and the reference.
//! `backend_matmul --lanes` sweeps the widths.

use crate::blocked::{pack_strips, MC, NR};
use crate::kernels;
use crate::partition;
use crate::{Backend, PackedB, Unary};
use mega_core::parallel::Parallelism;

/// Which lane implementation a [`SimdBackend`] instance dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// 8-lane `__m256` intrinsics (x86-64 with AVX, detected at runtime).
    #[cfg(target_arch = "x86_64")]
    Avx,
    /// Portable `[f32; W]` scalar lanes; `W` must divide [`NR`].
    Portable(usize),
}

/// Explicit-width vector backend: AVX lanes when the host has them, the
/// portable scalar-lane structs otherwise. Bit-identical to
/// [`ReferenceBackend`](crate::ReferenceBackend) for every kernel (see the
/// module docs for why), faster wherever lanes beat scalars.
#[derive(Debug, Clone, Copy)]
pub struct SimdBackend {
    mode: Mode,
}

impl Default for SimdBackend {
    fn default() -> Self {
        SimdBackend::new()
    }
}

impl SimdBackend {
    /// Auto-detects the widest supported lane implementation.
    pub fn new() -> Self {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            return SimdBackend { mode: Mode::Avx };
        }
        SimdBackend {
            mode: Mode::Portable(8),
        }
    }

    /// Forces the portable scalar-lane path at `width` lanes — the
    /// lane-width sweep in `backend_matmul` uses this to measure how the
    /// kernels scale with vector width. `width` must be 4, 8, or 16.
    pub fn with_portable_lanes(width: usize) -> Self {
        assert!(
            matches!(width, 4 | 8 | 16),
            "portable lane width must be 4, 8, or 16, got {width}"
        );
        SimdBackend {
            mode: Mode::Portable(width),
        }
    }

    /// The number of f32 lanes the active mode processes per vector op.
    pub fn lane_width(&self) -> usize {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            Mode::Avx => 8,
            Mode::Portable(w) => w,
        }
    }

    /// Whether the hardware-intrinsic path (rather than the portable
    /// scalar-lane fallback) is active.
    pub fn is_accelerated(&self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            self.mode == Mode::Avx
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Portable lane structs
// ---------------------------------------------------------------------------

/// Portable `W`-lane vector: scalar per-lane ops with the exact semantics of
/// the AVX path (and of the reference loops — each lane is one independent
/// scalar chain). The fixed-width arrays give LLVM the same unrolled shape
/// the intrinsics spell out explicitly.
mod wide {
    use super::{MC, NR};

    /// GEMM over rows `[lo, hi)` with `W`-lane accumulators: the
    /// caller-packed strip (shared read-only across workers, packed once
    /// per GEMM) is walked one `W`-wide column chunk at a time, each chunk
    /// folding its `k` products in ascending order — per output element
    /// this is exactly the reference fold.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_rows<const W: usize>(
        a: &[f32],
        packed: &[f32],
        k: usize,
        m: usize,
        lo: usize,
        hi: usize,
        bias_relu: Option<&[f32]>,
        out: &mut [f32],
    ) {
        let strips = m.div_ceil(NR);
        let mut ib = lo;
        while ib < hi {
            let i_end = (ib + MC).min(hi);
            for s in 0..strips {
                let jt = s * NR;
                let w = NR.min(m - jt);
                let strip = &packed[s * k * NR..(s + 1) * k * NR];
                for i in ib..i_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[(i - lo) * m..(i - lo + 1) * m];
                    let mut acc = [0.0f32; NR];
                    acc[..w].copy_from_slice(&out_row[jt..jt + w]);
                    micro_tile::<W>(a_row, strip, &mut acc);
                    out_row[jt..jt + w].copy_from_slice(&acc[..w]);
                }
            }
            if let Some(bias) = bias_relu {
                for i in ib..i_end {
                    let out_row = &mut out[(i - lo) * m..(i - lo + 1) * m];
                    bias_relu_row::<W>(out_row, bias);
                }
            }
            ib = i_end;
        }
    }

    /// The `W`-lane micro-kernel: each `W`-wide chunk of the `NR`
    /// accumulator folds ascending `k`, with the scalar zero-skip on the
    /// broadcast multiplier.
    #[inline]
    fn micro_tile<const W: usize>(a_row: &[f32], strip: &[f32], acc: &mut [f32; NR]) {
        let chunks = NR / W;
        for c in 0..chunks {
            let base = c * W;
            let mut v = [0.0f32; W];
            v.copy_from_slice(&acc[base..base + W]);
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b = &strip[kk * NR + base..kk * NR + base + W];
                for l in 0..W {
                    v[l] += av * b[l];
                }
            }
            acc[base..base + W].copy_from_slice(&v);
        }
    }

    /// Fused `out = max(out + bias, 0)` over one row.
    #[inline]
    pub fn bias_relu_row<const W: usize>(out_row: &mut [f32], bias: &[f32]) {
        let mut j = 0;
        while j + W <= out_row.len() {
            for l in 0..W {
                out_row[j + l] = (out_row[j + l] + bias[j + l]).max(0.0);
            }
            j += W;
        }
        while j < out_row.len() {
            out_row[j] = (out_row[j] + bias[j]).max(0.0);
            j += 1;
        }
    }

    /// `W`-lane binary elementwise loop with a scalar tail.
    #[inline]
    pub fn zip<const W: usize>(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
        let mut i = 0;
        while i + W <= out.len() {
            for l in 0..W {
                out[i + l] = f(a[i + l], b[i + l]);
            }
            i += W;
        }
        while i < out.len() {
            out[i] = f(a[i], b[i]);
            i += 1;
        }
    }

    /// `W`-lane unary elementwise loop with a scalar tail.
    #[inline]
    pub fn map<const W: usize>(x: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32) {
        let mut i = 0;
        while i + W <= out.len() {
            for l in 0..W {
                out[i + l] = f(x[i + l]);
            }
            i += W;
        }
        while i < out.len() {
            out[i] = f(x[i]);
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX lane structs (x86-64, runtime-detected)
// ---------------------------------------------------------------------------

/// 8-lane `__m256` kernels. Every function here carries
/// `#[target_feature(enable = "avx")]`; [`SimdBackend`] only reaches this
/// module after `is_x86_feature_detected!("avx")` succeeded, which makes
/// the `unsafe` call sites in the dispatcher sound.
#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{MC, NR};
    use std::arch::x86_64::*;

    /// GEMM over rows `[lo, hi)`: caller-packed strips (packed once per
    /// GEMM, shared read-only across workers), `MC`-row tiles, four
    /// `__m256` accumulators spanning the `NR`-column tile. Per lane this
    /// is `acc += av * b` in ascending `k` — `vmulps` + `vaddps`, never
    /// `vfmadd` (FMA's single rounding would change the bits).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx")]
    pub fn gemm_rows(
        a: &[f32],
        packed: &[f32],
        k: usize,
        m: usize,
        lo: usize,
        hi: usize,
        bias_relu: Option<&[f32]>,
        out: &mut [f32],
    ) {
        let strips = m.div_ceil(NR);
        let mut ib = lo;
        while ib < hi {
            let i_end = (ib + MC).min(hi);
            for s in 0..strips {
                let jt = s * NR;
                let w = NR.min(m - jt);
                let strip = &packed[s * k * NR..(s + 1) * k * NR];
                for i in ib..i_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[(i - lo) * m..(i - lo + 1) * m];
                    let mut acc = [0.0f32; NR];
                    acc[..w].copy_from_slice(&out_row[jt..jt + w]);
                    micro_tile(a_row, strip, &mut acc);
                    out_row[jt..jt + w].copy_from_slice(&acc[..w]);
                }
            }
            if let Some(bias) = bias_relu {
                for i in ib..i_end {
                    bias_relu_row(&mut out[(i - lo) * m..(i - lo + 1) * m], bias);
                }
            }
            ib = i_end;
        }
    }

    /// The AVX micro-kernel: the whole `NR = 32` accumulator tile lives in
    /// four `__m256` registers across the depth loop; the packed strip row
    /// is one contiguous 128-byte load sequence per `k` step.
    #[target_feature(enable = "avx")]
    fn micro_tile(a_row: &[f32], strip: &[f32], acc: &mut [f32; NR]) {
        // SAFETY: `acc` is exactly NR = 32 floats, so the four 8-lane
        // loads/stores at offsets 0/8/16/24 stay in bounds; `strip` is a
        // packed k×NR buffer, so `kk * NR + 24 + 8 <= strip.len()` for every
        // `kk < k` iterated here. AVX itself is guaranteed by this module's
        // `#[target_feature]` + runtime-detection contract.
        unsafe {
            let p = acc.as_mut_ptr();
            let mut v0 = _mm256_loadu_ps(p);
            let mut v1 = _mm256_loadu_ps(p.add(8));
            let mut v2 = _mm256_loadu_ps(p.add(16));
            let mut v3 = _mm256_loadu_ps(p.add(24));
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let s = strip.as_ptr().add(kk * NR);
                let vav = _mm256_set1_ps(av);
                v0 = _mm256_add_ps(v0, _mm256_mul_ps(vav, _mm256_loadu_ps(s)));
                v1 = _mm256_add_ps(v1, _mm256_mul_ps(vav, _mm256_loadu_ps(s.add(8))));
                v2 = _mm256_add_ps(v2, _mm256_mul_ps(vav, _mm256_loadu_ps(s.add(16))));
                v3 = _mm256_add_ps(v3, _mm256_mul_ps(vav, _mm256_loadu_ps(s.add(24))));
            }
            _mm256_storeu_ps(p, v0);
            _mm256_storeu_ps(p.add(8), v1);
            _mm256_storeu_ps(p.add(16), v2);
            _mm256_storeu_ps(p.add(24), v3);
        }
    }

    /// Fused `out = max(out + bias, 0)` over one row; `vmaxps(x, 0)`
    /// matches scalar `f32::max(x, 0.0)` on every input (both return the
    /// second operand for NaN).
    #[target_feature(enable = "avx")]
    pub fn bias_relu_row(out_row: &mut [f32], bias: &[f32]) {
        // SAFETY: the vector loop only touches `j..j + 8` while
        // `j + 8 <= out_row.len()`, and the caller passes `bias` of the
        // same row width (asserted in `gemm_simd`), so every 8-lane
        // load/store on both pointers is in bounds; the tail is safe
        // indexing. AVX is guaranteed by the module contract.
        unsafe {
            let zero = _mm256_setzero_ps();
            let n = out_row.len();
            let o = out_row.as_mut_ptr();
            let b = bias.as_ptr();
            let mut j = 0;
            while j + 8 <= n {
                let v = _mm256_add_ps(_mm256_loadu_ps(o.add(j)), _mm256_loadu_ps(b.add(j)));
                _mm256_storeu_ps(o.add(j), _mm256_max_ps(v, zero));
                j += 8;
            }
            while j < n {
                out_row[j] = (out_row[j] + bias[j]).max(0.0);
                j += 1;
            }
        }
    }

    /// 8-lane binary elementwise dispatch with a scalar tail.
    macro_rules! avx_zip {
        ($name:ident, $vop:expr, $sop:expr) => {
            /// Lane-wise binary elementwise kernel (scalar tail past the
            /// last full vector).
            #[target_feature(enable = "avx")]
            pub fn $name(a: &[f32], b: &[f32], out: &mut [f32]) {
                // SAFETY: the vector loop reads/writes `i..i + 8` only
                // while `i + 8 <= out.len()`, and `a`/`b` are at least as
                // long as `out` (the backend trait's elementwise contract,
                // upheld by every caller via equal-length slices); the
                // tail uses safe indexing. AVX per the module contract.
                unsafe {
                    let n = out.len();
                    let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
                    let mut i = 0;
                    while i + 8 <= n {
                        let v = $vop(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                        _mm256_storeu_ps(po.add(i), v);
                        i += 8;
                    }
                    while i < n {
                        out[i] = $sop(a[i], b[i]);
                        i += 1;
                    }
                }
            }
        };
    }

    avx_zip!(add, _mm256_add_ps, |x: f32, y: f32| x + y);
    avx_zip!(sub, _mm256_sub_ps, |x: f32, y: f32| x - y);
    avx_zip!(mul, _mm256_mul_ps, |x: f32, y: f32| x * y);

    /// `out = k · a`, broadcast multiply.
    #[target_feature(enable = "avx")]
    pub fn scale(a: &[f32], k: f32, out: &mut [f32]) {
        // SAFETY: loads/stores touch `i..i + 8` only while
        // `i + 8 <= out.len()` and `a` is at least as long as `out`
        // (equal-length elementwise contract); tail is safe indexing.
        // AVX per the module contract.
        unsafe {
            let vk = _mm256_set1_ps(k);
            let n = out.len();
            let (pa, po) = (a.as_ptr(), out.as_mut_ptr());
            let mut i = 0;
            while i + 8 <= n {
                _mm256_storeu_ps(po.add(i), _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), vk));
                i += 8;
            }
            while i < n {
                out[i] = a[i] * k;
                i += 1;
            }
        }
    }

    /// `out = max(x, 0)`.
    #[target_feature(enable = "avx")]
    pub fn relu(x: &[f32], out: &mut [f32]) {
        // SAFETY: loads/stores touch `i..i + 8` only while
        // `i + 8 <= out.len()` and `x` is at least as long as `out`
        // (equal-length elementwise contract); tail is safe indexing.
        // AVX per the module contract.
        unsafe {
            let zero = _mm256_setzero_ps();
            let n = out.len();
            let (px, po) = (x.as_ptr(), out.as_mut_ptr());
            let mut i = 0;
            while i + 8 <= n {
                _mm256_storeu_ps(po.add(i), _mm256_max_ps(_mm256_loadu_ps(px.add(i)), zero));
                i += 8;
            }
            while i < n {
                out[i] = x[i].max(0.0);
                i += 1;
            }
        }
    }

    /// `out = x > 0 ? x : slope·x` via compare + blend; `_CMP_GT_OQ` is
    /// false for NaN, matching the scalar `if v > 0.0` else-branch.
    #[target_feature(enable = "avx")]
    pub fn leaky_relu(x: &[f32], slope: f32, out: &mut [f32]) {
        // SAFETY: loads/stores touch `i..i + 8` only while
        // `i + 8 <= out.len()` and `x` is at least as long as `out`
        // (equal-length elementwise contract); tail is safe indexing.
        // AVX per the module contract.
        unsafe {
            let zero = _mm256_setzero_ps();
            let vs = _mm256_set1_ps(slope);
            let n = out.len();
            let (px, po) = (x.as_ptr(), out.as_mut_ptr());
            let mut i = 0;
            while i + 8 <= n {
                let v = _mm256_loadu_ps(px.add(i));
                let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
                let scaled = _mm256_mul_ps(v, vs);
                _mm256_storeu_ps(po.add(i), _mm256_blendv_ps(scaled, v, mask));
                i += 8;
            }
            while i < n {
                out[i] = if x[i] > 0.0 { x[i] } else { slope * x[i] };
                i += 1;
            }
        }
    }

    /// Row-wise broadcast scale: `out[r] = factors[r] · x[r]`.
    #[target_feature(enable = "avx")]
    pub fn scale_rows(x: &[f32], factors: &[f32], cols: usize, out: &mut [f32]) {
        for (r, &f) in factors.iter().enumerate() {
            scale(
                &x[r * cols..(r + 1) * cols],
                f,
                &mut out[r * cols..(r + 1) * cols],
            );
        }
    }

    /// Adds the `1 × m` bias row to every row.
    #[target_feature(enable = "avx")]
    pub fn add_bias_rows(x: &[f32], bias: &[f32], n: usize, m: usize, out: &mut [f32]) {
        for r in 0..n {
            add(&x[r * m..(r + 1) * m], bias, &mut out[r * m..(r + 1) * m]);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Monomorphizes a portable-lane call over the three supported widths.
macro_rules! portable_widths {
    ($w:expr, $call:ident ( $($arg:expr),* )) => {
        match $w {
            4 => wide::$call::<4>($($arg),*),
            8 => wide::$call::<8>($($arg),*),
            16 => wide::$call::<16>($($arg),*),
            other => unreachable!("unsupported portable lane width {other}"),
        }
    };
}

/// SIMD GEMM driver over an already-packed `b` (the strip layout of
/// [`pack_strips`]): same serial cutoff and `MC`-aligned row split as the
/// packing entry point, minus the O(k·m) pack — the pack-cache fast path.
#[allow(clippy::too_many_arguments)]
fn gemm_simd_packed(
    mode: Mode,
    a: &[f32],
    packed: &[f32],
    n: usize,
    k: usize,
    m: usize,
    par: &Parallelism,
    bias_relu: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(a.len(), n * k, "a must be {n}x{k}");
    assert_eq!(
        packed.len(),
        m.div_ceil(NR) * k * NR,
        "packed b must hold {k}x{m} in NR strips"
    );
    assert_eq!(out.len(), n * m, "out must be {n}x{m}");
    if let Some(bias) = bias_relu {
        assert_eq!(bias.len(), m, "bias must be 1x{m}");
    }
    let rows = |lo: usize, hi: usize, part: &mut [f32]| match mode {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Mode::Avx is only constructed after
        // `is_x86_feature_detected!("avx")` returned true.
        Mode::Avx => unsafe { avx::gemm_rows(a, packed, k, m, lo, hi, bias_relu, part) },
        Mode::Portable(w) => {
            portable_widths!(w, gemm_rows(a, packed, k, m, lo, hi, bias_relu, part))
        }
    };
    let threads = par.effective_threads().min(n.max(1));
    if threads <= 1 || n * k * m < kernels::PAR_MATMUL_MIN_FLOPS {
        return rows(0, n, out);
    }
    // MC-aligned boundaries keep whole row tiles on one worker; each worker
    // streams the shared packed strips and writes its rows in place.
    let ranges = partition::row_ranges(n, threads, MC);
    partition::par_rows(out, n, m, &ranges, |lo, hi, part| rows(lo, hi, part));
}

/// Full SIMD GEMM: same shape checks, serial cutoff, and per-worker row
/// split as the blocked driver — only the per-range kernel is vectorized.
/// Packs `b` fresh; callers holding a cached pack go through
/// [`gemm_simd_packed`] directly.
#[allow(clippy::too_many_arguments)]
fn gemm_simd(
    mode: Mode,
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    par: &Parallelism,
    bias_relu: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(b.len(), k * m, "b must be {k}x{m}");
    let packed = pack_strips(b, k, m);
    gemm_simd_packed(mode, a, &packed, n, k, m, par, bias_relu, out);
}

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn matmul(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        gemm_simd(self.mode, a, b, n, k, m, par, None, out);
    }

    fn linear_relu(
        &self,
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        gemm_simd(self.mode, x, w, n, k, m, par, Some(bias), out);
    }

    fn supports_prepack(&self) -> bool {
        true
    }

    fn prepack(&self, b: &[f32], k: usize, m: usize) -> Option<PackedB> {
        assert_eq!(b.len(), k * m, "b must be {k}x{m}");
        Some(PackedB::new(pack_strips(b, k, m), k, m))
    }

    fn matmul_packed(
        &self,
        a: &[f32],
        packed: &PackedB,
        n: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        gemm_simd_packed(
            self.mode,
            a,
            &packed.data,
            n,
            packed.k,
            packed.m,
            par,
            None,
            out,
        );
    }

    fn linear_relu_packed(
        &self,
        x: &[f32],
        packed: &PackedB,
        bias: &[f32],
        n: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        gemm_simd_packed(
            self.mode,
            x,
            &packed.data,
            n,
            packed.k,
            packed.m,
            par,
            Some(bias),
            out,
        );
    }

    fn add(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Mode::Avx implies AVX was detected at construction.
            Mode::Avx => unsafe { avx::add(a, b, out) },
            Mode::Portable(w) => portable_widths!(w, zip(a, b, out, |x, y| x + y)),
        }
    }

    fn sub(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Mode::Avx implies AVX was detected at construction.
            Mode::Avx => unsafe { avx::sub(a, b, out) },
            Mode::Portable(w) => portable_widths!(w, zip(a, b, out, |x, y| x - y)),
        }
    }

    fn mul(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Mode::Avx implies AVX was detected at construction.
            Mode::Avx => unsafe { avx::mul(a, b, out) },
            Mode::Portable(w) => portable_widths!(w, zip(a, b, out, |x, y| x * y)),
        }
    }

    fn scale(&self, a: &[f32], k: f32, out: &mut [f32]) {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Mode::Avx implies AVX was detected at construction.
            Mode::Avx => unsafe { avx::scale(a, k, out) },
            Mode::Portable(w) => portable_widths!(w, map(a, out, |x| x * k)),
        }
    }

    fn add_bias_rows(&self, x: &[f32], bias: &[f32], n: usize, m: usize, out: &mut [f32]) {
        assert_eq!(bias.len(), m, "bias must be 1x{m}");
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Mode::Avx implies AVX was detected at construction.
            Mode::Avx => unsafe { avx::add_bias_rows(x, bias, n, m, out) },
            Mode::Portable(w) => {
                for r in 0..n {
                    portable_widths!(
                        w,
                        zip(
                            &x[r * m..(r + 1) * m],
                            bias,
                            &mut out[r * m..(r + 1) * m],
                            |a, b| a + b
                        )
                    );
                }
            }
        }
    }

    fn unary(&self, op: Unary, x: &[f32], out: &mut [f32]) {
        match (op, self.mode) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Mode::Avx implies AVX was detected at construction.
            (Unary::Relu, Mode::Avx) => unsafe { avx::relu(x, out) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            (Unary::LeakyRelu(s), Mode::Avx) => unsafe { avx::leaky_relu(x, s, out) },
            (Unary::Relu, Mode::Portable(w)) => portable_widths!(w, map(x, out, |v| v.max(0.0))),
            (Unary::LeakyRelu(s), Mode::Portable(w)) => {
                portable_widths!(w, map(x, out, |v| if v > 0.0 { v } else { s * v }))
            }
            // Transcendentals go through libm one element at a time; a
            // vectorized approximation would break bit-identity.
            (Unary::Sigmoid | Unary::Tanh, _) => kernels::unary(op, x, out),
        }
    }

    fn scale_rows(&self, x: &[f32], factors: &[f32], cols: usize, out: &mut [f32]) {
        assert_eq!(x.len(), factors.len() * cols, "one factor per row required");
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Mode::Avx implies AVX was detected at construction.
            Mode::Avx => unsafe { avx::scale_rows(x, factors, cols, out) },
            Mode::Portable(w) => {
                for (r, &f) in factors.iter().enumerate() {
                    portable_widths!(
                        w,
                        map(
                            &x[r * cols..(r + 1) * cols],
                            &mut out[r * cols..(r + 1) * cols],
                            |v| { v * f }
                        )
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceBackend;

    fn sample(len: usize, seed: u32) -> Vec<f32> {
        // Deterministic values with exact zeros (zero-skip path) and a
        // negative zero sprinkled in (max/blend edge cases).
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(17);
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = ((state >> 8) as f32 / (1u32 << 24) as f32) * 2.0 - 1.0;
                if v.abs() < 0.05 {
                    if i % 2 == 0 {
                        0.0
                    } else {
                        -0.0
                    }
                } else {
                    v
                }
            })
            .collect()
    }

    fn modes() -> Vec<SimdBackend> {
        let mut v = vec![
            SimdBackend::with_portable_lanes(4),
            SimdBackend::with_portable_lanes(8),
            SimdBackend::with_portable_lanes(16),
        ];
        let auto = SimdBackend::new();
        if auto.is_accelerated() {
            v.push(auto);
        }
        v
    }

    #[test]
    fn simd_matmul_bit_identical_to_reference() {
        for &(n, k, m) in &[
            (1usize, 1usize, 1usize),
            (7, 13, 5),
            (33, 64, 17),
            (40, 70, 65),
        ] {
            let a = sample(n * k, (n * 31 + k) as u32);
            let b = sample(k * m, (k * 17 + m) as u32);
            for backend in modes() {
                for threads in [1usize, 2, 4] {
                    let par = Parallelism::pinned(threads);
                    let mut want = vec![0.0f32; n * m];
                    ReferenceBackend.matmul(&a, &b, n, k, m, &par, &mut want);
                    let mut got = vec![0.0f32; n * m];
                    backend.matmul(&a, &b, n, k, m, &par, &mut got);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "{n}x{k}x{m} lanes={} threads={threads}",
                            backend.lane_width()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simd_linear_relu_bit_identical_to_unfused() {
        let (n, k, m) = (35usize, 70usize, 33usize);
        let x = sample(n * k, 3);
        let w = sample(k * m, 4);
        let bias = sample(m, 5);
        let par = Parallelism::with_threads(1);
        let mut unfused = vec![0.0f32; n * m];
        kernels::matmul_par(&x, &w, n, k, m, &par, &mut unfused);
        kernels::bias_relu_inplace(&mut unfused, &bias, n, m);
        for backend in modes() {
            let mut fused = vec![0.0f32; n * m];
            backend.linear_relu(&x, &w, &bias, n, k, m, &par, &mut fused);
            for (a, b) in fused.iter().zip(&unfused) {
                assert_eq!(a.to_bits(), b.to_bits(), "lanes={}", backend.lane_width());
            }
        }
    }

    #[test]
    fn packed_entry_points_bit_identical_to_fresh_pack() {
        let (n, k, m) = (33usize, 64usize, 40usize);
        let a = sample(n * k, 7);
        let b = sample(k * m, 8);
        let bias = sample(m, 9);
        for backend in modes() {
            let lanes = backend.lane_width();
            let packed = backend.prepack(&b, k, m).expect("simd backend packs");
            for threads in [1usize, 3] {
                let par = Parallelism::pinned(threads);
                let mut fresh = vec![0.0f32; n * m];
                backend.matmul(&a, &b, n, k, m, &par, &mut fresh);
                let mut cached = vec![0.0f32; n * m];
                backend.matmul_packed(&a, &packed, n, &par, &mut cached);
                assert_eq!(fresh, cached, "matmul lanes={lanes} threads={threads}");
                let mut fresh = vec![0.0f32; n * m];
                backend.linear_relu(&a, &b, &bias, n, k, m, &par, &mut fresh);
                let mut cached = vec![0.0f32; n * m];
                backend.linear_relu_packed(&a, &packed, &bias, n, &par, &mut cached);
                assert_eq!(fresh, cached, "linear_relu lanes={lanes} threads={threads}");
            }
        }
    }

    #[test]
    fn elementwise_family_bit_identical_to_reference() {
        // 67 elements: 8 full 8-lane vectors plus a 3-element scalar tail.
        let a = sample(67, 11);
        let b = sample(67, 12);
        for backend in modes() {
            let lanes = backend.lane_width();
            let mut want = vec![0.0f32; 67];
            let mut got = vec![0.0f32; 67];
            ReferenceBackend.add(&a, &b, &mut want);
            backend.add(&a, &b, &mut got);
            assert_eq!(bits(&got), bits(&want), "add lanes={lanes}");
            ReferenceBackend.sub(&a, &b, &mut want);
            backend.sub(&a, &b, &mut got);
            assert_eq!(bits(&got), bits(&want), "sub lanes={lanes}");
            ReferenceBackend.mul(&a, &b, &mut want);
            backend.mul(&a, &b, &mut got);
            assert_eq!(bits(&got), bits(&want), "mul lanes={lanes}");
            ReferenceBackend.scale(&a, -1.75, &mut want);
            backend.scale(&a, -1.75, &mut got);
            assert_eq!(bits(&got), bits(&want), "scale lanes={lanes}");
        }
    }

    #[test]
    fn activations_and_row_ops_bit_identical_to_reference() {
        let x = sample(67, 21);
        for backend in modes() {
            let lanes = backend.lane_width();
            let mut want = vec![0.0f32; 67];
            let mut got = vec![0.0f32; 67];
            for op in [
                Unary::Relu,
                Unary::LeakyRelu(0.2),
                Unary::Sigmoid,
                Unary::Tanh,
            ] {
                ReferenceBackend.unary(op, &x, &mut want);
                backend.unary(op, &x, &mut got);
                assert_eq!(bits(&got), bits(&want), "{op:?} lanes={lanes}");
            }
            // 5 rows x 13 cols exercises the unaligned row width.
            let rows = sample(5 * 13, 22);
            let factors = sample(5, 23);
            let bias = sample(13, 24);
            let mut want = vec![0.0f32; 5 * 13];
            let mut got = vec![0.0f32; 5 * 13];
            ReferenceBackend.scale_rows(&rows, &factors, 13, &mut want);
            backend.scale_rows(&rows, &factors, 13, &mut got);
            assert_eq!(bits(&got), bits(&want), "scale_rows lanes={lanes}");
            ReferenceBackend.add_bias_rows(&rows, &bias, 5, 13, &mut want);
            backend.add_bias_rows(&rows, &bias, 5, 13, &mut got);
            assert_eq!(bits(&got), bits(&want), "add_bias_rows lanes={lanes}");
        }
    }

    #[test]
    fn lane_width_reporting() {
        assert_eq!(SimdBackend::with_portable_lanes(4).lane_width(), 4);
        assert_eq!(SimdBackend::with_portable_lanes(16).lane_width(), 16);
        assert!(!SimdBackend::with_portable_lanes(8).is_accelerated());
        let auto = SimdBackend::new();
        assert!(matches!(auto.lane_width(), 4 | 8 | 16));
    }

    #[test]
    #[should_panic(expected = "portable lane width")]
    fn rejects_unsupported_lane_width() {
        let _ = SimdBackend::with_portable_lanes(3);
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
