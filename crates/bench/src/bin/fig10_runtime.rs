//! Figure 10: epoch runtime and sgemm occupation — Mega vs DGL.
//!
//! Paper setup: batch sizes 64/128/256. Mega shows lower epoch time and a
//! higher sgemm share everywhere; GT gains more than GCN (more graph ops);
//! the speedup does not grow with batch size (dense work amortizes the graph
//! lag).

use mega_bench::{bench_datasets, fmt, profile_config, save_json, TableWriter};
use mega_datasets::DatasetSpec;
use mega_gnn::{EngineChoice, ModelKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    batch: usize,
    dgl_epoch_seconds: f64,
    mega_epoch_seconds: f64,
    speedup: f64,
    dgl_sgemm_share: f64,
    mega_sgemm_share: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let spec = DatasetSpec::small(10);
    let (hidden, layers) = (64usize, 2usize);
    let mut table = TableWriter::new(&[
        "dataset",
        "model",
        "batch",
        "DGL(ms)",
        "Mega(ms)",
        "speedup",
        "DGL sgemm%",
        "Mega sgemm%",
    ]);
    let mut rows = Vec::new();
    for ds in bench_datasets(&spec) {
        for kind in [ModelKind::GatedGcn, ModelKind::GraphTransformer] {
            for &batch in &[64usize, 128, 256] {
                let dgl = profile_config(&ds, kind, EngineChoice::Baseline, batch, hidden, layers);
                let mega = profile_config(&ds, kind, EngineChoice::Mega, batch, hidden, layers);
                let speedup = dgl.epoch_seconds / mega.epoch_seconds;
                table.row(&[
                    ds.name.clone(),
                    kind.label().to_string(),
                    batch.to_string(),
                    fmt(dgl.epoch_seconds * 1e3, 2),
                    fmt(mega.epoch_seconds * 1e3, 2),
                    format!("{:.2}x", speedup),
                    fmt(dgl.report.sgemm_time_share() * 100.0, 1),
                    fmt(mega.report.sgemm_time_share() * 100.0, 1),
                ]);
                rows.push(Row {
                    dataset: ds.name.clone(),
                    model: kind.label().to_string(),
                    batch,
                    dgl_epoch_seconds: dgl.epoch_seconds,
                    mega_epoch_seconds: mega.epoch_seconds,
                    speedup,
                    dgl_sgemm_share: dgl.report.sgemm_time_share(),
                    mega_sgemm_share: mega.report.sgemm_time_share(),
                });
            }
        }
    }
    mega_obs::data!("Figure 10 — epoch runtime & sgemm occupation (hidden 64)\n");
    table.print();
    mega_obs::data!(
        "\nPaper claims: Mega has lower epoch time and larger sgemm share in all settings;\n\
         GT speedups exceed GCN speedups; speedup does not grow with batch size."
    );
    save_json("fig10_runtime", &rows);
}
