//! The threaded GEMM must not create pool traffic: worker scratch is a
//! direct `&mut` slice of the output buffer (see `mega-exec`'s partition
//! module), never a pooled allocation, so the tape's buffer-pool telemetry
//! is *identical* whatever the thread count. A hit/miss delta between
//! thread budgets would mean per-worker buffers started round-tripping
//! through the shared pool on the hot path — exactly the contention this
//! test exists to keep out.

use mega::core::parallel::Parallelism;
use mega::exec::{Backend, BlockedBackend, BufferPool, ReferenceBackend, SimdBackend};
use mega::tensor::{Tape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

#[test]
fn pool_traffic_is_thread_count_invariant() {
    // Shapes past the 1 << 17 flop cutoff so the pinned runs actually fan
    // out in forward and both backward products.
    let mut rng = StdRng::seed_from_u64(23);
    let a = Tensor::from_vec(128, 64, random_vec(&mut rng, 128 * 64));
    let b = Tensor::from_vec(64, 64, random_vec(&mut rng, 64 * 64));

    let backends: Vec<(&str, Arc<dyn Backend>)> = vec![
        ("reference", Arc::new(ReferenceBackend)),
        ("blocked", Arc::new(BlockedBackend)),
        ("simd", Arc::new(SimdBackend::new())),
    ];
    for (name, backend) in backends {
        let traffic = |threads: usize| -> (u64, u64) {
            let pool = Arc::new(BufferPool::new());
            let mut tape = Tape::with_exec(backend.clone(), pool.clone());
            tape.set_parallelism(Parallelism::pinned(threads));
            let va = tape.leaf(a.clone());
            let vb = tape.leaf(b.clone());
            let prod = tape.matmul(va, vb);
            let loss = tape.sum(prod);
            let _ = tape.backward(loss);
            (pool.hits(), pool.misses())
        };
        let serial = traffic(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                traffic(threads),
                serial,
                "{name}: pool hit/miss counts changed between threads=1 and \
                 threads={threads} — per-worker scratch is leaking through \
                 the shared pool"
            );
        }
    }
}
