//! Race-check harness for the distributed executor: corrupt segment plans
//! must panic in the shared writer map instead of silently racing on halo
//! rows, and the valid plan must pass the same checks the timed runs use.
//!
//! Compiled only under `--features race-check`, mirroring the mega-exec
//! corrupt-plan harness.

#![cfg(feature = "race-check")]

use mega_core::{preprocess, Chunk, MegaConfig};
use mega_dist::{run_with_plan, BandJob, SegmentPlan};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> (mega_core::AttentionSchedule, Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(11);
    let g = generate::barabasi_albert(60, 3, &mut rng).unwrap();
    let s = preprocess(&g, &MegaConfig::default()).unwrap();
    let len = s.band().len();
    let edges = s.working_graph().edge_count();
    let x0: Vec<f32> = (0..len * 4).map(|i| (i % 7) as f32 * 0.1 - 0.3).collect();
    let weights: Vec<f32> = (0..edges).map(|e| (e % 5) as f32 * 0.1 - 0.2).collect();
    (s, x0, weights)
}

fn run_with(plan: SegmentPlan) -> std::thread::Result<()> {
    let (s, x0, weights) = fixture();
    std::thread::spawn(move || {
        let band = s.band();
        let job = BandJob {
            band,
            x0: &x0,
            dim: 4,
            weights: &weights,
            edge_count: s.working_graph().edge_count(),
            steps: 2,
            damping: 0.5,
        };
        run_with_plan(&job, &plan);
    })
    .join()
}

fn chunk(start: usize, end: usize, window: usize, len: usize) -> Chunk {
    Chunk {
        start,
        end,
        read_lo: start.saturating_sub(window),
        read_hi: (end + window).min(len),
    }
}

#[test]
fn overlapping_segment_ownership_panics() {
    let (s, _, _) = fixture();
    let (len, w) = (s.band().len(), s.band().window());
    let mid = len / 2;
    // Two segments both claim the rows around the midpoint.
    let corrupt = SegmentPlan::from_raw_parts(
        len,
        w,
        vec![chunk(0, mid + w, w, len), chunk(mid, len, w, len)],
    );
    let err = run_with(corrupt).expect_err("overlapping ownership must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("writer map panics with a formatted message");
    assert!(msg.contains("owned ranges overlap"), "got: {msg}");
}

#[test]
fn gappy_segment_coverage_panics() {
    let (s, _, _) = fixture();
    let (len, w) = (s.band().len(), s.band().window());
    let mid = len / 2;
    // Nobody owns the rows just after the midpoint.
    let corrupt = SegmentPlan::from_raw_parts(
        len,
        w,
        vec![
            chunk(0, mid, w, len),
            chunk((mid + w + 1).min(len), len, w, len),
        ],
    );
    let err = run_with(corrupt).expect_err("coverage gap must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("writer map panics with a formatted message");
    assert!(msg.contains("never claimed"), "got: {msg}");
}

#[test]
fn valid_plan_passes_the_checked_run() {
    let (s, _, _) = fixture();
    let plan = SegmentPlan::for_schedule(&s, 4);
    run_with(plan).expect("valid plan must pass under race-check");
}
