//! Fixed log-scale histograms with approximate percentiles.
//!
//! Buckets are powers of two: bucket 0 holds the value 0 and bucket `k ≥ 1`
//! holds `[2^(k-1), 2^k)`. Recording is O(1) and allocation-free; percentile
//! queries return the *upper bound* of the bucket containing the requested
//! rank, so the reported percentile `p` always satisfies
//! `exact ≤ p < 2 · exact` (and `p == exact` for powers of two and zero).
//! That two-sided bound is property-tested against a sorted-vec oracle in
//! `tests/obs.rs`.

/// Number of buckets: the zero bucket plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-size power-of-two histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// Bucket index of a sample: 0 for 0, otherwise `64 - leading_zeros`.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (largest sample it can hold).
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The bucket counts, index 0 first.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The approximate `q`-quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket holding the sample of rank `ceil(q · count)`. Returns 0 for an
    /// empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Folds another histogram into this one (bucket-wise addition).
    ///
    /// Merging is commutative and associative, and merging per-thread
    /// histograms in *any* order yields the same result as recording every
    /// sample into one histogram — recording only ever increments a bucket,
    /// so the final state is a pure sum. The concurrent-recording tests in
    /// `tests/obs.rs` pin this down: worker threads record into private
    /// histograms and the ordered merge is byte-deterministic.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Shorthand for the median / tail percentiles reported in snapshots.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn merge_equals_unified_recording() {
        let samples: Vec<u64> = (0..200).map(|i| (i * 37) % 1000).collect();
        let mut unified = Histogram::new();
        for &v in &samples {
            unified.record(v);
        }
        // Split across three "threads", merge in order.
        let mut merged = Histogram::new();
        for chunk in samples.chunks(70) {
            let mut part = Histogram::new();
            for &v in chunk {
                part.record(v);
            }
            merged.merge(&part);
        }
        assert_eq!(merged, unified);
    }

    #[test]
    fn percentile_bound_holds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Exact p50 is 500; the reported value is the bucket upper bound.
        let p50 = h.p50();
        assert!((500..1000).contains(&p50), "p50 {p50}");
        assert!(h.p99() >= 990);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }
}
