//! Offline stand-in for `serde_json`.
//!
//! Serializes the shim `serde::Value` tree to JSON text (compact and pretty)
//! and parses JSON text back with a recursive-descent parser. Supports the
//! workspace's API surface: [`to_string`], [`to_string_pretty`], [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails in practice; the `Result` mirrors the upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to pretty JSON with two-space indentation.
///
/// # Errors
///
/// Never fails in practice; the `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a `.0` so the value reads back as a float.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                // serde_json writes non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::U64(u64::MAX)),
            ("neg".to_string(), Value::I64(-3)),
            ("f".to_string(), Value::F64(1.5)),
            (
                "arr".to_string(),
                Value::Array(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("a\"b\n".into()),
                ]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_parseable_and_indented() {
        let v = Value::Object(vec![("k".to_string(), Value::Array(vec![Value::U64(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  "));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn usize_max_survives_text() {
        let text = to_string(&usize::MAX).unwrap();
        let back: usize = from_str(&text).unwrap();
        assert_eq!(back, usize::MAX);
    }

    #[test]
    fn float_integral_keeps_point() {
        let text = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::F64(2.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 x").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
