//! §IV-B6 extension: predicted distributed-training scaling.
//!
//! Combines the simulated single-device epoch cost with the
//! communication-volume model: edge-cut partitioning saturates as its
//! near-all-to-all message count grows, while MEGA's path partition (k − 1
//! chain exchanges) keeps scaling.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::{preprocess, MegaConfig};
use mega_dist::{
    bfs_partition, edge_cut_volume, epoch_scaling, path_partition_volume, ClusterConfig,
};
use mega_gpu_sim::{BatchTopology, DeviceConfig, EngineKind, GnnCostModel, ModelSpec};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    partitions: usize,
    cut_speedup: f64,
    path_speedup: f64,
    cut_comm_seconds: f64,
    path_comm_seconds: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(21);
    let g = generate::barabasi_albert(4000, 3, &mut rng).unwrap();
    let schedule = preprocess(&g, &MegaConfig::default()).unwrap();

    // Single-device epoch cost of a GT over this graph (one big batch,
    // 20 steps per epoch).
    let spec = ModelSpec::graph_transformer(64, 2);
    let topo = BatchTopology::from_graphs_with_schedules(
        std::slice::from_ref(&g),
        std::slice::from_ref(&schedule),
    );
    let single = GnnCostModel::new(DeviceConfig::gtx_1080(), spec.clone(), EngineKind::Mega)
        .epoch_cost(&topo, 20);
    let rounds = spec.layers * 2 * 20; // layers × fwd/bwd × steps
    let cluster = ClusterConfig::ten_gbe();
    mega_obs::data!(
        "graph: n={} m={} | single-device epoch {:.2} ms | 10GbE cluster\n",
        g.node_count(),
        g.edge_count(),
        single.epoch_seconds * 1e3
    );

    let mut table = TableWriter::new(&[
        "k",
        "cut speedup",
        "path speedup",
        "cut comm(ms)",
        "path comm(ms)",
    ]);
    let mut rows = Vec::new();
    for &k in &[2usize, 4, 8, 16, 32, 64] {
        let cut = edge_cut_volume(&g, &bfs_partition(&g, k), k);
        let path = path_partition_volume(&schedule, k);
        let cut_point = epoch_scaling(single.epoch_seconds, &cut, rounds, 64, &cluster);
        let path_point = epoch_scaling(single.epoch_seconds, &path, rounds, 64, &cluster);
        table.row(&[
            k.to_string(),
            format!("{:.2}x", cut_point.speedup),
            format!("{:.2}x", path_point.speedup),
            fmt(cut_point.comm_seconds * 1e3, 2),
            fmt(path_point.comm_seconds * 1e3, 2),
        ]);
        rows.push(Row {
            partitions: k,
            cut_speedup: cut_point.speedup,
            path_speedup: path_point.speedup,
            cut_comm_seconds: cut_point.comm_seconds,
            path_comm_seconds: path_point.comm_seconds,
        });
    }
    mega_obs::data!("Distributed scaling — BFS edge-cut vs MEGA path partition\n");
    table.print();
    mega_obs::data!(
        "\nExpected: path-partition speedup keeps rising with k (O(k) chain exchanges);\n\
         the edge-cut curve flattens as its communicating-pair count explodes."
    );
    save_json("dist_scaling", &rows);
}
