//! Distributed training with a deterministic fixed-order gradient
//! all-reduce.
//!
//! [`DistTrainer`] fans one optimizer step's gradient work out over `k`
//! worker threads and all-reduces at the optimizer boundary. The unit of
//! distribution is a *shard* — one training sample, with its gradient
//! computed start-to-finish on one worker's own tape — because float
//! addition does not associate: summing per-worker partials would weld the
//! reduction tree to the worker count and change bits between `k = 1` and
//! `k = 4`. Fixing the shard granularity (independent of `k`) and folding
//! every shard's gradient on the coordinator in ascending shard order makes
//! the loss trajectory bit-identical for **any** worker count by
//! construction — the same ownership argument the band engine's chunk
//! merge uses, applied to the optimizer boundary.
//!
//! Workers keep their own persistent [`BufferPool`] and [`PackCache`]
//! (invalidated at every optimizer boundary, mirroring the single-process
//! pack invariant); pooling is content-neutral, so which worker computes a
//! shard never affects its bits.
//!
//! Note the distributed trajectory is *not* bit-compared against
//! [`Trainer`]: batch normalization couples samples through column
//! statistics over the whole batch, so per-sample shard tapes legitimately
//! see different statistics than one whole-batch tape. The invariant that
//! matters — and the one CI's `dist-equivalence` matrix enforces — is
//! worker-count invariance at fixed sharding.

use mega_datasets::{Dataset, GraphSample, Task};
use mega_exec::{BufferPool, PackCache};
use mega_gnn::nn::Binder;
use mega_gnn::{cost, metrics};
use mega_gnn::{
    preprocess_samples, Batch, EngineChoice, EpochRecord, Gnn, GnnConfig, PhaseSeconds, Trainer,
    TrainingHistory,
};
use mega_tensor::{Adam, Optimizer, ParamId, ParamStore, Tape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::mpsc::channel;
use std::sync::Arc;

/// One shard's contribution, shipped from a worker to the coordinator.
struct ShardMsg {
    shard: usize,
    loss: f64,
    metric: f64,
    grads: Vec<(ParamId, Tensor)>,
}

/// Per-worker persistent execution state, kept across optimizer steps.
struct WorkerCtx {
    pool: Arc<BufferPool>,
    pack_cache: Arc<PackCache>,
}

/// Trains with `workers` gradient workers and a deterministic all-reduce.
///
/// Wraps a [`Trainer`] for all hyperparameters (engine, backend, planner,
/// parallelism, plateau protocol); only the optimizer-step execution
/// changes. `workers == 1` runs the identical sharded protocol on one
/// thread, so it is the in-family oracle the multi-worker runs are
/// bit-compared against.
#[derive(Debug, Clone)]
pub struct DistTrainer {
    /// Hyperparameters and engine/backend selection.
    pub inner: Trainer,
    /// Gradient worker count.
    pub workers: usize,
}

impl DistTrainer {
    /// A distributed trainer over `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(inner: Trainer, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        DistTrainer { inner, workers }
    }

    /// Builds one single-sample batch per sample — the fixed shard
    /// granularity that makes the reduction worker-count invariant.
    fn build_shards(&self, samples: &[GraphSample]) -> Vec<Batch> {
        samples
            .chunks(1)
            .map(|c| match self.inner.engine {
                EngineChoice::Baseline => Batch::baseline(c),
                EngineChoice::Mega => {
                    let schedules =
                        preprocess_samples(c, &self.inner.mega_config, &self.inner.parallelism)
                            .expect("preprocessing of a valid graph cannot fail");
                    Batch::mega_with(c, &schedules, &self.inner.parallelism)
                }
            })
            .collect()
    }

    /// Computes loss, metric, and (optionally) gradients for one shard on
    /// its own tape. Self-contained: bits depend only on the shard and the
    /// parameters, never on which worker runs it.
    #[allow(clippy::too_many_arguments)]
    fn run_shard(
        &self,
        model: &Gnn,
        store: &ParamStore,
        batch: &Batch,
        task: Task,
        ctx: &WorkerCtx,
        want_grads: bool,
    ) -> (f64, f64, Vec<(ParamId, Tensor)>) {
        let mut tape = Tape::with_exec(self.inner.backend.clone(), ctx.pool.clone());
        tape.set_parallelism(self.inner.parallelism);
        if self.inner.plan {
            tape.set_planning(true);
            tape.set_pack_cache(ctx.pack_cache.clone());
        }
        let mut binder = Binder::new();
        let pred = model.forward(&mut tape, &mut binder, store, batch);
        let loss = model.loss(&mut tape, pred, batch, task);
        let loss_val = tape.value(loss).at(0, 0) as f64;
        let pv = tape.value(pred);
        let metric = match task {
            Task::Regression => metrics::mae(pv, &batch.regression_targets()),
            Task::Classification { .. } => metrics::accuracy(pv, &batch.class_targets()),
        };
        let grads = if want_grads {
            let g = tape.backward(loss);
            binder.shard_grads(&g)
        } else {
            Vec::new()
        };
        (loss_val, metric, grads)
    }

    /// Fans `shards` out over the workers (shard `s` goes to worker
    /// `s mod k` — a fixed assignment, not work stealing, so the message
    /// pattern is reproducible) and returns per-shard results in ascending
    /// shard order. The coordinator's fold over that order is the
    /// deterministic all-reduce.
    fn scatter_gather(
        &self,
        model: &Gnn,
        store: &ParamStore,
        shards: &[Batch],
        task: Task,
        ctxs: &[WorkerCtx],
        want_grads: bool,
    ) -> Vec<ShardMsg> {
        let k = ctxs.len();
        let (tx, rx) = channel::<ShardMsg>();
        let mut slots: Vec<Option<ShardMsg>> = Vec::new();
        slots.resize_with(shards.len(), || None);
        std::thread::scope(|s| {
            for (w, ctx) in ctxs.iter().enumerate() {
                let tx = tx.clone();
                s.spawn(move || {
                    for (shard, batch) in shards.iter().enumerate().skip(w).step_by(k) {
                        let t = mega_obs::timer();
                        let (loss, metric, grads) =
                            self.run_shard(model, store, batch, task, ctx, want_grads);
                        t.observe("dist.train.shard_ns");
                        tx.send(ShardMsg {
                            shard,
                            loss,
                            metric,
                            grads,
                        })
                        .expect("coordinator disconnected");
                    }
                });
            }
            drop(tx);
            // Collect on the coordinator while workers run; arrival order
            // is scheduling-dependent, the slot table restores shard order.
            while let Ok(msg) = rx.recv() {
                let slot = &mut slots[msg.shard];
                assert!(slot.is_none(), "shard {} computed twice", msg.shard);
                *slot = Some(msg);
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("shard never computed"))
            .collect()
    }

    /// Distributed evaluation: shard losses/metrics folded in ascending
    /// shard order, each shard weighted by its single graph.
    fn evaluate(
        &self,
        model: &Gnn,
        store: &ParamStore,
        shards: &[Batch],
        task: Task,
        ctxs: &[WorkerCtx],
    ) -> (f64, f64) {
        let results = self.scatter_gather(model, store, shards, task, ctxs, false);
        let mut loss_sum = 0.0f64;
        let mut metric_sum = 0.0f64;
        for msg in &results {
            loss_sum += msg.loss;
            metric_sum += msg.metric;
        }
        let g = shards.len().max(1) as f64;
        (loss_sum / g, metric_sum / g)
    }

    /// Runs distributed training and returns the per-epoch history —
    /// bit-identical for every `workers` setting.
    pub fn run(&self, dataset: &Dataset, config: GnnConfig) -> TrainingHistory {
        let _train_span = mega_obs::span("train");
        mega_obs::counter_add("gnn.train.runs", 1);
        mega_obs::counter_add("dist.train.runs", 1);
        mega_obs::counter_add("dist.train.workers", self.workers as u64);
        let start = mega_obs::Stopwatch::start();
        let task = dataset.task;
        let t = &self.inner;

        let pre_start = mega_obs::Stopwatch::start();
        let (train_shards, val_shards) = {
            let _s = mega_obs::span("assemble");
            (
                self.build_shards(&dataset.train),
                self.build_shards(&dataset.val),
            )
        };
        let preprocess_seconds = if t.engine == EngineChoice::Mega {
            pre_start.elapsed().as_secs_f64()
        } else {
            0.0
        };

        // Simulated GPU epoch time from a representative batch — the same
        // accounting as the single-process trainer, so sim-clock columns
        // stay comparable across the two.
        let steps_per_epoch = dataset.train.len().div_ceil(t.batch_size.max(1)).max(1);
        let rep = &dataset.train[..dataset.train.len().min(t.batch_size)];
        let rep_schedules = if t.engine == EngineChoice::Mega {
            Some(
                preprocess_samples(rep, &t.mega_config, &t.parallelism)
                    .expect("preprocessing of a valid graph cannot fail"),
            )
        } else {
            None
        };
        let epoch_sim_seconds = cost::epoch_cost(
            &config,
            t.engine,
            rep,
            rep_schedules.as_deref(),
            steps_per_epoch,
        )
        .epoch_seconds;

        let mut store = ParamStore::new();
        let model = Gnn::new(&mut store, config.clone());
        let mut opt = Adam::new(t.lr);
        // Quiet pools: worker pools run concurrently, and live exports to
        // the shared per-class gauge names would interleave last-writer-wins
        // across threads. The coordinator aggregates their stats once after
        // training instead (`export_pool_gauges`), keeping the deterministic
        // snapshot worker-count invariant in what it *carries*, if not in
        // every value (per-pool caps adapt to per-worker demand).
        let ctxs: Vec<WorkerCtx> = (0..self.workers)
            .map(|_| WorkerCtx {
                pool: Arc::new(BufferPool::quiet()),
                pack_cache: Arc::new(PackCache::default()),
            })
            .collect();

        let mut records = Vec::with_capacity(t.epochs);
        let mut sim_clock = preprocess_seconds;
        let mut best_val = f64::INFINITY;
        let mut since_best = 0usize;
        let mut shuffle_rng = t.shuffle_seed.map(StdRng::seed_from_u64);
        let mut shuffled_samples = dataset.train.clone();
        let mut step = 0u64;

        for epoch in 1..=t.epochs {
            let _epoch_span = mega_obs::span("epoch");
            mega_obs::counter_add("gnn.train.epochs", 1);
            let mut phases = PhaseSeconds::default();
            let t_assemble = mega_obs::Stopwatch::start();
            let epoch_shards: Vec<Batch> = match shuffle_rng.as_mut() {
                Some(rng) if epoch > 1 => {
                    let _s = mega_obs::span("assemble");
                    shuffled_samples.shuffle(rng);
                    self.build_shards(&shuffled_samples)
                }
                _ => Vec::new(),
            };
            let epoch_shards: &[Batch] = if epoch_shards.is_empty() {
                &train_shards
            } else {
                &epoch_shards
            };
            phases.assemble = t_assemble.elapsed().as_secs_f64();

            let mut loss_sum = 0.0f64;
            let mut steps_this_epoch = 0usize;
            for group in epoch_shards.chunks(t.batch_size.max(1)) {
                mega_obs::counter_add("gnn.train.batches", 1);
                mega_obs::counter_add("dist.train.steps", 1);
                mega_obs::counter_add("dist.train.shards", group.len() as u64);
                let t_fwd = mega_obs::Stopwatch::start();
                let results = {
                    let _s = mega_obs::span("forward");
                    self.scatter_gather(&model, &store, group, task, &ctxs, true)
                };
                phases.forward += t_fwd.elapsed().as_secs_f64();
                // Deterministic all-reduce: every shard's gradient folded
                // into the store in ascending shard order, scaled to the
                // batch mean — the same bits for 1, 2, or 64 workers.
                let t_opt = mega_obs::Stopwatch::start();
                let inv_b = 1.0f32 / group.len().max(1) as f32;
                let mut batch_loss = 0.0f64;
                {
                    let _s = mega_obs::span("optimizer");
                    for msg in &results {
                        batch_loss += msg.loss;
                        for (p, g) in &msg.grads {
                            store.accumulate(*p, &g.scale(inv_b));
                        }
                    }
                }
                batch_loss /= group.len().max(1) as f64;
                loss_sum += batch_loss;
                let grad_norm = {
                    let _s = mega_obs::span("optimizer");
                    let pre_clip = store.clip_grad_norm(t.grad_clip);
                    opt.step(&mut store);
                    pre_clip
                };
                phases.optimizer += t_opt.elapsed().as_secs_f64();
                // Optimizer boundary: parameters changed, every worker's
                // cached packs are stale.
                if t.plan {
                    for ctx in &ctxs {
                        ctx.pack_cache.invalidate();
                    }
                }
                step += 1;
                steps_this_epoch += 1;
                // NaN/Inf sentinel, mirroring the single-process trainer: a
                // poisoned store has no recovery path, so fail fast. The
                // offending tape lives on a worker thread and is gone; the
                // snapshot and flight recorder still localize the step.
                if !batch_loss.is_finite() || !grad_norm.is_finite() {
                    panic!(
                        "non-finite training signal at epoch {epoch} step {step} \
                         ({} workers): loss={batch_loss}, pre-clip grad \
                         norm={grad_norm}\nmetrics snapshot:\n{}\n{}",
                        self.workers,
                        mega_obs::snapshot().to_json(false),
                        mega_obs::render_flight_recorder(),
                    );
                }
                if mega_obs::enabled() {
                    mega_obs::record_value(
                        "gnn.health.loss_milli",
                        (batch_loss * 1e3).max(0.0) as u64,
                    );
                    mega_obs::record_value(
                        "gnn.health.grad_norm_milli",
                        (grad_norm as f64 * 1e3).max(0.0) as u64,
                    );
                    mega_obs::trace_counter("gnn.health.grad_norm", grad_norm as f64);
                }
            }
            let train_loss = loss_sum / steps_this_epoch.max(1) as f64;

            let t_eval = mega_obs::Stopwatch::start();
            let (val_loss, val_metric) = {
                let _s = mega_obs::span("evaluate");
                self.evaluate(&model, &store, &val_shards, task, &ctxs)
            };
            phases.evaluate = t_eval.elapsed().as_secs_f64();
            sim_clock += epoch_sim_seconds;
            records.push(EpochRecord {
                epoch,
                train_loss,
                val_loss,
                val_metric,
                sim_seconds: sim_clock,
                real_seconds: start.elapsed().as_secs_f64(),
                phases,
            });
            if val_loss < best_val - 1e-6 {
                best_val = val_loss;
                since_best = 0;
            } else {
                since_best += 1;
                if t.lr_patience > 0 && since_best.is_multiple_of(t.lr_patience) {
                    let lr = opt.learning_rate() * 0.5;
                    opt.set_learning_rate(lr);
                }
                if t.early_stop_patience > 0 && since_best >= t.early_stop_patience {
                    break;
                }
            }
        }

        let (test_loss, test_metric) = {
            let _s = mega_obs::span("evaluate");
            let test_shards = self.build_shards(&dataset.test);
            self.evaluate(&model, &store, &test_shards, task, &ctxs)
        };

        // The worker pools are quiet (see above): fold their per-class
        // telemetry here, after every shard has drained, and emit the
        // shared gauges once from the coordinator. Each worker's history
        // is fixed by the round-robin shard assignment, so the sums are
        // reproducible run-to-run.
        if mega_obs::enabled() {
            let mut agg: std::collections::BTreeMap<u32, (u64, u64, u64)> =
                std::collections::BTreeMap::new();
            for ctx in &ctxs {
                for s in ctx.pool.class_stats() {
                    let e = agg.entry(s.class).or_default();
                    e.0 += s.resident_bytes;
                    e.1 += s.resident_hwm_bytes;
                    e.2 += s.cap as u64;
                }
            }
            for (class, (resident, hwm, cap)) in agg {
                mega_obs::gauge_set(
                    &format!("exec.pool.class{class}.resident_bytes"),
                    resident as f64,
                );
                mega_obs::gauge_set(
                    &format!("exec.pool.class{class}.resident_hwm_bytes"),
                    hwm as f64,
                );
                mega_obs::gauge_set(&format!("exec.pool.class{class}.cap"), cap as f64);
            }
        }

        TrainingHistory {
            engine: t.engine.label().to_string(),
            model: config.kind.label().to_string(),
            dataset: dataset.name.clone(),
            records,
            preprocess_seconds,
            epoch_sim_seconds,
            test_loss,
            test_metric,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_datasets::{zinc, DatasetSpec};
    use mega_gnn::ModelKind;

    fn tiny(seed: u64) -> (Dataset, GnnConfig) {
        let ds = zinc(&DatasetSpec {
            train: 24,
            val: 8,
            test: 8,
            seed,
        });
        let cfg = GnnConfig::new(ModelKind::GatedGcn, ds.node_vocab, ds.edge_vocab, 1)
            .with_hidden(16)
            .with_layers(2)
            .with_heads(2);
        (ds, cfg)
    }

    fn bits(h: &TrainingHistory) -> Vec<u64> {
        let mut v: Vec<u64> = h
            .records
            .iter()
            .flat_map(|r| {
                [
                    r.train_loss.to_bits(),
                    r.val_loss.to_bits(),
                    r.val_metric.to_bits(),
                ]
            })
            .collect();
        v.push(h.test_loss.to_bits());
        v
    }

    #[test]
    fn trajectory_is_bit_identical_across_worker_counts() {
        let (ds, cfg) = tiny(41);
        let base = Trainer::new(EngineChoice::Baseline)
            .with_epochs(2)
            .with_batch_size(8);
        let oracle = DistTrainer::new(base.clone(), 1).run(&ds, cfg.clone());
        for workers in [2, 3, 4] {
            let hist = DistTrainer::new(base.clone(), workers).run(&ds, cfg.clone());
            assert_eq!(
                bits(&hist),
                bits(&oracle),
                "trajectory diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn mega_engine_trains_and_is_worker_invariant() {
        let (ds, cfg) = tiny(42);
        let base = Trainer::new(EngineChoice::Mega)
            .with_epochs(2)
            .with_batch_size(8);
        let one = DistTrainer::new(base.clone(), 1).run(&ds, cfg.clone());
        let four = DistTrainer::new(base, 4).run(&ds, cfg);
        assert_eq!(bits(&one), bits(&four));
        assert!(one.records.iter().all(|r| r.train_loss.is_finite()));
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, cfg) = tiny(43);
        let base = Trainer::new(EngineChoice::Baseline)
            .with_epochs(6)
            .with_batch_size(8);
        let hist = DistTrainer::new(base, 2).run(&ds, cfg);
        let first = hist.records.first().unwrap().train_loss;
        let last = hist.records.last().unwrap().train_loss;
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert_eq!(hist.records.len(), 6);
    }

    #[test]
    fn shuffle_and_backends_stay_worker_invariant() {
        let (ds, cfg) = tiny(44);
        for name in ["blocked", "simd"] {
            let backend = mega_exec::backend_by_name(name).unwrap();
            let base = Trainer::new(EngineChoice::Baseline)
                .with_epochs(2)
                .with_batch_size(8)
                .with_backend(backend)
                .with_shuffle(13);
            let one = DistTrainer::new(base.clone(), 1).run(&ds, cfg.clone());
            let three = DistTrainer::new(base, 3).run(&ds, cfg.clone());
            assert_eq!(bits(&one), bits(&three), "{name} diverged");
        }
    }
}
