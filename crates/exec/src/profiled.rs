//! Roofline-attributed profiling decorator over any execution backend.
//!
//! [`ProfiledBackend`] wraps an inner [`Backend`], forwards every kernel to
//! it unchanged (values stay bit-identical), and — while `mega_obs` is
//! enabled — records three things per call into the
//! `exec.profiled.<kernel>.*` namespace:
//!
//! * `.calls` / `.flops` / `.bytes` **counters** — the kernel's analytic
//!   work and minimum memory traffic, computed from the launch shape alone,
//!   so they are bit-identical across runs and appear in deterministic
//!   snapshots;
//! * `.ns` **timing histogram** — measured wall clock per call (full
//!   snapshots and the Chrome trace only; deterministic snapshots keep the
//!   sample count).
//!
//! Combined with a [`Calibration`] (the machine's peak GEMM GFLOP/s and
//! STREAM-triad GB/s), `mega report` places every kernel on the roofline:
//! arithmetic intensity `AI = flops / bytes`, attainable rate
//! `min(peak_flops, AI · bandwidth)`, and achieved-vs-roof utilization.
//!
//! The disabled path costs one relaxed atomic load per kernel call (the
//! [`mega_obs::timer`] gate), so the decorator can stay attached to a
//! production trainer; `tests/profiled.rs` gates the overhead at ≤ 5% of
//! the unwrapped backend on the 512×512 GEMM harness.

use crate::{Backend, PackedB, Unary};
use mega_core::band::BandMask;
use mega_core::Parallelism;
use std::sync::Arc;

/// Bytes of one `f32`.
const F32: u64 = 4;
/// Bytes of one `usize` index entry (as moved by gather/scatter).
const IDX: u64 = std::mem::size_of::<usize>() as u64;

/// Wraps an inner backend and attributes every kernel call with FLOPs,
/// bytes moved, and wall time (see the module docs).
#[derive(Debug)]
pub struct ProfiledBackend {
    inner: Arc<dyn Backend>,
}

impl ProfiledBackend {
    /// Decorates `inner`. Forwarded values are bit-identical to `inner`'s.
    pub fn new(inner: Arc<dyn Backend>) -> Self {
        ProfiledBackend { inner }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn Backend> {
        &self.inner
    }

    /// Records one attributed kernel call. `timer` was started before the
    /// inner dispatch, so the observed duration covers the kernel alone —
    /// the counter bookkeeping below it is excluded from the measurement.
    fn record(&self, kernel: &str, flops: u64, bytes: u64, timer: mega_obs::Timer) {
        let mut name = String::with_capacity(14 + kernel.len() + 6);
        name.push_str("exec.profiled.");
        name.push_str(kernel);
        let base = name.len();
        name.push_str(".ns");
        timer.observe(&name);
        if !mega_obs::enabled() {
            return;
        }
        name.truncate(base);
        name.push_str(".calls");
        mega_obs::counter_add(&name, 1);
        name.truncate(base);
        name.push_str(".flops");
        mega_obs::counter_add(&name, flops);
        name.truncate(base);
        name.push_str(".bytes");
        mega_obs::counter_add(&name, bytes);
    }
}

/// Work and traffic of an elementwise kernel over `len` outputs reading
/// `reads` input streams.
fn elementwise(len: usize, flops_per_elem: u64, reads: u64) -> (u64, u64) {
    let len = len as u64;
    (len * flops_per_elem, len * F32 * (reads + 1))
}

impl Backend for ProfiledBackend {
    fn name(&self) -> &'static str {
        "profiled"
    }

    fn matmul(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.matmul(a, b, n, k, m, par, out);
        let (n64, k64, m64) = (n as u64, k as u64, m as u64);
        self.record(
            "matmul",
            2 * n64 * k64 * m64,
            F32 * (n64 * k64 + k64 * m64 + n64 * m64),
            t,
        );
    }

    fn linear_relu(
        &self,
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.linear_relu(x, w, bias, n, k, m, par, out);
        let (n64, k64, m64) = (n as u64, k as u64, m as u64);
        // GEMM plus the fused epilogue: one add + one max per output.
        self.record(
            "linear_relu",
            2 * n64 * k64 * m64 + 2 * n64 * m64,
            F32 * (n64 * k64 + k64 * m64 + m64 + n64 * m64),
            t,
        );
    }

    fn supports_prepack(&self) -> bool {
        self.inner.supports_prepack()
    }

    fn prepack(&self, b: &[f32], k: usize, m: usize) -> Option<PackedB> {
        let t = mega_obs::timer();
        let packed = self.inner.prepack(b, k, m)?;
        // A pure layout copy: read k·m, write the padded strips.
        self.record("prepack", 0, F32 * 2 * (k as u64) * (m as u64), t);
        Some(packed)
    }

    fn matmul_packed(
        &self,
        a: &[f32],
        packed: &PackedB,
        n: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.matmul_packed(a, packed, n, par, out);
        let (n64, k64, m64) = (n as u64, packed.k() as u64, packed.m() as u64);
        // Same work as `matmul`; the cached pack only removes the per-call
        // b copy, charged once at `prepack` time.
        self.record(
            "matmul",
            2 * n64 * k64 * m64,
            F32 * (n64 * k64 + k64 * m64 + n64 * m64),
            t,
        );
    }

    fn linear_relu_packed(
        &self,
        x: &[f32],
        packed: &PackedB,
        bias: &[f32],
        n: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.linear_relu_packed(x, packed, bias, n, par, out);
        let (n64, k64, m64) = (n as u64, packed.k() as u64, packed.m() as u64);
        self.record(
            "linear_relu",
            2 * n64 * k64 * m64 + 2 * n64 * m64,
            F32 * (n64 * k64 + k64 * m64 + m64 + n64 * m64),
            t,
        );
    }

    fn linear_leaky_relu(
        &self,
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        slope: f32,
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner
            .linear_leaky_relu(x, w, bias, slope, n, k, m, par, out);
        let (n64, k64, m64) = (n as u64, k as u64, m as u64);
        // GEMM plus the fused epilogue: add, compare, conditional multiply.
        self.record(
            "linear_leaky_relu",
            2 * n64 * k64 * m64 + 3 * n64 * m64,
            F32 * (n64 * k64 + k64 * m64 + m64 + n64 * m64),
            t,
        );
    }

    fn add(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        let t = mega_obs::timer();
        self.inner.add(a, b, out);
        let (f, by) = elementwise(out.len(), 1, 2);
        self.record("add", f, by, t);
    }

    fn sub(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        let t = mega_obs::timer();
        self.inner.sub(a, b, out);
        let (f, by) = elementwise(out.len(), 1, 2);
        self.record("sub", f, by, t);
    }

    fn mul(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        let t = mega_obs::timer();
        self.inner.mul(a, b, out);
        let (f, by) = elementwise(out.len(), 1, 2);
        self.record("mul", f, by, t);
    }

    fn scale(&self, a: &[f32], k: f32, out: &mut [f32]) {
        let t = mega_obs::timer();
        self.inner.scale(a, k, out);
        let (f, by) = elementwise(out.len(), 1, 1);
        self.record("scale", f, by, t);
    }

    fn axpy(&self, a: &[f32], k: f32, b: &[f32], out: &mut [f32]) {
        let t = mega_obs::timer();
        self.inner.axpy(a, k, b, out);
        let (f, by) = elementwise(out.len(), 2, 2);
        self.record("axpy", f, by, t);
    }

    fn add_bias_rows(&self, x: &[f32], bias: &[f32], n: usize, m: usize, out: &mut [f32]) {
        let t = mega_obs::timer();
        self.inner.add_bias_rows(x, bias, n, m, out);
        let (n64, m64) = (n as u64, m as u64);
        self.record("add_bias_rows", n64 * m64, F32 * (2 * n64 * m64 + m64), t);
    }

    fn unary(&self, op: Unary, x: &[f32], out: &mut [f32]) {
        let t = mega_obs::timer();
        self.inner.unary(op, x, out);
        // Fixed per-op flop charges so the attribution is deterministic:
        // cheap comparisons for the ReLU family, a nominal 8 for the
        // transcendentals.
        let fpe = match op {
            Unary::Relu => 1,
            Unary::LeakyRelu(_) => 2,
            Unary::Sigmoid | Unary::Tanh => 8,
        };
        let (f, by) = elementwise(out.len(), fpe, 1);
        self.record("unary", f, by, t);
    }

    fn gather_rows(
        &self,
        src: &[f32],
        src_rows: usize,
        cols: usize,
        index: &[usize],
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.gather_rows(src, src_rows, cols, index, out);
        let rows = index.len() as u64;
        self.record("gather_rows", 0, rows * (2 * cols as u64 * F32 + IDX), t);
    }

    fn scatter_add_rows(
        &self,
        src: &[f32],
        index: &[usize],
        cols: usize,
        out_rows: usize,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.scatter_add_rows(src, index, cols, out_rows, out);
        let rows = index.len() as u64;
        let c = cols as u64;
        self.record("scatter_add_rows", rows * c, rows * (2 * c * F32 + IDX), t);
    }

    fn scale_rows(&self, x: &[f32], factors: &[f32], cols: usize, out: &mut [f32]) {
        let t = mega_obs::timer();
        self.inner.scale_rows(x, factors, cols, out);
        let len = out.len() as u64;
        let rows = len / (cols.max(1) as u64);
        self.record("scale_rows", len, 2 * len * F32 + rows * F32, t);
    }

    fn segment_softmax(
        &self,
        x: &[f32],
        rows: usize,
        cols: usize,
        segments: &[usize],
        n_segments: usize,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner
            .segment_softmax(x, rows, cols, segments, n_segments, out);
        let len = (rows * cols) as u64;
        // Max, subtract, exp (nominal 8), sum, divide per element.
        self.record(
            "segment_softmax",
            12 * len,
            2 * len * F32 + rows as u64 * IDX,
            t,
        );
    }

    fn layer_norm(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.layer_norm(x, gamma, beta, rows, cols, eps, out);
        let len = (rows * cols) as u64;
        // Mean + variance passes, then normalize-scale-shift.
        self.record(
            "layer_norm",
            8 * len,
            2 * len * F32 + 2 * cols as u64 * F32,
            t,
        );
    }

    fn batch_norm(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.batch_norm(x, gamma, beta, rows, cols, eps, out);
        let len = (rows * cols) as u64;
        self.record(
            "batch_norm",
            8 * len,
            2 * len * F32 + 2 * cols as u64 * F32,
            t,
        );
    }

    fn layer_norm_act(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        act: Unary,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner
            .layer_norm_act(x, gamma, beta, rows, cols, eps, act, out);
        let len = (rows * cols) as u64;
        // Norm passes plus one in-place activation sweep.
        self.record(
            "layer_norm_act",
            9 * len,
            2 * len * F32 + 2 * cols as u64 * F32,
            t,
        );
    }

    fn batch_norm_act(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        act: Unary,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner
            .batch_norm_act(x, gamma, beta, rows, cols, eps, act, out);
        let len = (rows * cols) as u64;
        self.record(
            "batch_norm_act",
            9 * len,
            2 * len * F32 + 2 * cols as u64 * F32,
            t,
        );
    }

    fn banded_aggregate(
        &self,
        band: &BandMask,
        x: &[f32],
        dim: usize,
        weights: &[f32],
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner.banded_aggregate(band, x, dim, weights, par, out);
        let edges = band.covered_edge_count() as u64;
        let d = dim as u64;
        // Each covered edge contributes a weighted row to both endpoints:
        // one multiply + one add per feature, twice (symmetric band).
        self.record(
            "banded_aggregate",
            4 * edges * d,
            F32 * (2 * (x.len() as u64) + edges + out.len() as u64),
            t,
        );
    }

    fn banded_weight_grad(
        &self,
        band: &BandMask,
        x: &[f32],
        d_out: &[f32],
        dim: usize,
        edge_count: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        let t = mega_obs::timer();
        self.inner
            .banded_weight_grad(band, x, d_out, dim, edge_count, par, out);
        let edges = band.covered_edge_count() as u64;
        let d = dim as u64;
        // Per covered edge: a dot product of two feature rows, mirrored.
        self.record(
            "banded_weight_grad",
            4 * edges * d,
            F32 * (x.len() as u64 + d_out.len() as u64 + edge_count as u64),
            t,
        );
    }
}

/// Machine roofs for the roofline attribution: peak dense-GEMM compute and
/// STREAM-triad memory bandwidth.
///
/// [`Calibration::measure`] produces machine-specific roofs (wall-clock —
/// never byte-stable across hosts); [`Calibration::reference`] is the fixed
/// documented fallback `mega report` uses by default, so CI reports stay
/// byte-identical. Utilization numbers against the reference roofs are
/// *relative placements*, not absolute hardware efficiency — recalibrate
/// (`mega report --calibrate`) before reading them as machine truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Peak sustained dense-GEMM rate, GFLOP/s.
    pub gemm_gflops: f64,
    /// Peak sustained STREAM-triad bandwidth, GB/s.
    pub triad_gbps: f64,
}

impl Calibration {
    /// The fixed reference roofs used when no machine calibration is given:
    /// a nominal single-core scalar CPU (8 GFLOP/s, 16 GB/s). Chosen so
    /// reports are deterministic, not so utilizations read as absolutes.
    pub fn reference() -> Self {
        Calibration {
            gemm_gflops: 8.0,
            triad_gbps: 16.0,
        }
    }

    /// One-shot machine calibration: best-of-`reps` 256³ GEMM on `backend`
    /// for the compute roof, best-of-`reps` STREAM triad
    /// (`a[i] = b[i] + s·c[i]`, 12 bytes moved per element) for the
    /// bandwidth roof. Takes a fraction of a second in release builds.
    pub fn measure(backend: &dyn Backend) -> Self {
        const N: usize = 256;
        const REPS: usize = 3;
        let par = Parallelism::with_threads(1);
        let a = vec![1.0f32; N * N];
        let b = vec![0.5f32; N * N];
        let mut out = vec![0.0f32; N * N];
        let mut best_gemm = f64::INFINITY;
        for _ in 0..REPS {
            out.fill(0.0);
            let sw = mega_obs::Stopwatch::start();
            backend.matmul(&a, &b, N, N, N, &par, &mut out);
            best_gemm = best_gemm.min(sw.elapsed_seconds());
        }
        let gemm_gflops = 2.0 * (N as f64).powi(3) / best_gemm / 1e9;

        const LEN: usize = 1 << 22; // 16 MiB per buffer: past every cache.
        let tb = vec![1.0f32; LEN];
        let tc = vec![2.0f32; LEN];
        let mut ta = vec![0.0f32; LEN];
        let mut best_triad = f64::INFINITY;
        for _ in 0..REPS {
            let sw = mega_obs::Stopwatch::start();
            for ((o, &x), &y) in ta.iter_mut().zip(&tb).zip(&tc) {
                *o = x + 3.0 * y;
            }
            best_triad = best_triad.min(sw.elapsed_seconds());
        }
        // Keep the result observable so the triad loop cannot be elided.
        assert!(ta[LEN / 2] == 7.0, "triad result clobbered");
        Calibration {
            gemm_gflops,
            triad_gbps: 12.0 * LEN as f64 / best_triad / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceBackend;

    /// Serializes tests that toggle the process-global obs registry.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn counter(snap: &mega_obs::Snapshot, name: &str) -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    #[test]
    fn forwards_bit_identically_and_attributes_flops() {
        let _g = guard();
        mega_obs::reset();
        mega_obs::set_enabled(true);
        let raw = ReferenceBackend;
        let profiled = ProfiledBackend::new(Arc::new(ReferenceBackend));
        let par = Parallelism::with_threads(1);
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [0.5f32, -1.0, 2.0, 0.25, -0.5, 1.5];
        let mut want = [0.0f32; 4];
        let mut got = [0.0f32; 4];
        raw.matmul(&a, &b, 2, 3, 2, &par, &mut want);
        profiled.matmul(&a, &b, 2, 3, 2, &par, &mut got);
        assert_eq!(want, got, "decorator must not perturb values");
        let mut w2 = [0.0f32; 6];
        let mut g2 = [0.0f32; 6];
        raw.unary(Unary::Relu, &b, &mut w2);
        profiled.unary(Unary::Relu, &b, &mut g2);
        assert_eq!(w2, g2);
        mega_obs::set_enabled(false);
        let snap = mega_obs::snapshot();
        assert_eq!(counter(&snap, "exec.profiled.matmul.calls"), 1);
        assert_eq!(counter(&snap, "exec.profiled.matmul.flops"), 2 * 2 * 3 * 2);
        assert_eq!(
            counter(&snap, "exec.profiled.matmul.bytes"),
            4 * (6 + 6 + 4)
        );
        assert_eq!(counter(&snap, "exec.profiled.unary.calls"), 1);
        let timing = snap
            .timings
            .iter()
            .find(|(n, _)| n == "exec.profiled.matmul.ns");
        assert_eq!(timing.map(|(_, h)| h.count), Some(1));
        mega_obs::reset();
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let _g = guard();
        mega_obs::reset();
        mega_obs::set_enabled(false);
        let profiled = ProfiledBackend::new(Arc::new(ReferenceBackend));
        let par = Parallelism::with_threads(1);
        let a = [1.0f32; 4];
        let mut out = [0.0f32; 4];
        profiled.matmul(&a, &a, 2, 2, 2, &par, &mut out);
        let snap = mega_obs::snapshot();
        assert!(!snap
            .counters
            .iter()
            .any(|(n, _)| n.starts_with("exec.profiled.")));
    }

    #[test]
    fn reference_calibration_is_fixed() {
        let c = Calibration::reference();
        assert_eq!(c.gemm_gflops, 8.0);
        assert_eq!(c.triad_gbps, 16.0);
    }
}
