//! Table III: degree-distribution consistency and KS similarity per dataset.

use mega_bench::{bench_datasets, fmt, save_json, TableWriter};
use mega_datasets::DatasetSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    mean_degree_std: f64,
    std_min_degree: f64,
    std_max_degree: f64,
    std_mean_degree: f64,
    mean_ks_similarity: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let spec = DatasetSpec::small(2024);
    let mut table = TableWriter::new(&[
        "Datasets",
        "mu(sigma(d))",
        "sigma(d_min)",
        "sigma(d_max)",
        "sigma(d_mean)",
        "mu(eps)",
    ]);
    let mut rows = Vec::new();
    for ds in bench_datasets(&spec) {
        let st = ds.stats(256);
        table.row(&[
            ds.name.clone(),
            fmt(st.mean_degree_std, 4),
            fmt(st.std_min_degree, 4),
            fmt(st.std_max_degree, 4),
            fmt(st.std_mean_degree, 4),
            fmt(st.mean_ks_similarity, 2),
        ]);
        rows.push(Row {
            dataset: ds.name.clone(),
            mean_degree_std: st.mean_degree_std,
            std_min_degree: st.std_min_degree,
            std_max_degree: st.std_max_degree,
            std_mean_degree: st.std_mean_degree,
            mean_ks_similarity: st.mean_ks_similarity,
        });
    }
    mega_obs::data!("Table III — degree-distribution statistics\n");
    table.print();
    mega_obs::data!(
        "\nPaper values mu(sigma(d)) / sigma(d_min) / sigma(d_max) / sigma(d_mean) / mu(eps):\n\
         ZINC 0.5116/0.0059/0.1998/0.0052/0.94, AQSOL 0.6255/0.0987/0.3106/0.0511/0.87,\n\
         CSL 0/0/0/0/1.0, CYCLES 0.4737/0/0.5045/0.0241/0.71."
    );
    save_json("tab03_degree_stats", &rows);
}
