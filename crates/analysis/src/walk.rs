//! Deterministic discovery of the workspace's Rust sources.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, the vendored offline
/// dependency shims (external code with its own conventions), deliberate
/// rule-violation fixtures, and artifact dumps.
const SKIP_DIRS: [&str; 4] = ["target", "shims", "fixtures", "bench_results"];

/// Collects every `.rs` file under `root`, sorted, skipping the
/// `SKIP_DIRS` set and hidden directories so a lint run is
/// reproducible byte-for-byte.
pub fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    visit(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name().to_string_lossy().into_owned();
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            visit(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
