//! Communication-volume accounting.

use mega_core::AttentionSchedule;
use mega_graph::Graph;
use std::collections::BTreeSet;

/// Communication requirements of one partitioned training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommStats {
    /// Number of partitions.
    pub partitions: usize,
    /// Distinct ordered partition pairs that must exchange data. The paper's
    /// `O(k)` claim is about this number: a path partition communicates only
    /// with its chain neighbors, while edge-cut partitions approach all-to-all.
    pub comm_pairs: usize,
    /// Rows (embeddings) crossing partition boundaries per aggregation round.
    pub volume_rows: usize,
    /// Extra replica rows MEGA stores because revisited nodes span segments
    /// (0 for edge-cut partitioning).
    pub replica_rows: usize,
}

/// Communication of conventional edge-cut partitioned aggregation: every edge
/// whose endpoints live in different partitions moves one embedding row each
/// direction, between that pair of partitions.
///
/// # Panics
///
/// Panics if `parts.len() != g.node_count()` or `k == 0`.
pub fn edge_cut_volume(g: &Graph, parts: &[usize], k: usize) -> CommStats {
    assert_eq!(parts.len(), g.node_count(), "one partition per node");
    assert!(k > 0, "need at least one partition");
    let mut pairs = BTreeSet::new();
    let mut volume = 0usize;
    for (a, b) in g.edges() {
        let (pa, pb) = (parts[a], parts[b]);
        if pa != pb {
            pairs.insert((pa.min(pb), pa.max(pb)));
            volume += 2; // one row each direction per aggregation round
        }
    }
    CommStats {
        partitions: k,
        comm_pairs: pairs.len(),
        volume_rows: volume,
        replica_rows: 0,
    }
}

/// Communication of MEGA's path-segment partitioning: adjacent segments
/// exchange their ω-row halos (two transfers per interior boundary), and
/// nodes whose appearances span multiple segments are replicated and synced
/// once per round.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn path_partition_volume(schedule: &AttentionSchedule, k: usize) -> CommStats {
    assert!(k > 0, "need at least one partition");
    let parts = crate::partition::path_segments(schedule, k);
    let window = schedule.path().window();
    let boundaries = parts.windows(2).filter(|w| w[0] != w[1]).count();
    // Halo exchange: each boundary moves ω rows in each direction.
    let halo_volume = boundaries * 2 * window;
    // Replica sync: a node appearing in s > 1 segments syncs s - 1 rows.
    let mut replica_rows = 0usize;
    for positions in schedule.scatter_index() {
        let mut segs = BTreeSet::new();
        for &p in positions {
            segs.insert(parts[p]);
        }
        replica_rows += segs.len().saturating_sub(1);
    }
    CommStats {
        partitions: k,
        comm_pairs: boundaries,
        volume_rows: halo_volume + replica_rows,
        replica_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{bfs_partition, hash_partition};
    use mega_core::{preprocess, MegaConfig};
    use mega_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_partition_needs_no_communication() {
        let g = generate::complete(8).unwrap();
        let parts = hash_partition(&g, 1);
        let c = edge_cut_volume(&g, &parts, 1);
        assert_eq!(c.comm_pairs, 0);
        assert_eq!(c.volume_rows, 0);
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let p = path_partition_volume(&s, 1);
        assert_eq!(p.comm_pairs, 0);
        assert_eq!(p.volume_rows, 0);
    }

    #[test]
    fn path_partition_pairs_are_linear_in_k() {
        let g = generate::barabasi_albert(120, 3, &mut StdRng::seed_from_u64(2)).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        for k in [2usize, 4, 8, 16] {
            let p = path_partition_volume(&s, k);
            assert_eq!(p.comm_pairs, k - 1, "k = {k}");
        }
    }

    #[test]
    fn edge_cut_pairs_grow_superlinearly_for_hash() {
        let g = generate::erdos_renyi(120, 0.2, &mut StdRng::seed_from_u64(3)).unwrap();
        let k = 8;
        let parts = hash_partition(&g, k);
        let c = edge_cut_volume(&g, &parts, k);
        // Dense-ish random graph + hash partition: essentially all-to-all.
        assert!(c.comm_pairs > 2 * (k - 1), "pairs {}", c.comm_pairs);
    }

    #[test]
    fn bfs_partition_cuts_fewer_edges_than_hash() {
        let g = generate::barabasi_albert(150, 2, &mut StdRng::seed_from_u64(4)).unwrap();
        let k = 6;
        let hash = edge_cut_volume(&g, &hash_partition(&g, k), k);
        let bfs = edge_cut_volume(&g, &bfs_partition(&g, k), k);
        assert!(bfs.volume_rows <= hash.volume_rows);
    }

    #[test]
    fn mega_volume_beats_edge_cut_on_sparse_graphs() {
        let g = generate::barabasi_albert(200, 3, &mut StdRng::seed_from_u64(5)).unwrap();
        let k = 8;
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let cut = edge_cut_volume(&g, &hash_partition(&g, k), k);
        let path = path_partition_volume(&s, k);
        assert!(
            path.volume_rows < cut.volume_rows,
            "path {} vs cut {}",
            path.volume_rows,
            cut.volume_rows
        );
        assert!(path.comm_pairs < cut.comm_pairs);
    }

    #[test]
    fn replicas_counted_once_per_extra_segment() {
        let g = generate::complete(12).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let p = path_partition_volume(&s, 4);
        // Complete graphs revisit heavily; some replicas must exist.
        assert!(p.replica_rows > 0);
        assert!(p.volume_rows >= p.replica_rows);
    }
}
