// `no-fma` fixture: the mul_add mentioned in this comment must not fire.
pub fn fused(a: f32, b: f32, c: f32) -> f32 {
    let s = "mul_add inside a string must not fire";
    let _ = s;
    a.mul_add(b, c)
}

pub fn horizontal(acc: core::arch::x86_64::__m256) -> f32 {
    _mm256_hadd_ps(acc, acc);
    _mm256_fmadd_ps(acc, acc, acc);
    _mm512_reduce_add_ps(acc)
}
