//! Sectored, set-associative, LRU cache model (the device L2).
//!
//! Tags are tracked per cache line; fills happen per 32-byte *sector*, the
//! granularity of GDDR transactions on Pascal-class hardware. An access to a
//! resident line whose sector is absent counts as a (cheaper) sector fill
//! into an existing line; an access to a non-resident line allocates it
//! (evicting LRU) and fills the touched sector.

/// Outcome of a single sector access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Sector present in the cache.
    Hit,
    /// Line resident, sector missing: DRAM fetches one sector.
    SectorMiss,
    /// Line not resident: allocate (possible eviction) and fetch the sector.
    LineMiss,
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    sectors: u32,
    last_use: u64,
    valid: bool,
}

/// A sectored set-associative LRU cache.
///
/// # Example
///
/// ```
/// use mega_gpu_sim::cache::{Access, SectoredCache};
///
/// let mut c = SectoredCache::new(1024, 128, 32, 4);
/// assert_eq!(c.access_sector(0), Access::LineMiss);
/// assert_eq!(c.access_sector(0), Access::Hit);
/// assert_eq!(c.access_sector(32), Access::SectorMiss); // same line, next sector
/// ```
#[derive(Debug, Clone)]
pub struct SectoredCache {
    line_bytes: u64,
    sector_bytes: u64,
    sectors_per_line: u32,
    sets: usize,
    assoc: usize,
    lines: Vec<Line>,
    clock: u64,
    hits: u64,
    sector_misses: u64,
    line_misses: u64,
}

impl SectoredCache {
    /// Creates a cache of `capacity_bytes` with the given line/sector split
    /// and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (sizes not divisible, zero
    /// sets) .
    pub fn new(
        capacity_bytes: usize,
        line_bytes: usize,
        sector_bytes: usize,
        assoc: usize,
    ) -> Self {
        assert!(
            line_bytes.is_multiple_of(sector_bytes),
            "line must hold whole sectors"
        );
        assert!(
            capacity_bytes.is_multiple_of(line_bytes * assoc),
            "capacity must form whole sets"
        );
        let sets = capacity_bytes / (line_bytes * assoc);
        assert!(sets > 0, "cache needs at least one set");
        SectoredCache {
            line_bytes: line_bytes as u64,
            sector_bytes: sector_bytes as u64,
            sectors_per_line: (line_bytes / sector_bytes) as u32,
            sets,
            assoc,
            lines: vec![
                Line {
                    tag: 0,
                    sectors: 0,
                    last_use: 0,
                    valid: false
                };
                sets * assoc
            ],
            clock: 0,
            hits: 0,
            sector_misses: 0,
            line_misses: 0,
        }
    }

    /// Accesses the sector containing byte address `addr`.
    pub fn access_sector(&mut self, addr: u64) -> Access {
        self.clock += 1;
        let line_addr = addr / self.line_bytes;
        let sector_in_line = ((addr % self.line_bytes) / self.sector_bytes) as u32;
        let sector_bit = 1u32 << sector_in_line;
        debug_assert!(sector_in_line < self.sectors_per_line);
        let set = (line_addr % self.sets as u64) as usize;
        let base = set * self.assoc;
        let ways = &mut self.lines[base..base + self.assoc];

        // Lookup.
        for way in ways.iter_mut() {
            if way.valid && way.tag == line_addr {
                way.last_use = self.clock;
                return if way.sectors & sector_bit != 0 {
                    self.hits += 1;
                    Access::Hit
                } else {
                    way.sectors |= sector_bit;
                    self.sector_misses += 1;
                    Access::SectorMiss
                };
            }
        }
        // Miss: pick invalid way or LRU victim.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_use } else { 0 })
            .expect("associativity >= 1");
        victim.valid = true;
        victim.tag = line_addr;
        victim.sectors = sector_bit;
        victim.last_use = self.clock;
        self.line_misses += 1;
        Access::LineMiss
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.sector_misses + self.line_misses
    }

    /// Sector hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses that fetched a sector into a resident line.
    pub fn sector_misses(&self) -> u64 {
        self.sector_misses
    }

    /// Misses that allocated a new line.
    pub fn line_misses(&self) -> u64 {
        self.line_misses
    }

    /// All misses (DRAM sector fetches).
    pub fn misses(&self) -> u64 {
        self.sector_misses + self.line_misses
    }

    /// Hit rate in `[0, 1]`; 1.0 when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
            l.sectors = 0;
        }
        self.clock = 0;
        self.hits = 0;
        self.sector_misses = 0;
        self.line_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SectoredCache {
        // 8 sets × 2 ways × 128B lines = 2 KiB.
        SectoredCache::new(2048, 128, 32, 2)
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small();
        assert_eq!(c.access_sector(100), Access::LineMiss);
        assert_eq!(c.access_sector(100), Access::Hit);
        assert_eq!(c.access_sector(96), Access::Hit); // same sector [96,128)
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn sector_fill_within_line() {
        let mut c = small();
        c.access_sector(0);
        assert_eq!(c.access_sector(64), Access::SectorMiss); // same 128B line
        assert_eq!(c.access_sector(64), Access::Hit);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets * line = 8 * 128 = 1024).
        c.access_sector(0);
        c.access_sector(1024);
        c.access_sector(0); // refresh line 0
        c.access_sector(2048); // evicts line at 1024 (LRU)
        assert_eq!(c.access_sector(0), Access::Hit);
        assert_eq!(c.access_sector(1024), Access::LineMiss);
    }

    #[test]
    fn working_set_behavior() {
        let mut c = small();
        // Streaming over 8 KiB (4x capacity) twice: second pass still misses.
        for pass in 0..2 {
            for addr in (0..8192u64).step_by(32) {
                c.access_sector(addr);
            }
            if pass == 0 {
                assert_eq!(c.hits(), 0);
            }
        }
        assert_eq!(c.hits(), 0, "stream larger than capacity must not hit");
        c.reset();
        // Working set fitting in capacity: second pass all hits.
        for _ in 0..2 {
            for addr in (0..2048u64).step_by(32) {
                c.access_sector(addr);
            }
        }
        assert_eq!(c.hits(), 64);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = small();
        assert_eq!(c.hit_rate(), 1.0);
        c.access_sector(0);
        assert_eq!(c.hit_rate(), 0.0);
        c.access_sector(0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "whole sectors")]
    fn bad_geometry_panics() {
        SectoredCache::new(1024, 100, 32, 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = small();
        c.access_sector(0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.access_sector(0), Access::LineMiss);
    }
}
