//! Host-side time share of the three main work classes — objective-graph
//! traversal, banded attention kernels, and dense NN matmuls — measured
//! through the observability span tree on a BA-10000 graph at 1 and 4
//! worker threads. Complements the simulated-GPU time shares of Fig. 5:
//! this is where the *host* implementation spends its time.

use mega_core::parallel::Parallelism;
use mega_core::{preprocess, MegaConfig};
use mega_exec::kernels::{banded_aggregate, banded_weight_grad};
use mega_graph::generate;
use mega_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const NODES: usize = 10_000;
const FEAT: usize = 64;
const REPS: usize = 10;

#[derive(Debug, Serialize)]
struct Row {
    threads: usize,
    traversal_ms: f64,
    band_ms: f64,
    dense_ms: f64,
    traversal_share: f64,
    band_share: f64,
    dense_share: f64,
}

/// Total milliseconds of a root span aggregate in the snapshot.
fn span_ms(snap: &mega_obs::Snapshot, path: &str) -> f64 {
    snap.spans
        .iter()
        .find(|s| s.path == path)
        .map_or(0.0, |s| s.total_ns as f64 / 1e6)
}

fn measure(threads: usize) -> Row {
    let par = Parallelism::with_threads(threads);
    let mut rng = StdRng::seed_from_u64(4242);
    let g = generate::barabasi_albert(NODES, 3, &mut rng).expect("valid BA parameters");

    mega_obs::reset();
    mega_obs::set_enabled(true);

    // Traversal (+ band layout) — the MEGA preprocessing stage.
    let schedule = {
        let _s = mega_obs::span("timeshare_traversal");
        preprocess(&g, &MegaConfig::default()).expect("valid graph")
    };

    let band = schedule.band();
    let len = band.len();
    let x: Vec<f32> = (0..len * FEAT)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let weights: Vec<f32> = (0..schedule.working_graph().edge_count())
        .map(|_| rng.gen_range(0.0f32..1.0))
        .collect();

    // Banded attention: forward aggregation + weight gradient.
    let grad: Vec<f32> = (0..len * FEAT)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    {
        let _s = mega_obs::span("timeshare_band");
        for _ in 0..REPS {
            std::hint::black_box(banded_aggregate(band, &x, FEAT, &weights, &par));
            std::hint::black_box(banded_weight_grad(
                band,
                &x,
                &grad,
                FEAT,
                weights.len(),
                &par,
            ));
        }
    }

    // Dense NN work: the path-length × FEAT feature matrix times a
    // FEAT × FEAT weight matrix (one layer's linear transform).
    let xt = Tensor::from_vec(len, FEAT, x.clone());
    let wt = Tensor::from_vec(
        FEAT,
        FEAT,
        (0..FEAT * FEAT)
            .map(|_| rng.gen_range(-0.1f32..0.1))
            .collect(),
    );
    {
        let _s = mega_obs::span("timeshare_dense");
        for _ in 0..REPS {
            std::hint::black_box(xt.matmul_with(&wt, &par));
        }
    }

    mega_obs::set_enabled(false);
    let snap = mega_obs::snapshot();
    let traversal_ms = span_ms(&snap, "timeshare_traversal");
    let band_ms = span_ms(&snap, "timeshare_band");
    let dense_ms = span_ms(&snap, "timeshare_dense");
    let total = (traversal_ms + band_ms + dense_ms).max(f64::MIN_POSITIVE);
    Row {
        threads,
        traversal_ms,
        band_ms,
        dense_ms,
        traversal_share: traversal_ms / total,
        band_share: band_ms / total,
        dense_share: dense_ms / total,
    }
}

fn main() {
    mega_obs::report::init_from_env();
    mega_obs::data!(
        "Host time share — traversal vs banded attention vs dense NN (BA-{NODES}, d={FEAT}, {REPS} reps)\n"
    );
    let mut table = mega_bench::TableWriter::new(&[
        "threads",
        "traversal(ms)",
        "band(ms)",
        "dense(ms)",
        "traversal%",
        "band%",
        "dense%",
    ]);
    let mut rows = Vec::new();
    for threads in [1usize, 4] {
        let r = measure(threads);
        table.row(&[
            r.threads.to_string(),
            mega_bench::fmt(r.traversal_ms, 2),
            mega_bench::fmt(r.band_ms, 2),
            mega_bench::fmt(r.dense_ms, 2),
            mega_bench::fmt(r.traversal_share * 100.0, 1),
            mega_bench::fmt(r.band_share * 100.0, 1),
            mega_bench::fmt(r.dense_share * 100.0, 1),
        ]);
        rows.push(r);
    }
    table.print();
    mega_obs::data!(
        "\nTraversal is a one-time preprocessing cost; the per-epoch ratio is band vs dense."
    );
    mega_bench::save_json("profile_timeshare", &rows);
}
