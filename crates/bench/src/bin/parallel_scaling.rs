//! Parallel band-engine scaling on a 10k-node synthetic graph.
//!
//! Measures the serial banded-aggregation kernel, then for each thread
//! count builds the real [`ChunkPlan`] and derives the engine's speedup two
//! ways:
//!
//! * **model** — the work-division speedup implied by the plan: per-chunk
//!   work (slot visits × feature dim, including the ±ω overlap reads) is
//!   replayed through the engine's dynamic pull schedule (workers take the
//!   next chunk as they free up), and the makespan is compared against the
//!   serial total. This is host-independent, like the GPU cost model used
//!   throughout `bench_results/`.
//! * **host** — measured wall time of the chunked kernel on this machine
//!   (only meaningful on multi-core hosts; the chunked results are
//!   bit-identical to serial either way).

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::parallel::{ChunkPlan, Parallelism};
use mega_core::{preprocess, MegaConfig};
use mega_exec::kernels::{banded_aggregate, banded_aggregate_serial};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

const NODES: usize = 10_000;
const FEAT: usize = 64;
const REPS: usize = 5;

#[derive(Serialize)]
struct Row {
    threads: usize,
    chunks: usize,
    model_speedup: f64,
    model_efficiency: f64,
    host_ms: f64,
    host_speedup: f64,
}

#[derive(Serialize)]
struct Report {
    graph: String,
    nodes: usize,
    edges: usize,
    path_len: usize,
    window: usize,
    feature_dim: usize,
    host_cores: usize,
    serial_ms: f64,
    rows: Vec<Row>,
}

/// Slot-visit work units of one chunk: the chunked kernel scans up to 2ω
/// band offsets per owned row and touches `dim` lanes per active slot.
fn chunk_work(plan: &ChunkPlan, band: &mega_core::BandMask, idx: usize) -> u64 {
    let c = plan.chunks()[idx];
    let w = plan.window();
    let mut units = 0u64;
    for r in c.start..c.end {
        for lo in r.saturating_sub(w)..r {
            units += 1; // offset scan
            if band.slot(lo, r - lo).is_some() {
                units += FEAT as u64;
            }
        }
        for k in 1..=w {
            units += 1;
            if band.slot(r, k).is_some() {
                units += FEAT as u64;
            }
        }
    }
    units
}

/// Makespan of the engine's dynamic schedule: `threads` workers repeatedly
/// pull the next chunk index, exactly like the atomic-counter pool.
fn makespan(work: &[u64], threads: usize) -> u64 {
    let mut finish = vec![0u64; threads.max(1)];
    for &w in work {
        let earliest = (0..finish.len()).min_by_key(|&i| finish[i]).unwrap();
        finish[earliest] += w;
    }
    finish.into_iter().max().unwrap_or(0)
}

fn median_ms<F: FnMut() -> Vec<f32>>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            let out = f();
            std::hint::black_box(&out);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(17);
    let g = generate::barabasi_albert(NODES, 4, &mut rng).unwrap();
    let schedule = preprocess(&g, &MegaConfig::default()).unwrap();
    let band = schedule.band();
    let len = band.len();
    let x: Vec<f32> = (0..len * FEAT)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let weights: Vec<f32> = (0..schedule.working_graph().edge_count())
        .map(|_| rng.gen_range(0.0f32..1.0))
        .collect();

    let serial_ms = median_ms(|| banded_aggregate_serial(band, &x, FEAT, &weights));
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    mega_obs::data!(
        "graph: ba-{NODES} | path {len} | window {} | dim {FEAT} | serial {:.3} ms | {host_cores} host core(s)\n",
        band.window(),
        serial_ms
    );

    let mut table = TableWriter::new(&[
        "threads",
        "chunks",
        "model speedup",
        "model eff",
        "host(ms)",
        "host speedup",
    ]);
    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let par = Parallelism::with_threads(threads);
        let plan = ChunkPlan::for_band(band, &par);
        let work: Vec<u64> = (0..plan.chunks().len())
            .map(|i| chunk_work(&plan, band, i))
            .collect();
        let span = makespan(&work, threads);
        // The serial kernel walks active slots directly (2 row updates of
        // `dim` lanes per slot, no offset scan); the chunked engine pays its
        // full scan cost, so the model charges it against serial honestly.
        let serial_units: u64 = 2 * FEAT as u64 * band.active_slots().len() as u64;
        // At one worker the engine dispatches straight to the serial kernel.
        let model_speedup = if threads <= 1 {
            1.0
        } else {
            serial_units as f64 / span.max(1) as f64
        };
        let host_ms = median_ms(|| banded_aggregate(band, &x, FEAT, &weights, &par));
        let row = Row {
            threads,
            chunks: plan.chunks().len(),
            model_speedup,
            model_efficiency: model_speedup / threads as f64,
            host_ms,
            host_speedup: serial_ms / host_ms,
        };
        table.row(&[
            fmt(threads as f64, 0),
            fmt(row.chunks as f64, 0),
            fmt(row.model_speedup, 2),
            fmt(row.model_efficiency, 2),
            fmt(row.host_ms, 3),
            fmt(row.host_speedup, 2),
        ]);
        rows.push(row);
    }
    table.print();

    save_json(
        "parallel_scaling",
        &Report {
            graph: format!("ba-{NODES}"),
            nodes: g.node_count(),
            edges: g.edge_count(),
            path_len: len,
            window: band.window(),
            feature_dim: FEAT,
            host_cores,
            serial_ms,
            rows,
        },
    );
}
