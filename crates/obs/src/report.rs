//! Leveled stdout/stderr reporting for the CLI and benchmark binaries.
//!
//! Output is split into two classes so that benchmark stdout stays
//! machine-parseable:
//!
//! * **data** — result rows, tables, JSON: always printed to stdout,
//!   regardless of level. A consumer running under `--quiet` (or
//!   `MEGA_LOG=quiet`) sees *only* data lines.
//! * **info / debug** — progress and context ("training X...", "[saved ...]"):
//!   printed to stdout only at a sufficient level.
//! * **error** — always printed to stderr.
//!
//! The level lives in a process-global atomic, set explicitly via
//! [`set_level`] (e.g. from a `--quiet` flag) or from the `MEGA_LOG`
//! environment variable via [`init_from_env`].

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity of non-data output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Data rows and errors only.
    Quiet = 0,
    /// Progress messages too (the default).
    Info = 1,
    /// Everything, including diagnostics.
    Debug = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide report level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current report level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Info,
        _ => Level::Debug,
    }
}

/// Parses a `MEGA_LOG` value: `quiet`/`0`, `info`/`1`, `debug`/`2`
/// (case-insensitive). Returns `None` for anything else.
pub fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "quiet" | "0" | "off" => Some(Level::Quiet),
        "info" | "1" => Some(Level::Info),
        "debug" | "2" => Some(Level::Debug),
        _ => None,
    }
}

/// Initializes the level from the `MEGA_LOG` environment variable, when set
/// to a recognized value; otherwise leaves the current level untouched.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("MEGA_LOG") {
        if let Some(l) = parse_level(&v) {
            set_level(l);
        }
    }
}

/// Prints a data line (always, to stdout). Prefer the [`crate::data!`] macro.
pub fn print_data(args: fmt::Arguments<'_>) {
    println!("{args}");
}

/// Prints an info line when the level allows it. Prefer [`crate::info!`].
pub fn print_info(args: fmt::Arguments<'_>) {
    if level() >= Level::Info {
        println!("{args}");
    }
}

/// Prints a debug line when the level allows it. Prefer [`crate::debug!`].
pub fn print_debug(args: fmt::Arguments<'_>) {
    if level() >= Level::Debug {
        println!("{args}");
    }
}

/// Prints an error line (always, to stderr). Prefer [`crate::error!`].
pub fn print_error(args: fmt::Arguments<'_>) {
    eprintln!("{args}");
}

/// Prints a machine-parseable result line (tables, rows, JSON): always
/// emitted to stdout regardless of the report level.
#[macro_export]
macro_rules! data {
    ($($t:tt)*) => { $crate::report::print_data(format_args!($($t)*)) };
}

/// Prints a progress/context line; suppressed at `Level::Quiet`.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::report::print_info(format_args!($($t)*)) };
}

/// Prints a diagnostic line; emitted only at `Level::Debug`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::report::print_debug(format_args!($($t)*)) };
}

/// Prints an error line to stderr, regardless of the report level.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::report::print_error(format_args!($($t)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_levels() {
        assert_eq!(parse_level("quiet"), Some(Level::Quiet));
        assert_eq!(parse_level("0"), Some(Level::Quiet));
        assert_eq!(parse_level("INFO"), Some(Level::Info));
        assert_eq!(parse_level("debug"), Some(Level::Debug));
        assert_eq!(parse_level("2"), Some(Level::Debug));
        assert_eq!(parse_level("nonsense"), None);
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Quiet < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
