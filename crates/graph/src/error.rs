//! Error type shared by all fallible graph operations.

use std::error::Error;
use std::fmt;

/// Error returned by graph construction and graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node id that is out of range.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was supplied to a structure that rejects them.
    SelfLoop {
        /// The node forming the loop.
        node: usize,
    },
    /// A duplicate edge was supplied to a structure that rejects them.
    DuplicateEdge {
        /// Source endpoint.
        src: usize,
        /// Destination endpoint.
        dst: usize,
    },
    /// The graph has no nodes, where at least one was required.
    Empty,
    /// Two structures had mismatched dimensions (e.g. a feature matrix whose
    /// row count differs from the node count).
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was found.
        found: usize,
        /// Human-readable description of the mismatched quantity.
        what: &'static str,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node id {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node} is not allowed"),
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge ({src}, {dst})")
            }
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::DimensionMismatch {
                expected,
                found,
                what,
            } => {
                write!(
                    f,
                    "dimension mismatch for {what}: expected {expected}, found {found}"
                )
            }
            GraphError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 7,
            node_count: 4,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('4'));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            GraphError::SelfLoop { node: 1 },
            GraphError::SelfLoop { node: 1 }
        );
        assert_ne!(
            GraphError::SelfLoop { node: 1 },
            GraphError::SelfLoop { node: 2 }
        );
    }
}
