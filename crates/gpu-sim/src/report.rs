//! nvprof-style profile reports.

use crate::device::DeviceConfig;
use crate::kernel::{KernelKind, KernelStats};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One row of the per-kernel table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRow {
    /// Kernel kind.
    pub kind: KernelKind,
    /// Launches.
    pub invocations: u64,
    /// Cycles attributed to this kernel.
    pub cycles: u64,
    /// Share of total time in `[0, 1]`.
    pub time_share: f64,
    /// SM efficiency in `[0, 1]`.
    pub sm_efficiency: f64,
    /// Memory-stall share of cycles in `[0, 1]`.
    pub stall_pct: f64,
    /// Global-memory transactions (32-byte sectors).
    pub load_transactions: u64,
    /// Transactions served by L2.
    pub l2_hits: u64,
    /// Transactions served by DRAM.
    pub l2_misses: u64,
    /// Mean workload-balance factor.
    pub balance: f64,
}

/// A complete profile snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileReport {
    device: DeviceConfig,
    rows: Vec<KernelRow>,
    total_cycles: u64,
}

impl ProfileReport {
    pub(crate) fn new(
        device: DeviceConfig,
        stats: BTreeMap<KernelKind, KernelStats>,
        total_cycles: u64,
    ) -> Self {
        let rows = stats
            .iter()
            .map(|(&kind, s)| KernelRow {
                kind,
                invocations: s.invocations,
                cycles: s.cycles,
                time_share: if total_cycles == 0 {
                    0.0
                } else {
                    s.cycles as f64 / total_cycles as f64
                },
                sm_efficiency: s.sm_efficiency(),
                stall_pct: s.stall_pct(),
                load_transactions: s.load_transactions,
                l2_hits: s.l2_hits,
                l2_misses: s.l2_misses,
                balance: s.mean_balance(),
            })
            .collect();
        ProfileReport {
            device,
            rows,
            total_cycles,
        }
    }

    /// All kernel rows, ordered by kind.
    pub fn kernels(&self) -> &[KernelRow] {
        &self.rows
    }

    /// The row for one kernel kind, if it ran.
    pub fn kernel(&self, kind: KernelKind) -> Option<&KernelRow> {
        self.rows.iter().find(|r| r.kind == kind)
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.device.cycles_to_seconds(self.total_cycles)
    }

    /// The paper's aggregate metric (§IV-B2): the invocation-weighted mean of
    /// a per-kernel metric, `Σ_k metric_k · n_k / Σ_k n_k`.
    pub fn weighted_metric<F: Fn(&KernelRow) -> f64>(&self, metric: F) -> f64 {
        let total_inv: u64 = self.rows.iter().map(|r| r.invocations).sum();
        if total_inv == 0 {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| metric(r) * r.invocations as f64)
            .sum::<f64>()
            / total_inv as f64
    }

    /// Invocation-weighted SM efficiency.
    pub fn aggregate_sm_efficiency(&self) -> f64 {
        self.weighted_metric(|r| r.sm_efficiency)
    }

    /// Invocation-weighted memory-stall percentage.
    pub fn aggregate_stall_pct(&self) -> f64 {
        self.weighted_metric(|r| r.stall_pct)
    }

    /// Share of time spent in `sgemm` (the paper uses this as the "useful
    /// dense work" share in Figs. 5 and 10).
    pub fn sgemm_time_share(&self) -> f64 {
        self.kernel(KernelKind::Sgemm).map_or(0.0, |r| r.time_share)
    }

    /// Share of time spent in graph-operation kernels.
    pub fn graph_op_time_share(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.kind.is_graph_op())
            .map(|r| r.time_share)
            .sum()
    }

    /// Bridges this report into the [`mega_obs`] registry under `prefix`
    /// (e.g. `"gpusim.mega"`), so simulated-GPU kernel statistics land in
    /// the same metrics snapshot as the host-side spans and counters.
    ///
    /// Per kernel: integer statistics (`invocations`, `cycles`,
    /// `load_transactions`, `l2_hits`, `l2_misses`) become counters under
    /// `{prefix}.{kernel}.*`; ratio statistics (`time_share`,
    /// `sm_efficiency`, `stall_pct`, `balance`) become gauges. The report
    /// totals land as `{prefix}.total_cycles` and the paper's aggregate
    /// gauges. All values are simulator outputs — deterministic, so they
    /// appear in deterministic snapshots too. No-op while instrumentation
    /// is disabled.
    pub fn export_obs(&self, prefix: &str) {
        if !mega_obs::enabled() {
            return;
        }
        for r in &self.rows {
            let key = |stat: &str| format!("{prefix}.{}.{stat}", r.kind.label());
            mega_obs::counter_add(&key("invocations"), r.invocations);
            mega_obs::counter_add(&key("cycles"), r.cycles);
            mega_obs::counter_add(&key("load_transactions"), r.load_transactions);
            mega_obs::counter_add(&key("l2_hits"), r.l2_hits);
            mega_obs::counter_add(&key("l2_misses"), r.l2_misses);
            mega_obs::gauge_set(&key("time_share"), r.time_share);
            mega_obs::gauge_set(&key("sm_efficiency"), r.sm_efficiency);
            mega_obs::gauge_set(&key("stall_pct"), r.stall_pct);
            mega_obs::gauge_set(&key("balance"), r.balance);
        }
        mega_obs::counter_add(&format!("{prefix}.total_cycles"), self.total_cycles);
        mega_obs::gauge_set(
            &format!("{prefix}.aggregate_sm_efficiency"),
            self.aggregate_sm_efficiency(),
        );
        mega_obs::gauge_set(
            &format!("{prefix}.aggregate_stall_pct"),
            self.aggregate_stall_pct(),
        );
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<13} {:>6} {:>8} {:>7} {:>7} {:>12} {:>9}",
            "kernel", "calls", "time%", "sm_eff", "stall%", "ld_txns", "l2_hit%"
        )?;
        for r in &self.rows {
            let hit = if r.load_transactions == 0 {
                1.0
            } else {
                r.l2_hits as f64 / r.load_transactions as f64
            };
            writeln!(
                f,
                "{:<13} {:>6} {:>7.1}% {:>7.2} {:>6.1}% {:>12} {:>8.1}%",
                r.kind.label(),
                r.invocations,
                r.time_share * 100.0,
                r.sm_efficiency,
                r.stall_pct * 100.0,
                r.load_transactions,
                hit * 100.0,
            )?;
        }
        write!(
            f,
            "total: {:.3} ms | aggregate sm_eff {:.2} | aggregate stall {:.1}%",
            self.total_seconds() * 1e3,
            self.aggregate_sm_efficiency(),
            self.aggregate_stall_pct() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::Profiler;

    fn sample_report() -> ProfileReport {
        let mut p = Profiler::new(DeviceConfig::gtx_1080());
        let a = p.alloc(256 * 256 * 4);
        let b = p.alloc(256 * 256 * 4);
        let c = p.alloc(256 * 256 * 4);
        p.launch_sgemm(a, b, c, 256, 256, 256);
        let idx: Vec<usize> = (0..5000).map(|i| (i * 7919) % 5000).collect();
        let src = p.alloc(5000 * 32 * 4);
        p.launch_gather(src, &idx, 32, 5000);
        p.report()
    }

    #[test]
    fn time_shares_sum_to_one() {
        let r = sample_report();
        let total: f64 = r.kernels().iter().map(|k| k.time_share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_metric_matches_paper_formula() {
        let r = sample_report();
        let manual: f64 = {
            let inv: u64 = r.kernels().iter().map(|k| k.invocations).sum();
            r.kernels()
                .iter()
                .map(|k| k.sm_efficiency * k.invocations as f64)
                .sum::<f64>()
                / inv as f64
        };
        assert!((r.aggregate_sm_efficiency() - manual).abs() < 1e-12);
    }

    #[test]
    fn kernel_lookup() {
        let r = sample_report();
        assert!(r.kernel(KernelKind::Sgemm).is_some());
        assert!(r.kernel(KernelKind::CubSort).is_none());
        assert!(r.sgemm_time_share() > 0.0);
        assert!(r.graph_op_time_share() > 0.0);
    }

    #[test]
    fn display_renders_rows() {
        let r = sample_report();
        let text = r.to_string();
        assert!(text.contains("sgemm"));
        assert!(text.contains("dgl-gather"));
        assert!(text.contains("aggregate"));
    }

    #[test]
    fn export_obs_bridges_kernel_stats() {
        let r = sample_report();
        // No-op while disabled.
        r.export_obs("gpusim.test");
        // Enabled: counters and gauges land under the prefix.
        mega_obs::reset();
        mega_obs::set_enabled(true);
        r.export_obs("gpusim.test");
        mega_obs::set_enabled(false);
        let snap = mega_obs::snapshot();
        let counter = |k: &str| snap.counters.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        let gauge = |k: &str| snap.gauges.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        let sgemm = r.kernel(KernelKind::Sgemm).unwrap();
        assert_eq!(
            counter("gpusim.test.sgemm.invocations"),
            Some(sgemm.invocations)
        );
        assert_eq!(counter("gpusim.test.sgemm.cycles"), Some(sgemm.cycles));
        assert_eq!(counter("gpusim.test.total_cycles"), Some(r.total_cycles()));
        assert_eq!(
            gauge("gpusim.test.sgemm.sm_efficiency"),
            Some(sgemm.sm_efficiency)
        );
        assert_eq!(
            gauge("gpusim.test.aggregate_stall_pct"),
            Some(r.aggregate_stall_pct())
        );
        assert!(counter("gpusim.test.dgl-gather.load_transactions").is_some());
        mega_obs::reset();
    }

    #[test]
    fn empty_report_is_well_defined() {
        let p = Profiler::new(DeviceConfig::gtx_1080());
        let r = p.report();
        assert_eq!(r.aggregate_sm_efficiency(), 0.0);
        assert_eq!(r.sgemm_time_share(), 0.0);
        assert_eq!(r.total_cycles(), 0);
    }
}
