//! Molecular property regression: train GatedGCN on the ZINC-like dataset
//! under both engines and compare quality and simulated GPU time.
//!
//! Run with: `cargo run --release --example molecular_regression`
//!
//! This is the workload of the paper's Fig. 12 at example scale: the MEGA
//! engine computes the same math as the DGL-style baseline (identical final
//! MAE up to float noise) but its simulated epoch is substantially cheaper.

use mega::datasets::{zinc, DatasetSpec};
use mega::gnn::{EngineChoice, GnnConfig, ModelKind, Trainer};

fn main() {
    let ds = zinc(&DatasetSpec {
        train: 256,
        val: 64,
        test: 64,
        seed: 42,
    });
    println!(
        "dataset: {} ({} train / {} val graphs)",
        ds.name,
        ds.train.len(),
        ds.val.len()
    );

    let cfg = GnnConfig::new(ModelKind::GatedGcn, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(32)
        .with_layers(2)
        .with_seed(3);

    for engine in [EngineChoice::Baseline, EngineChoice::Mega] {
        let trainer = Trainer::new(engine)
            .with_epochs(8)
            .with_batch_size(32)
            .with_lr(5e-3);
        let hist = trainer.run(&ds, cfg.clone());
        println!("\n== engine: {} ==", hist.engine);
        println!(
            "simulated GPU epoch: {:.3} ms",
            hist.epoch_sim_seconds * 1e3
        );
        if hist.preprocess_seconds > 0.0 {
            println!(
                "one-time CPU preprocessing: {:.3} s",
                hist.preprocess_seconds
            );
        }
        println!("epoch  train-loss  val-loss  val-MAE  sim-clock(s)");
        for r in &hist.records {
            println!(
                "{:>5}  {:>10.4}  {:>8.4}  {:>7.4}  {:>11.4}",
                r.epoch, r.train_loss, r.val_loss, r.val_metric, r.sim_seconds
            );
        }
    }
    println!("\nBoth engines converge to the same quality; the Mega column of simulated");
    println!("seconds advances ~1.3-1.8x slower per epoch (see fig10_runtime for the sweep).");
}
