//! Shared reference kernels — the single home of every hand-rolled loop.
//!
//! Each function here is the *reference* implementation the rest of the
//! workspace dispatches to: plain scalar loops with a fixed, documented
//! accumulation order and no floating-point reassociation. The dense kernels
//! were lifted from `mega-tensor` (the former `Tensor::matmul` /
//! `Tensor::matmul_with` inner loops) and the banded kernels from
//! `mega_core::parallel`; their bit patterns are contractual — backends that
//! override a kernel must preserve the per-output-element accumulation order
//! (see `BlockedBackend`), and the parallel variants replay the serial order
//! per owned output row so results are bit-identical for every thread count.
//!
//! Output conventions: `out` must have exactly the output length; kernels
//! that accumulate (`matmul*`, `scatter_add_rows`, the banded aggregates)
//! require `out` to be zeroed on entry, all others overwrite every element.

use crate::partition;
use crate::Unary;
use mega_core::band::BandMask;
use mega_core::parallel::{join_workers, ordered_map, Chunk, ChunkPlan, Parallelism};

/// Below this many multiply-adds (`n·k·m`) the parallel matmul falls back to
/// the serial kernel: spawn cost dominates, and the bits are identical either
/// way, so the cutoff is purely a performance choice. Spawning a scoped
/// worker costs tens of microseconds; at ~1 multiply-add per cycle a thread
/// only pays for itself once it has ≳10⁵ of them, hence `1 << 17` (a 64×64
/// product at depth 32 stays serial, a 128³ one fans out).
pub const PAR_MATMUL_MIN_FLOPS: usize = 1 << 17;

/// Shadow-memory race detection for the chunked banded kernels.
///
/// Compiled in only under the `race-check` feature. A [`race::WriterMap`]
/// shadows every output location (band rows for the aggregation, edge slots
/// for the weight gradient) with the id of the chunk that claimed it; a
/// second claim by a *different* chunk panics with both writers named. The
/// parallel kernels also assert every row they read lies inside the claiming
/// chunk's ±ω read window. Running the serial/parallel equivalence harness
/// under this feature turns the bit-identity *sample* into a checked
/// row-ownership proof: no overlap panic ⇒ no two chunks ever wrote the
/// same location.
#[cfg(feature = "race-check")]
pub mod race {
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Sentinel writer id for "not yet claimed".
    const UNCLAIMED: u32 = u32::MAX;

    /// One shadow cell per output location, holding the claiming chunk id.
    #[derive(Debug)]
    pub struct WriterMap {
        what: &'static str,
        owners: Vec<AtomicU32>,
    }

    impl WriterMap {
        /// A map of `len` unclaimed locations, labelled `what` in panics.
        pub fn new(what: &'static str, len: usize) -> Self {
            WriterMap {
                what,
                owners: (0..len).map(|_| AtomicU32::new(UNCLAIMED)).collect(),
            }
        }

        /// Claims location `idx` for `writer`. Re-claims by the same writer
        /// are allowed (a chunk may accumulate into its own rows); a claim
        /// by a different writer is a cross-chunk write race and panics.
        // mega-lint: allow(panic-surface, reason = "race-check probe: panicking on a cross-chunk write IS the contract")
        pub fn claim(&self, idx: usize, writer: u32) {
            assert!(writer != UNCLAIMED, "writer id {writer} is the sentinel");
            match self.owners[idx].compare_exchange(
                UNCLAIMED,
                writer,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {}
                Err(prev) if prev == writer => {}
                Err(prev) => panic!(
                    "race-check: {} {idx} written by chunk {prev} and chunk {writer} \
                     — owned ranges overlap",
                    self.what
                ),
            }
        }

        /// Claims the half-open range `[lo, hi)` for `writer`.
        pub fn claim_range(&self, lo: usize, hi: usize, writer: u32) {
            for idx in lo..hi {
                self.claim(idx, writer);
            }
        }

        /// Number of locations claimed so far.
        // mega-lint: allow(span-coverage, reason = "race-check introspection; compiled out of measured builds")
        pub fn claimed(&self) -> usize {
            self.owners
                .iter()
                .filter(|o| o.load(Ordering::SeqCst) != UNCLAIMED)
                .count()
        }

        /// Panics unless every location was claimed by exactly one writer —
        /// the completeness half of the partition proof (the overlap half is
        /// enforced eagerly by [`WriterMap::claim`]).
        // mega-lint: allow(panic-surface, reason = "race-check probe: panicking on an ownership gap IS the contract")
        pub fn assert_complete(&self) {
            for (idx, o) in self.owners.iter().enumerate() {
                assert!(
                    o.load(Ordering::SeqCst) != UNCLAIMED,
                    "race-check: {} {idx} was never claimed — owned ranges have a gap",
                    self.what
                );
            }
        }
    }
}

/// Read-window check for the chunked kernels: under `race-check`, asserts
/// the row being read lies inside the chunk's ±ω read extent; otherwise
/// compiles to nothing.
#[cfg(feature = "race-check")]
#[inline]
// mega-lint: allow(panic-surface, reason = "race-check probe: panicking on an out-of-window read IS the contract")
fn check_read(chunk: &Chunk, row: usize) {
    assert!(
        row >= chunk.read_lo && row < chunk.read_hi,
        "race-check: chunk owning [{}, {}) read row {row} outside its ±ω window [{}, {})",
        chunk.start,
        chunk.end,
        chunk.read_lo,
        chunk.read_hi
    );
}

#[cfg(not(feature = "race-check"))]
#[inline(always)]
fn check_read(_chunk: &Chunk, _row: usize) {}

/// One output row of a matrix product: `out_row += a_row · b`, folding the
/// `k` contributions in ascending order. Rows that came out of embedding
/// lookups are mostly zero, hence the skip.
#[inline]
pub fn matmul_row(a_row: &[f32], b: &[f32], m: usize, out_row: &mut [f32]) {
    for (kk, &a) in a_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = &b[kk * m..(kk + 1) * m];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += a * bv;
        }
    }
}

/// Serial matrix product `out += a · b` with `a` of shape `n × k` and `b` of
/// shape `k × m`; `out` must be a zeroed `n × m` buffer.
///
/// # Panics
///
/// Panics when any slice length disagrees with the shapes.
pub fn matmul(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, out: &mut [f32]) {
    assert_eq!(a.len(), n * k, "a must be {n}x{k}");
    assert_eq!(b.len(), k * m, "b must be {k}x{m}");
    assert_eq!(out.len(), n * m, "out must be {n}x{m}");
    for i in 0..n {
        matmul_row(&a[i * k..(i + 1) * k], b, m, &mut out[i * m..(i + 1) * m]);
    }
}

/// Matrix product under a thread budget, bit-identical to [`matmul`] for
/// every thread count: output rows are split into contiguous per-worker
/// ranges and each row is produced by the exact serial row kernel, written
/// directly into its disjoint slice of `out` (no partial buffers, no
/// copy-back).
///
/// # Panics
///
/// Panics when any slice length disagrees with the shapes.
pub fn matmul_par(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    par: &Parallelism,
    out: &mut [f32],
) {
    let threads = par.effective_threads().min(n.max(1));
    if threads <= 1 || n * k * m < PAR_MATMUL_MIN_FLOPS {
        return matmul(a, b, n, k, m, out);
    }
    let ranges = partition::row_ranges(n, threads, 1);
    matmul_par_with_ranges(a, b, n, k, m, &ranges, out);
}

/// [`matmul_par`] over an explicit row partition — the race-checkable entry
/// point, mirroring [`banded_aggregate_with_plan`]: the `race-check`
/// harness drives it with overlapping and gappy partitions to prove the
/// GEMM shadow writer map fires, while [`matmul_par`] always passes the
/// valid partition [`partition::row_ranges`] computes.
#[doc(hidden)]
pub fn matmul_par_with_ranges(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    ranges: &[(usize, usize)],
    out: &mut [f32],
) {
    assert_eq!(a.len(), n * k, "a must be {n}x{k}");
    assert_eq!(b.len(), k * m, "b must be {k}x{m}");
    partition::par_rows(out, n, m, ranges, |lo, hi, rows| {
        for r in lo..hi {
            let out_row = &mut rows[(r - lo) * m..(r - lo + 1) * m];
            matmul_row(&a[r * k..(r + 1) * k], b, m, out_row);
        }
    });
}

/// `out = aᵀ` for a row-major `rows × cols` input.
pub fn transpose(a: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    assert_eq!(a.len(), rows * cols, "a must be {rows}x{cols}");
    assert_eq!(out.len(), rows * cols, "out must be {cols}x{rows}");
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = a[r * cols + c];
        }
    }
}

/// Elementwise `out = a + b`.
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// Elementwise `out = a - b`.
pub fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Elementwise (Hadamard) `out = a ⊙ b`.
pub fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// Elementwise `out = k · a`.
pub fn scale(a: &[f32], k: f32, out: &mut [f32]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x * k;
    }
}

/// Fused scale-then-add: `out = k · a + b`, elementwise.
///
/// Same arithmetic as [`scale`] into a temporary followed by [`add`] — each
/// element is one multiply then one separately-rounded add (Rust never
/// contracts `a * k + b` into an FMA), so the fusion saves a full memory
/// sweep and a buffer, never a bit.
pub fn axpy(a: &[f32], k: f32, b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * k + y;
    }
}

/// Adds the `1 × m` bias row to every row of the `n × m` input.
pub fn add_bias_rows(x: &[f32], bias: &[f32], n: usize, m: usize, out: &mut [f32]) {
    assert_eq!(bias.len(), m, "bias must be 1x{m}");
    for r in 0..n {
        for c in 0..m {
            out[r * m + c] = x[r * m + c] + bias[c];
        }
    }
}

/// Fused bias + ReLU applied in place: `out[r, c] = max(out[r, c] + bias[c], 0)`.
///
/// Same arithmetic as `add_bias_rows` followed by a ReLU pass — the fusion
/// saves one full memory sweep, never a bit of precision.
pub fn bias_relu_inplace(out: &mut [f32], bias: &[f32], n: usize, m: usize) {
    assert_eq!(bias.len(), m, "bias must be 1x{m}");
    for r in 0..n {
        let row = &mut out[r * m..(r + 1) * m];
        for (o, &b) in row.iter_mut().zip(bias) {
            *o = (*o + b).max(0.0);
        }
    }
}

/// Fused bias + LeakyReLU applied in place:
/// `out[r, c] = f(out[r, c] + bias[c])` with `f(v) = v > 0 ? v : slope·v`.
///
/// The LeakyReLU sibling of [`bias_relu_inplace`]: identical arithmetic to
/// `add_bias_rows` followed by `unary(LeakyRelu)`, one memory sweep.
pub fn bias_leaky_relu_inplace(out: &mut [f32], bias: &[f32], slope: f32, n: usize, m: usize) {
    assert_eq!(bias.len(), m, "bias must be 1x{m}");
    for r in 0..n {
        let row = &mut out[r * m..(r + 1) * m];
        for (o, &b) in row.iter_mut().zip(bias) {
            let v = *o + b;
            *o = if v > 0.0 { v } else { slope * v };
        }
    }
}

/// Elementwise unary activation applied in place — per element exactly
/// [`unary`]'s arithmetic, reusing the buffer instead of reading a second
/// stream. Composite kernels (`layer_norm` + activation) use it for their
/// default fused epilogue.
pub fn unary_inplace(op: Unary, out: &mut [f32]) {
    match op {
        Unary::Relu => {
            for o in out.iter_mut() {
                *o = o.max(0.0);
            }
        }
        Unary::LeakyRelu(slope) => {
            for o in out.iter_mut() {
                let v = *o;
                *o = if v > 0.0 { v } else { slope * v };
            }
        }
        Unary::Sigmoid => {
            for o in out.iter_mut() {
                *o = 1.0 / (1.0 + (-*o).exp());
            }
        }
        Unary::Tanh => {
            for o in out.iter_mut() {
                *o = o.tanh();
            }
        }
    }
}

/// Elementwise unary activation.
pub fn unary(op: Unary, x: &[f32], out: &mut [f32]) {
    match op {
        Unary::Relu => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = v.max(0.0);
            }
        }
        Unary::LeakyRelu(slope) => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = if v > 0.0 { v } else { slope * v };
            }
        }
        Unary::Sigmoid => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = 1.0 / (1.0 + (-v).exp());
            }
        }
        Unary::Tanh => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = v.tanh();
            }
        }
    }
}

/// Row gather: `out[i] = src[index[i]]` over `cols`-wide rows.
///
/// # Panics
///
/// Panics if any index is `>= src_rows`.
pub fn gather_rows(src: &[f32], src_rows: usize, cols: usize, index: &[usize], out: &mut [f32]) {
    assert_eq!(src.len(), src_rows * cols, "src must be {src_rows}x{cols}");
    assert_eq!(
        out.len(),
        index.len() * cols,
        "out must be {}x{cols}",
        index.len()
    );
    for (i, &s) in index.iter().enumerate() {
        assert!(s < src_rows, "gather index {s} out of range");
        out[i * cols..(i + 1) * cols].copy_from_slice(&src[s * cols..(s + 1) * cols]);
    }
}

/// Row scatter-add: `out[index[i]] += src[i]` with `out` a zeroed (or
/// accumulating) `out_rows × cols` buffer, folding rows in input order.
///
/// # Panics
///
/// Panics if any index is `>= out_rows` or `index.len()` disagrees with
/// `src`.
pub fn scatter_add_rows(
    src: &[f32],
    index: &[usize],
    cols: usize,
    out_rows: usize,
    out: &mut [f32],
) {
    assert_eq!(
        src.len(),
        index.len() * cols,
        "index length must equal row count"
    );
    assert_eq!(out.len(), out_rows * cols, "out must be {out_rows}x{cols}");
    for (i, &dst) in index.iter().enumerate() {
        assert!(dst < out_rows, "scatter index {dst} out of range");
        let s = &src[i * cols..(i + 1) * cols];
        let d = &mut out[dst * cols..(dst + 1) * cols];
        for (o, &v) in d.iter_mut().zip(s) {
            *o += v;
        }
    }
}

/// Scales row `r` of the `rows × cols` input by `factors[r]`.
///
/// # Panics
///
/// Panics if `factors.len() != rows`.
pub fn scale_rows(x: &[f32], factors: &[f32], cols: usize, out: &mut [f32]) {
    assert_eq!(x.len(), factors.len() * cols, "one factor per row required");
    for (r, &k) in factors.iter().enumerate() {
        for c in 0..cols {
            out[r * cols + c] = x[r * cols + c] * k;
        }
    }
}

/// Column-wise softmax within row segments: rows sharing `segments[i]` form
/// one softmax group per column. Three passes (max, exp+sum, divide) in row
/// order, exactly as the original tape op.
///
/// # Panics
///
/// Panics if `segments.len()` disagrees with `rows` or an id is out of range.
pub fn segment_softmax(
    x: &[f32],
    rows: usize,
    cols: usize,
    segments: &[usize],
    n_segments: usize,
    out: &mut [f32],
) {
    assert_eq!(segments.len(), rows, "one segment id per row required");
    assert_eq!(x.len(), rows * cols, "x must be {rows}x{cols}");
    assert_eq!(out.len(), rows * cols, "out must be {rows}x{cols}");
    let mut maxes = vec![f32::NEG_INFINITY; n_segments * cols];
    for i in 0..rows {
        let s = segments[i];
        assert!(s < n_segments, "segment id {s} out of range");
        for j in 0..cols {
            let m = &mut maxes[s * cols + j];
            *m = m.max(x[i * cols + j]);
        }
    }
    let mut sums = vec![0.0f32; n_segments * cols];
    for i in 0..rows {
        let s = segments[i];
        for j in 0..cols {
            let e = (x[i * cols + j] - maxes[s * cols + j]).exp();
            out[i * cols + j] = e;
            sums[s * cols + j] += e;
        }
    }
    for i in 0..rows {
        let s = segments[i];
        for j in 0..cols {
            let denom = sums[s * cols + j].max(f32::MIN_POSITIVE);
            out[i * cols + j] /= denom;
        }
    }
}

/// Row-wise layer normalization with affine `gamma`, `beta` (each `1 × cols`).
pub fn layer_norm(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    rows: usize,
    cols: usize,
    eps: f32,
    out: &mut [f32],
) {
    assert_eq!(gamma.len(), cols, "gamma shape");
    assert_eq!(beta.len(), cols, "beta shape");
    assert_eq!(x.len(), rows * cols, "x must be {rows}x{cols}");
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        let mean = row.iter().sum::<f32>() / row.len() as f32;
        let var = row.iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / row.len() as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (cix, &xv) in row.iter().enumerate() {
            let xhat = (xv - mean) * inv;
            out[r * cols + cix] = gamma[cix] * xhat + beta[cix];
        }
    }
}

/// Column-wise batch normalization (training-mode statistics over rows) with
/// affine `gamma`, `beta` (each `1 × cols`).
pub fn batch_norm(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    rows: usize,
    cols: usize,
    eps: f32,
    out: &mut [f32],
) {
    assert_eq!(gamma.len(), cols, "gamma shape");
    assert_eq!(beta.len(), cols, "beta shape");
    assert_eq!(x.len(), rows * cols, "x must be {rows}x{cols}");
    let rn = rows.max(1) as f32;
    for j in 0..cols {
        let mut mean = 0.0f32;
        for i in 0..rows {
            mean += x[i * cols + j];
        }
        mean /= rn;
        let mut var = 0.0f32;
        for i in 0..rows {
            var += (x[i * cols + j] - mean).powi(2);
        }
        var /= rn;
        let inv = 1.0 / (var + eps).sqrt();
        for i in 0..rows {
            let xhat = (x[i * cols + j] - mean) * inv;
            out[i * cols + j] = gamma[j] * xhat + beta[j];
        }
    }
}

/// One active slot's weight-gradient contribution, folding the `lo`/`hi`
/// products interleaved per feature — the shared inner loop of the serial,
/// chunk-parallel, and segment-local weight-grad kernels (they must agree
/// bit-for-bit, so there is exactly one copy of it). Takes the four rows as
/// slices so callers can offset into segment-local slabs.
#[inline]
fn slot_weight_grad(
    band_dim: usize,
    x_lo: &[f32],
    x_hi: &[f32],
    d_lo: &[f32],
    d_hi: &[f32],
) -> f32 {
    let mut acc = 0.0f32;
    for d in 0..band_dim {
        acc += d_lo[d] * x_hi[d];
        acc += d_hi[d] * x_lo[d];
    }
    acc
}

/// Row `r` of a full-length `L × dim` slab, as a `dim`-element slice.
#[inline]
fn row(buf: &[f32], r: usize, dim: usize) -> &[f32] {
    &buf[r * dim..(r + 1) * dim]
}

/// Serial reference kernel: masked banded aggregation.
///
/// `x` is row-major `L × dim` (one row per path position), `weights` has one
/// entry per working-graph edge. Every active slot `(lo, hi, e)` contributes
/// `w[e] · x[hi]` to row `lo` and `w[e] · x[lo]` to row `hi` — the symmetric
/// weighted 1-hop neighbor sum of banded attention, applied in ascending
/// `(lo, offset)` slot order.
///
/// # Panics
///
/// Panics if `x.len() != band.len() * dim`.
pub fn banded_aggregate_serial(
    band: &BandMask,
    x: &[f32],
    dim: usize,
    weights: &[f32],
) -> Vec<f32> {
    assert_eq!(x.len(), band.len() * dim, "x must be L x dim");
    let mut out = vec![0.0f32; x.len()];
    for s in band.active_slots() {
        let w = weights[s.edge];
        for d in 0..dim {
            out[s.lo * dim + d] += w * x[s.hi * dim + d];
            out[s.hi * dim + d] += w * x[s.lo * dim + d];
        }
    }
    out
}

/// Contributions to owned rows of `chunk`, folded in serial slot order.
///
/// For each owned row `r`, the serial kernel's contributions arrive in
/// ascending slot order: first slots `(lo, r)` with `lo` ascending in
/// `[r - ω, r)` (row `r` is the `hi` side), then slots `(r, r + k)` with `k`
/// ascending (row `r` is the `lo` side). Replaying exactly that order makes
/// each owned row bit-identical to the serial result.
fn aggregate_chunk_into(
    band: &BandMask,
    chunk: &Chunk,
    x: &[f32],
    dim: usize,
    weights: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), chunk.owned_len() * dim);
    banded_aggregate_segment(
        band,
        chunk,
        chunk.start,
        chunk.end,
        x,
        0,
        dim,
        weights,
        out,
        chunk.start,
    );
}

/// Segment-local banded aggregation: rows `[row_lo, row_hi)` of `chunk`'s
/// owned range, folded in exactly `aggregate_chunk_into`'s serial slot
/// order, but reading `x` and writing `out` as *slabs* — `x` covers global
/// path rows `[x_base, x_base + x.len()/dim)` and `out` covers
/// `[out_base, out_base + out.len()/dim)`. This is the distributed
/// executor's entry point: each worker holds only its segment's ±ω read
/// extent, so every index must be translated by the slab base.
///
/// Bit-identical to the same rows of [`banded_aggregate_serial`] for any
/// slab placement, because the per-row fold order never changes — only
/// where the rows live in memory.
///
/// # Panics
///
/// Panics if the requested rows fall outside `chunk`'s owned range or the
/// slabs do not cover the rows the fold touches.
#[allow(clippy::too_many_arguments)]
pub fn banded_aggregate_segment(
    band: &BandMask,
    chunk: &Chunk,
    row_lo: usize,
    row_hi: usize,
    x: &[f32],
    x_base: usize,
    dim: usize,
    weights: &[f32],
    out: &mut [f32],
    out_base: usize,
) {
    assert!(
        chunk.start <= row_lo && row_hi <= chunk.end,
        "rows [{row_lo}, {row_hi}) outside owned range [{}, {})",
        chunk.start,
        chunk.end
    );
    assert!(
        x_base <= chunk.read_lo && chunk.read_hi <= x_base + x.len() / dim.max(1),
        "x slab [{x_base}, {}) does not cover read extent [{}, {})",
        x_base + x.len() / dim.max(1),
        chunk.read_lo,
        chunk.read_hi
    );
    assert!(
        out_base <= row_lo && (row_hi - out_base) * dim <= out.len(),
        "out slab does not cover rows [{row_lo}, {row_hi})"
    );
    let w_max = band.window();
    for r in row_lo..row_hi {
        let row = &mut out[(r - out_base) * dim..(r - out_base + 1) * dim];
        for lo in r.saturating_sub(w_max)..r {
            if let Some(e) = band.slot(lo, r - lo) {
                check_read(chunk, lo);
                let w = weights[e];
                for d in 0..dim {
                    row[d] += w * x[(lo - x_base) * dim + d];
                }
            }
        }
        for k in 1..=w_max {
            if let Some(e) = band.slot(r, k) {
                check_read(chunk, r + k);
                let w = weights[e];
                for d in 0..dim {
                    row[d] += w * x[(r + k - x_base) * dim + d];
                }
            }
        }
    }
}

/// Segment-local weight gradient: the `(edge, value)` pairs for every active
/// slot whose `lo` row is owned by `chunk`, in ascending `(lo, offset)` slot
/// order, computed by the shared `slot_weight_grad` fold. `x` and `d_out`
/// are slabs covering global rows `[x_base, …)` and `[d_base, …)`; both
/// must span `chunk`'s ±ω read extent, since a slot reaches up to ω rows
/// past the owned range. Each edge claims exactly one slot, so the returned
/// pairs are disjoint across segments and a fixed-order merge reproduces
/// [`banded_weight_grad_serial`] bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn banded_weight_grad_segment(
    band: &BandMask,
    chunk: &Chunk,
    x: &[f32],
    x_base: usize,
    d_out: &[f32],
    d_base: usize,
    dim: usize,
) -> Vec<(usize, f32)> {
    let slots = band.active_slots();
    let begin = slots.partition_point(|s| s.lo < chunk.start);
    let end = slots.partition_point(|s| s.lo < chunk.end);
    let mut local: Vec<(usize, f32)> = Vec::with_capacity(end - begin);
    for s in &slots[begin..end] {
        check_read(chunk, s.lo);
        check_read(chunk, s.hi);
        local.push((
            s.edge,
            slot_weight_grad(
                dim,
                row(x, s.lo - x_base, dim),
                row(x, s.hi - x_base, dim),
                row(d_out, s.lo - d_base, dim),
                row(d_out, s.hi - d_base, dim),
            ),
        ));
    }
    local
}

/// Parallel chunked banded aggregation — bit-identical to
/// [`banded_aggregate_serial`] for every thread count and chunk size.
///
/// The reduction concatenates owned row ranges in chunk order; no partial is
/// ever summed across chunks.
///
/// # Panics
///
/// Panics if `x.len() != band.len() * dim`.
pub fn banded_aggregate(
    band: &BandMask,
    x: &[f32],
    dim: usize,
    weights: &[f32],
    par: &Parallelism,
) -> Vec<f32> {
    assert_eq!(x.len(), band.len() * dim, "x must be L x dim");
    let _span = mega_obs::span("band_aggregate");
    mega_obs::counter_add("core.band.aggregate_calls", 1);
    // One worker cannot benefit from the per-row scan layout; the serial
    // slot-walk produces the identical bits at a fraction of the cost.
    if par.effective_threads() <= 1 {
        return banded_aggregate_serial(band, x, dim, weights);
    }
    let plan = ChunkPlan::for_band_cached(band, par);
    banded_aggregate_with_plan(band, x, dim, weights, &plan, par.effective_threads())
}

/// [`banded_aggregate`] over an explicit, caller-supplied [`ChunkPlan`].
///
/// This is the entry point the `race-check` harness drives with
/// deliberately corrupt plans (overlapping or gappy ownership built via
/// `ChunkPlan::from_raw_parts`) to prove the shadow writer map actually
/// fires; [`banded_aggregate`] calls it with the validated plan the
/// `Parallelism` config resolves to. Under `race-check`, every chunk's
/// owned rows are claimed in a shared writer-id map *before* any work is
/// scheduled (cross-chunk overlap and coverage gaps panic up front), and
/// every read is bounds-checked against the chunk's ±ω window.
///
/// Scheduling: the plan's chunks are grouped into at most `threads`
/// contiguous *runs*, one worker per run, and each chunk writes its rows
/// directly into the run's disjoint slice of the output. This keeps the
/// plan's chunk granularity (and the read-window geometry the race checker
/// verifies) while paying the spawn/timer overhead once per worker rather
/// than once per chunk — the per-chunk partial buffers and the O(L·dim)
/// concatenation copy of the previous reduction are gone entirely.
pub fn banded_aggregate_with_plan(
    band: &BandMask,
    x: &[f32],
    dim: usize,
    weights: &[f32],
    plan: &ChunkPlan,
    threads: usize,
) -> Vec<f32> {
    #[cfg(feature = "race-check")]
    {
        let writers = race::WriterMap::new("output row", plan.len());
        for (chunk_id, chunk) in plan.chunks().iter().enumerate() {
            writers.claim_range(chunk.start, chunk.end, chunk_id as u32);
        }
        writers.assert_complete();
    }
    let chunks = plan.chunks();
    let mut out = vec![0.0f32; x.len()];
    let workers = threads.max(1).min(chunks.len());
    let runs: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * chunks.len() / workers, (w + 1) * chunks.len() / workers))
        .filter(|(a, b)| a < b)
        .collect();
    let mut jobs = Vec::with_capacity(runs.len());
    let mut rest = out.as_mut_slice();
    let mut cursor = 0usize;
    for &(c0, c1) in &runs {
        let run = &chunks[c0..c1];
        let start = run[0].start;
        let end = run[run.len() - 1].end;
        assert!(
            start == cursor,
            "chunk runs must partition the path in order: run starts at \
             {start}, expected {cursor}"
        );
        let (rows, tail) = rest.split_at_mut((end - start) * dim);
        rest = tail;
        cursor = end;
        jobs.push(move || {
            let t = mega_obs::timer();
            for chunk in run {
                let lo = (chunk.start - start) * dim;
                let hi = (chunk.end - start) * dim;
                aggregate_chunk_into(band, chunk, x, dim, weights, &mut rows[lo..hi]);
            }
            t.observe("core.parallel.run_fwd_ns");
        });
    }
    join_workers(jobs);
    out
}

/// Backward pass through the aggregation, with respect to the inputs.
///
/// The aggregation is `out = A·x` with `A` the symmetric banded slot-weight
/// matrix, so `dx = A·d_out` — the same kernel applied to the upstream
/// gradient, inheriting the bit-identical chunking guarantee.
pub fn banded_aggregate_backward_x(
    band: &BandMask,
    d_out: &[f32],
    dim: usize,
    weights: &[f32],
    par: &Parallelism,
) -> Vec<f32> {
    banded_aggregate(band, d_out, dim, weights, par)
}

/// Backward pass with respect to the per-edge weights (serial reference).
///
/// `dw[e] = ⟨d_out[lo], x[hi]⟩ + ⟨d_out[hi], x[lo]⟩` for the slot claimed by
/// edge `e`.
pub fn banded_weight_grad_serial(
    band: &BandMask,
    x: &[f32],
    d_out: &[f32],
    dim: usize,
    edge_count: usize,
) -> Vec<f32> {
    let mut dw = vec![0.0f32; edge_count];
    for s in band.active_slots() {
        dw[s.edge] = slot_weight_grad(
            dim,
            row(x, s.lo, dim),
            row(x, s.hi, dim),
            row(d_out, s.lo, dim),
            row(d_out, s.hi, dim),
        );
    }
    dw
}

/// Parallel weight gradient: slots are partitioned by their owning chunk
/// (the chunk whose owned rows contain `slot.lo`); each edge claims exactly
/// one slot, so writes never collide and each `dw[e]` is computed by a single
/// chunk exactly as the serial kernel would — bit-identical by construction.
pub fn banded_weight_grad(
    band: &BandMask,
    x: &[f32],
    d_out: &[f32],
    dim: usize,
    edge_count: usize,
    par: &Parallelism,
) -> Vec<f32> {
    let _span = mega_obs::span("band_wgrad");
    mega_obs::counter_add("core.band.wgrad_calls", 1);
    if par.effective_threads() <= 1 {
        return banded_weight_grad_serial(band, x, d_out, dim, edge_count);
    }
    let plan = ChunkPlan::for_band_cached(band, par);
    banded_weight_grad_with_plan(
        band,
        x,
        d_out,
        dim,
        edge_count,
        &plan,
        par.effective_threads(),
    )
}

/// [`banded_weight_grad`] over an explicit, caller-supplied [`ChunkPlan`] —
/// the race-checkable entry point, mirroring [`banded_aggregate_with_plan`].
///
/// Under `race-check`, each chunk claims every edge slot it writes in a
/// shared writer-id map (each edge claims exactly one band slot, so a
/// second claim means two chunks both think they own the slot's `lo` row),
/// and both slot endpoints are bounds-checked against the chunk's ±ω read
/// window. No completeness assertion: edges without an active slot are
/// legitimately never written.
#[allow(clippy::too_many_arguments)]
pub fn banded_weight_grad_with_plan(
    band: &BandMask,
    x: &[f32],
    d_out: &[f32],
    dim: usize,
    edge_count: usize,
    plan: &ChunkPlan,
    threads: usize,
) -> Vec<f32> {
    #[cfg(feature = "race-check")]
    let writers = race::WriterMap::new("edge slot", edge_count);
    let slots = band.active_slots();
    let partials = ordered_map(plan.chunks(), threads, |chunk_id, chunk| {
        #[cfg(not(feature = "race-check"))]
        let _ = chunk_id;
        let t = mega_obs::timer();
        // `active_slots` is sorted ascending by `(lo, offset)`, so the slots
        // owned by this chunk (`start <= lo < end`) are one contiguous
        // subrange — two binary searches instead of the full-list scan that
        // made the kernel O(chunks × slots) and sank 4-thread scaling.
        let begin = slots.partition_point(|s| s.lo < chunk.start);
        let end = slots.partition_point(|s| s.lo < chunk.end);
        let mut local: Vec<(usize, f32)> = Vec::with_capacity(end - begin);
        for s in &slots[begin..end] {
            check_read(chunk, s.lo);
            check_read(chunk, s.hi);
            #[cfg(feature = "race-check")]
            writers.claim(s.edge, chunk_id as u32);
            local.push((
                s.edge,
                slot_weight_grad(
                    dim,
                    row(x, s.lo, dim),
                    row(x, s.hi, dim),
                    row(d_out, s.lo, dim),
                    row(d_out, s.hi, dim),
                ),
            ));
        }
        t.observe("core.parallel.chunk_wgrad_ns");
        local
    });
    let mut dw = vec![0.0f32; edge_count];
    for partial in partials {
        for (e, v) in partial {
            dw[e] = v;
        }
    }
    dw
}
