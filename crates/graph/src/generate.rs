//! Generic random-graph generators.
//!
//! These produce topologies spanning the degree-distribution spectrum the
//! paper discusses (§III-B "uniform, normal, and predominantly power
//! distributions"): Erdős–Rényi (binomial degrees), Barabási–Albert
//! (power-law), regular cycles with skip links (CSL-style), and connected
//! sparse "molecular" chains. Dataset-specific generators matched to the
//! paper's benchmark statistics live in `mega-datasets` and build on these.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`.
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] if `p` is outside `[0, 1]`.
/// * [`GraphError::Empty`] if `n == 0`.
///
/// # Example
///
/// ```
/// use mega_graph::generate;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), mega_graph::GraphError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = generate::erdos_renyi(100, 0.05, &mut rng)?;
/// assert_eq!(g.node_count(), 100);
/// # Ok(())
/// # }
/// ```
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            name: "p",
            reason: format!("probability {p} not in [0, 1]"),
        });
    }
    let mut b = GraphBuilder::undirected(n);
    for a in 0..n {
        for c in (a + 1)..n {
            if rng.gen_bool(p) {
                b.edge(a, c)?;
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` existing nodes with probability proportional
/// to degree, yielding a power-law degree distribution.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            name: "m",
            reason: "m must be >= 1".into(),
        });
    }
    if n <= m {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: format!("need n > m, got n={n}, m={m}"),
        });
    }
    let mut b = GraphBuilder::undirected(n);
    // Repeated-endpoint pool: each edge endpoint appears once, so sampling the
    // pool uniformly is sampling nodes proportionally to degree.
    let mut pool: Vec<usize> = Vec::new();
    // Seed: clique over the first m+1 nodes.
    for a in 0..=m {
        for c in (a + 1)..=m {
            b.edge(a, c)?;
            pool.push(a);
            pool.push(c);
        }
    }
    for v in (m + 1)..n {
        // BTreeSet, not HashSet: `chosen` is iterated below to insert edges,
        // so its order becomes edge-id order — hash order would make graph
        // generation irreproducible across runs.
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0usize;
        while chosen.len() < m && guard < 50 * m {
            let &t = pool.choose(rng).expect("pool non-empty after seeding");
            chosen.insert(t);
            guard += 1;
        }
        // Fallback for pathological rng streaks: fill from lowest ids.
        let mut fill = 0usize;
        while chosen.len() < m {
            chosen.insert(fill);
            fill += 1;
        }
        for &t in &chosen {
            b.edge(v, t)?;
            pool.push(v);
            pool.push(t);
        }
    }
    b.build()
}

/// Circular skip-link graph (the CSL family, Murphy et al.): `n` nodes in a
/// cycle, plus skip edges `v -> (v + skip) mod n` for every node.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `skip` is 0, 1, or ≥ n − 1, or if it
/// would collide with cycle edges (`skip == n - 1`), or if `n < 4`.
pub fn circular_skip_links(n: usize, skip: usize) -> Result<Graph, GraphError> {
    if n < 4 {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: "need n >= 4".into(),
        });
    }
    if skip < 2 || skip >= n - 1 {
        return Err(GraphError::InvalidParameter {
            name: "skip",
            reason: format!("skip {skip} must be in 2..{}", n - 1),
        });
    }
    let mut b = GraphBuilder::undirected(n);
    b.dedup(true);
    for v in 0..n {
        b.edge(v, (v + 1) % n)?;
        b.edge(v, (v + skip) % n)?;
    }
    b.build()
}

/// A connected sparse graph shaped like a small molecule: a random spanning
/// tree with bounded branching plus `extra_edges` randomly placed ring-closing
/// edges. Degree distribution is tight and low, like ZINC/AQSOL molecules.
///
/// # Errors
///
/// [`GraphError::Empty`] if `n == 0`.
pub fn molecular_chain<R: Rng>(
    n: usize,
    extra_edges: usize,
    max_branch: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = GraphBuilder::undirected(n);
    b.dedup(true);
    let mut child_count = vec![0usize; n];
    // Random recursive tree with bounded branching: attach node v to a random
    // earlier node that still has branching capacity; bias toward recent nodes
    // to create chain-like (not star-like) molecules.
    for v in 1..n {
        let mut t;
        let mut tries = 0;
        loop {
            // Prefer a recent node (chain growth), fall back to uniform.
            let lo = v.saturating_sub(4);
            t = if tries < 4 && lo < v {
                rng.gen_range(lo..v)
            } else {
                rng.gen_range(0..v)
            };
            if child_count[t] < max_branch.max(1) || tries > 16 {
                break;
            }
            tries += 1;
        }
        child_count[t] += 1;
        b.edge(v, t)?;
    }
    // Ring closures.
    let mut placed = 0usize;
    let mut guard = 0usize;
    while placed < extra_edges && guard < 100 * (extra_edges + 1) && n > 2 {
        let a = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        guard += 1;
        if a != c {
            b.edge(a, c)?;
            placed += 1;
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbors (k even), with each edge rewired to a random
/// target with probability `beta`. Produces the high-clustering,
/// short-diameter topologies between the regular (CSL-like) and random (ER)
/// extremes of the paper's degree-distribution spectrum.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `k` is odd, zero, or ≥ n, or `beta`
/// is outside `[0, 1]`.
pub fn watts_strogatz<R: Rng>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k == 0 || !k.is_multiple_of(2) || k >= n {
        return Err(GraphError::InvalidParameter {
            name: "k",
            reason: format!("need even 0 < k < n, got k={k}, n={n}"),
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter {
            name: "beta",
            reason: format!("rewiring probability {beta} not in [0, 1]"),
        });
    }
    let mut b = GraphBuilder::undirected(n);
    b.dedup(true);
    for v in 0..n {
        for j in 1..=k / 2 {
            let mut target = (v + j) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform random non-self target.
                let mut guard = 0;
                loop {
                    let t = rng.gen_range(0..n);
                    if t != v || guard > 16 {
                        target = t;
                        break;
                    }
                    guard += 1;
                }
                if target == v {
                    target = (v + j) % n;
                }
            }
            if target != v {
                b.edge(v, target)?;
            }
        }
    }
    b.build()
}

/// A 2-D grid graph of `rows × cols` nodes with 4-neighbor connectivity —
/// the perfectly banded topology (a row-major ordering already has bandwidth
/// `cols`), useful as a best-case reference for the traversal.
///
/// # Errors
///
/// [`GraphError::Empty`] if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = GraphBuilder::undirected(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.edge(v, v + 1)?;
            }
            if r + 1 < rows {
                b.edge(v, v + cols)?;
            }
        }
    }
    b.build()
}

/// A connected-caveman-style graph: `cliques` fully connected groups of
/// `clique_size` nodes, adjacent cliques joined by one bridge edge (and the
/// last to the first). Maximal clustering with clear community structure —
/// the friendliest case for Eq. 2's correlation objective.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if fewer than 2 cliques or cliques
/// smaller than 2 nodes are requested.
pub fn caveman(cliques: usize, clique_size: usize) -> Result<Graph, GraphError> {
    if cliques < 2 || clique_size < 2 {
        return Err(GraphError::InvalidParameter {
            name: "cliques",
            reason: format!("need >= 2 cliques of >= 2 nodes, got {cliques} x {clique_size}"),
        });
    }
    let n = cliques * clique_size;
    let mut b = GraphBuilder::undirected(n);
    for q in 0..cliques {
        let base = q * clique_size;
        for a in 0..clique_size {
            for c in (a + 1)..clique_size {
                b.edge(base + a, base + c)?;
            }
        }
        // Bridge to the next clique.
        let next = ((q + 1) % cliques) * clique_size;
        b.edge(base + clique_size - 1, next)?;
    }
    b.build()
}

/// A cycle graph `C_n`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: "need n >= 3".into(),
        });
    }
    let mut b = GraphBuilder::undirected(n);
    for v in 0..n {
        b.edge(v, (v + 1) % n)?;
    }
    b.build()
}

/// A path graph `P_n` (n nodes, n − 1 edges).
///
/// # Errors
///
/// [`GraphError::Empty`] if `n == 0`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = GraphBuilder::undirected(n);
    for v in 1..n {
        b.edge(v - 1, v)?;
    }
    b.build()
}

/// The complete graph `K_n`.
///
/// # Errors
///
/// [`GraphError::Empty`] if `n == 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut b = GraphBuilder::undirected(n);
    for a in 0..n {
        for c in (a + 1)..n {
            b.edge(a, c)?;
        }
    }
    b.build()
}

/// A star graph: node 0 connected to all others.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: "need n >= 2".into(),
        });
    }
    let mut b = GraphBuilder::undirected(n);
    for v in 1..n {
        b.edge(0, v)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_respects_p_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(10, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 0);
        let g = erdos_renyi(10, 1.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 45);
        assert!(erdos_renyi(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn barabasi_albert_is_connected_and_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(200, 2, &mut rng).unwrap();
        assert!(algo::is_connected(&g));
        let s = crate::stats::DegreeStats::of(&g);
        // Power-law: max degree far above mean.
        assert!(s.max as f64 > 3.0 * s.mean);
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(barabasi_albert(5, 0, &mut rng).is_err());
        assert!(barabasi_albert(2, 3, &mut rng).is_err());
    }

    #[test]
    fn csl_is_4_regular() {
        let g = circular_skip_links(16, 5).unwrap();
        assert!(g.degrees().iter().all(|&d| d == 4));
        assert!(algo::is_connected(&g));
        assert!(circular_skip_links(16, 1).is_err());
        assert!(circular_skip_links(3, 2).is_err());
    }

    #[test]
    fn molecular_chain_connected_and_sparse() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = molecular_chain(23, 4, 3, &mut rng).unwrap();
        assert!(algo::is_connected(&g));
        assert!(g.edge_count() >= 22); // spanning tree at minimum
        assert!(g.max_degree() <= 23);
    }

    #[test]
    fn deterministic_families() {
        assert_eq!(cycle(5).unwrap().edge_count(), 5);
        assert_eq!(path(5).unwrap().edge_count(), 4);
        assert_eq!(complete(5).unwrap().edge_count(), 10);
        assert_eq!(star(5).unwrap().degree(0), 4);
        assert!(cycle(2).is_err());
        assert!(star(1).is_err());
    }

    #[test]
    fn watts_strogatz_degree_and_params() {
        let mut rng = StdRng::seed_from_u64(6);
        // beta = 0: pure ring lattice, k-regular.
        let g = watts_strogatz(20, 4, 0.0, &mut rng).unwrap();
        assert!(g.degrees().iter().all(|&d| d == 4));
        // beta = 1: still n*k/2 edges at most (dedup may merge collisions).
        let g = watts_strogatz(30, 4, 1.0, &mut rng).unwrap();
        assert!(g.edge_count() <= 60);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err()); // odd k
        assert!(watts_strogatz(10, 4, 1.5, &mut rng).is_err()); // bad beta
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        // Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
        assert_eq!(g.edge_count(), 17);
        assert!(algo::is_connected(&g));
        // Corner degree 2, interior degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
        assert!(grid(0, 3).is_err());
    }

    #[test]
    fn caveman_structure() {
        let g = caveman(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        // 3 cliques of C(4,2)=6 edges + 3 bridges.
        assert_eq!(g.edge_count(), 21);
        assert!(algo::is_connected(&g));
        assert!(caveman(1, 4).is_err());
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let g1 = erdos_renyi(50, 0.1, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = erdos_renyi(50, 0.1, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1.edge_list(), g2.edge_list());
    }
}
