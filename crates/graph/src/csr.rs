//! Compressed sparse row (CSR) adjacency index.
//!
//! CSR is the layout graph libraries (and the paper's DGL baseline) use for
//! neighbor lookup: `offsets[v]..offsets[v + 1]` indexes into `targets` giving
//! the neighbors of `v`. For undirected graphs both orientations of every edge
//! are materialized.

use crate::coo::EdgeList;
use serde::{Deserialize, Serialize};

/// Compressed sparse row adjacency structure.
///
/// # Example
///
/// ```
/// use mega_graph::{Csr, EdgeList};
///
/// # fn main() -> Result<(), mega_graph::GraphError> {
/// let coo = EdgeList::from_pairs(3, vec![(0, 1), (1, 2)])?;
/// let csr = Csr::from_edge_list(&coo, true);
/// assert_eq!(csr.neighbors(1), &[0, 2]);
/// assert_eq!(csr.degree(0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
    /// For each adjacency slot, the index of the originating edge in the
    /// source [`EdgeList`]. Lets callers map neighbor slots back to edge
    /// feature rows.
    edge_ids: Vec<usize>,
}

impl Csr {
    /// Builds a CSR index from an edge list.
    ///
    /// When `undirected` is true each pair `(s, d)` contributes two adjacency
    /// slots, `s -> d` and `d -> s`, that share the same edge id. Neighbor
    /// lists are sorted by target node id for deterministic iteration.
    pub fn from_edge_list(coo: &EdgeList, undirected: bool) -> Self {
        let n = coo.node_count();
        let mut degree = vec![0usize; n];
        for &(s, d) in coo.pairs() {
            degree[s] += 1;
            if undirected && s != d {
                degree[d] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0usize; acc];
        let mut edge_ids = vec![0usize; acc];
        let mut cursor = offsets[..n].to_vec();
        for (eid, &(s, d)) in coo.pairs().iter().enumerate() {
            targets[cursor[s]] = d;
            edge_ids[cursor[s]] = eid;
            cursor[s] += 1;
            if undirected && s != d {
                targets[cursor[d]] = s;
                edge_ids[cursor[d]] = eid;
                cursor[d] += 1;
            }
        }
        // Sort each row by target for determinism.
        for v in 0..n {
            let lo = offsets[v];
            let hi = offsets[v + 1];
            let mut row: Vec<(usize, usize)> = targets[lo..hi]
                .iter()
                .copied()
                .zip(edge_ids[lo..hi].iter().copied())
                .collect();
            row.sort_unstable();
            for (i, (t, e)) in row.into_iter().enumerate() {
                targets[lo + i] = t;
                edge_ids[lo + i] = e;
            }
        }
        Csr {
            offsets,
            targets,
            edge_ids,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of adjacency slots (directed edge count, i.e. `2m` for an
    /// undirected graph with `m` edges).
    pub fn slot_count(&self) -> usize {
        self.targets.len()
    }

    /// The neighbors of `v`, sorted by node id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The edge ids parallel to [`Csr::neighbors`]: `edge_ids(v)[i]` is the
    /// index in the original edge list of the edge connecting `v` with
    /// `neighbors(v)[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn edge_ids(&self, v: usize) -> &[usize] {
        &self.edge_ids[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree (number of adjacency slots) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The raw offsets array (`node_count + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw targets array.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Whether `a` and `b` are adjacent (binary search over `a`'s sorted row).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn contains_edge(&self, a: usize, b: usize) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::EdgeList;

    fn triangle() -> EdgeList {
        EdgeList::from_pairs(3, vec![(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn undirected_mirrors_edges() {
        let csr = Csr::from_edge_list(&triangle(), true);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.slot_count(), 6);
    }

    #[test]
    fn directed_keeps_orientation() {
        let csr = Csr::from_edge_list(&triangle(), false);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(1), &[2]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.slot_count(), 3);
    }

    #[test]
    fn edge_ids_map_back_to_coo() {
        let coo = triangle();
        let csr = Csr::from_edge_list(&coo, true);
        for v in 0..3 {
            for (i, &nbr) in csr.neighbors(v).iter().enumerate() {
                let eid = csr.edge_ids(v)[i];
                let (s, d) = coo.pairs()[eid];
                assert!((s, d) == (v, nbr) || (s, d) == (nbr, v));
            }
        }
    }

    #[test]
    fn contains_edge_queries() {
        let csr = Csr::from_edge_list(&triangle(), true);
        assert!(csr.contains_edge(0, 1));
        assert!(csr.contains_edge(1, 0));
        let path = EdgeList::from_pairs(3, vec![(0, 1)]).unwrap();
        let csr = Csr::from_edge_list(&path, true);
        assert!(!csr.contains_edge(0, 2));
    }

    #[test]
    fn self_loop_single_slot_when_undirected() {
        let coo = EdgeList::from_pairs(2, vec![(0, 0), (0, 1)]).unwrap();
        let csr = Csr::from_edge_list(&coo, true);
        assert_eq!(csr.neighbors(0), &[0, 1]);
        assert_eq!(csr.degree(0), 2);
    }

    #[test]
    fn isolated_nodes_have_empty_rows() {
        let coo = EdgeList::from_pairs(4, vec![(0, 1)]).unwrap();
        let csr = Csr::from_edge_list(&coo, true);
        assert!(csr.neighbors(2).is_empty());
        assert!(csr.neighbors(3).is_empty());
    }
}
