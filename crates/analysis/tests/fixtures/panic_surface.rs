// `panic-surface` fixture: panics judged by hot-surface reachability.
pub fn kernel(xs: &[f32]) -> f32 {
    let _g = mega_obs::span("kernel");
    helper(xs)
}

fn helper(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "empty input");
    xs[0]
}

// mega-lint: allow(panic-surface, reason = "NaN sentinel: poisoned activations must abort the run")
pub fn checked(x: f32) -> f32 {
    let _g = mega_obs::span("checked");
    assert!(x.is_finite());
    x
}

fn never_called() {
    todo!()
}
