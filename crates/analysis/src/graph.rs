//! Workspace call-graph extraction over the [`scan`](crate::scan) token
//! stream.
//!
//! This is deliberately *not* a Rust parser. It walks each file's stripped
//! code channel with a brace-depth context stack (`mod` / `impl` / `trait`
//! / `fn`), records every `fn` item it passes (name, owner type, pub-ness,
//! definition line), and collects per-body facts: call sites (bare,
//! `path::qualified`, and `.method(...)` syntax), nondeterminism source
//! tokens, panic tokens, `unsafe` occurrences, and `mega_obs::span` opens.
//! Name resolution is heuristic and documented per edge kind in
//! [`Graph::build`]; the graph rules that consume it are designed so the
//! approximation errs on the side their contract needs (see DESIGN.md §9).
//!
//! Extraction is total (no panics on arbitrary input), deterministic
//! (output order follows file order and source position), and cycle-safe
//! (reachability is BFS with a visited set; `include!` cycles are already
//! collapsed by the logical-path pre-pass feeding `scope`).

use crate::scan::Line;
use std::collections::{BTreeMap, BTreeSet};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name: the last path segment before the `(`.
    pub name: String,
    /// Qualifier segments before the name (`a::b::name` → `["a", "b"]`);
    /// empty for bare calls.
    pub path: Vec<String>,
    /// True for `.name(...)` method syntax.
    pub method: bool,
    /// 1-based source line of the call.
    pub line: usize,
}

/// A token of interest observed inside a function body (a nondeterminism
/// source or a panic site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenSite {
    /// 1-based source line.
    pub line: usize,
    /// What was seen, e.g. `Instant::now` or `unwrap`.
    pub what: String,
}

/// One extracted `fn` item with its body facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Physical workspace-relative path (where the text lives; findings
    /// anchor here).
    pub file: String,
    /// Logical workspace-relative path (where the code compiles, after
    /// `#[path]`/`include!` resolution; scoping decisions use this).
    pub scope: String,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type or `trait` name, if any.
    pub owner: Option<String>,
    /// Declared `pub`, or a trait / trait-impl item (public API either way).
    pub is_pub: bool,
    /// Under `#[cfg(test)]`, `#[test]`, or a `tests/` path.
    pub in_test: bool,
    /// False for body-less trait method declarations.
    pub has_body: bool,
    /// Contains an `unsafe` token (block or `unsafe fn`).
    pub has_unsafe: bool,
    /// Opens a `mega_obs::span` directly.
    pub opens_span: bool,
    /// Call sites in source order.
    pub calls: Vec<CallSite>,
    /// Nondeterminism source tokens in source order.
    pub sources: Vec<TokenSite>,
    /// Panic tokens (`panic!`, `assert!`, `.unwrap()`, ...) in source order.
    pub panics: Vec<TokenSite>,
}

impl FnItem {
    /// Stable qualified name used in audit files:
    /// `<scope>::<Owner>::<name>` or `<scope>::<name>`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.scope, o, self.name),
            None => format!("{}::{}", self.scope, self.name),
        }
    }
}

/// Panic-producing macro names (matched as `name!`). `debug_assert*` is
/// deliberately absent: it compiles out of release builds, which is what
/// the hot-path audit cares about.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Panic-producing method names (matched as `.name(`). Exact idents, so
/// `unwrap_or` / `expect_err` never fire.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Method names that iterate a collection in storage order; combined with a
/// `HashMap`/`HashSet` token on the same line they mark a seed-ordered
/// iteration source.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Keywords and keyword-like tokens that must never become call edges even
/// when followed by `(`.
const NON_CALL_WORDS: [&str; 24] = [
    "if", "else", "while", "for", "match", "loop", "return", "in", "as", "move", "unsafe", "pub",
    "crate", "super", "self", "Self", "fn", "let", "mut", "ref", "where", "dyn", "box", "await",
];

/// Ubiquitous std-prelude method names. `.name(` edges for these are not
/// resolved against workspace items: nearly every occurrence is a std call,
/// and resolving them would wire unrelated impls together. A workspace fn
/// sharing one of these names is still reached through bare or qualified
/// calls.
const STD_METHODS: [&str; 88] = [
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "enumerate",
    "zip",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "collect",
    "cloned",
    "copied",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "clone",
    "to_vec",
    "to_string",
    "to_owned",
    "fill",
    "copy_from_slice",
    "clone_from_slice",
    "split_at",
    "split_at_mut",
    "chunks_exact",
    "windows",
    "max",
    "min",
    "abs",
    "sqrt",
    "exp",
    "ln",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "checked_sub",
    "checked_add",
    "partition_point",
    "binary_search",
    "with_capacity",
    "reserve",
    "extend",
    "extend_from_slice",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "keys",
    "values",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    "find",
    "position",
    "any",
    "all",
    "fold",
    "rev",
    "sum",
    "product",
    "count",
    "last",
    "first",
    "next",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map_err",
    "map_or",
    "and_then",
    "or_else",
    "ok_or",
    "ok_or_else",
    "as_ref",
    "as_mut",
    "parse",
];

/// The workspace call graph: extracted items plus resolved edges.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every extracted `fn`, ordered by file then source position.
    pub fns: Vec<FnItem>,
    /// All resolved edges per caller (bare + qualified + method syntax).
    pub edges: Vec<Vec<usize>>,
    /// Bare + qualified edges only. Method-syntax edges are excluded: the
    /// unsafe-reachability audit runs on these, because `.method(...)`
    /// dispatch through the `Backend` trait is itself the audited seam and
    /// would otherwise make every caller "reach unsafe" via the SIMD impl.
    pub static_edges: Vec<Vec<usize>>,
}

impl Graph {
    /// Extracts items from `(physical, logical, lines)` file records and
    /// resolves call edges.
    ///
    /// Resolution per call kind:
    /// - **qualified** `q::name(` — candidates are fns named `name` whose
    ///   owner type, module file stem, or crate ident matches the last
    ///   qualifier segment (`Self` maps to the caller's owner; leading
    ///   `crate`/`self`/`super` are dropped).
    /// - **bare** `name(` — a fn named `name` in the same logical file,
    ///   else in the same crate, else a globally unique match. The
    ///   cross-file fallbacks skip [`STD_METHODS`] names so `min(a, b)`
    ///   with `use std::cmp::min` never wires to an unrelated crate.
    /// - **method** `.name(` — every impl/trait fn named `name` (skipping
    ///   [`STD_METHODS`]); deliberately an over-approximation, bounded by
    ///   the rules' boundary sets.
    pub fn build(files: &[(&str, &str, &[Line])]) -> Graph {
        let mut fns = Vec::new();
        for (file, scope, lines) in files {
            extract(file, scope, lines, &mut fns);
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }
        let mut edges = Vec::with_capacity(fns.len());
        let mut static_edges = Vec::with_capacity(fns.len());
        for f in &fns {
            let mut all = BTreeSet::new();
            let mut stat = BTreeSet::new();
            for c in &f.calls {
                let cands = by_name.get(c.name.as_str()).map_or(&[][..], Vec::as_slice);
                if c.method {
                    if STD_METHODS.contains(&c.name.as_str()) {
                        continue;
                    }
                    all.extend(cands.iter().filter(|&&j| fns[j].owner.is_some()));
                } else if c.path.is_empty() {
                    resolve_bare(&fns, f, &c.name, cands, &mut all, &mut stat);
                } else {
                    resolve_qualified(&fns, f, &c.path, cands, &mut all, &mut stat);
                }
            }
            edges.push(all.into_iter().collect());
            static_edges.push(stat.into_iter().collect());
        }
        Graph {
            fns,
            edges,
            static_edges,
        }
    }

    /// BFS closure over `edges` (or `static_edges`) from `seeds`, skipping
    /// expansion through nodes where `block` returns true (blocked nodes
    /// are still *reached*, they just don't propagate). Returns a parent
    /// array: `Some(p)` marks a reached node discovered from `p` (seeds
    /// point at themselves).
    pub fn reach(
        &self,
        seeds: impl IntoIterator<Item = usize>,
        static_only: bool,
        block: impl Fn(usize) -> bool,
    ) -> Vec<Option<usize>> {
        let adj = if static_only {
            &self.static_edges
        } else {
            &self.edges
        };
        bfs(adj, seeds, block)
    }

    /// Reverse adjacency (callee → callers) over all edges or static edges
    /// only.
    pub fn reverse_edges(&self, static_only: bool) -> Vec<Vec<usize>> {
        let adj = if static_only {
            &self.static_edges
        } else {
            &self.edges
        };
        let mut rev = vec![Vec::new(); self.fns.len()];
        for (i, outs) in adj.iter().enumerate() {
            for &j in outs {
                rev[j].push(i);
            }
        }
        rev
    }

    /// Renders the call chain from a reached node back to its BFS seed as
    /// `a → b → c` using fn names.
    pub fn chain(&self, parents: &[Option<usize>], mut at: usize) -> String {
        let mut names = vec![self.fns[at].name.clone()];
        let mut hops = 0;
        while let Some(p) = parents[at] {
            if p == at || hops > 64 {
                break;
            }
            names.push(self.fns[p].name.clone());
            at = p;
            hops += 1;
        }
        names.reverse();
        names.join(" → ")
    }
}

/// BFS with a visited/parent array; total and cycle-safe by construction.
pub fn bfs(
    adj: &[Vec<usize>],
    seeds: impl IntoIterator<Item = usize>,
    block: impl Fn(usize) -> bool,
) -> Vec<Option<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; adj.len()];
    let mut queue = std::collections::VecDeque::new();
    for s in seeds {
        if s < adj.len() && parent[s].is_none() {
            parent[s] = Some(s);
            queue.push_back(s);
        }
    }
    while let Some(i) = queue.pop_front() {
        if block(i) && parent[i] != Some(i) {
            continue;
        }
        for &j in &adj[i] {
            if parent[j].is_none() {
                parent[j] = Some(i);
                queue.push_back(j);
            }
        }
    }
    parent
}

fn resolve_bare(
    fns: &[FnItem],
    caller: &FnItem,
    name: &str,
    cands: &[usize],
    all: &mut BTreeSet<usize>,
    stat: &mut BTreeSet<usize>,
) {
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&j| fns[j].scope == caller.scope)
        .collect();
    let hit: Vec<usize> = if !same_file.is_empty() {
        same_file
    } else if STD_METHODS.contains(&name) {
        Vec::new()
    } else {
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&j| crate_dir(&fns[j].scope) == crate_dir(&caller.scope))
            .collect();
        if !same_crate.is_empty() {
            same_crate
        } else if cands.len() == 1 {
            cands.to_vec()
        } else {
            Vec::new()
        }
    };
    all.extend(hit.iter());
    stat.extend(hit.iter());
}

fn resolve_qualified(
    fns: &[FnItem],
    caller: &FnItem,
    path: &[String],
    cands: &[usize],
    all: &mut BTreeSet<usize>,
    stat: &mut BTreeSet<usize>,
) {
    let segs: Vec<&str> = path
        .iter()
        .map(|s| {
            if s == "Self" {
                caller.owner.as_deref().unwrap_or("Self")
            } else {
                s.as_str()
            }
        })
        .filter(|s| !matches!(*s, "crate" | "self" | "super"))
        .collect();
    let Some(&last) = segs.last() else {
        // `crate::name(...)`-style: behaves like a bare same-crate call.
        let hits: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&j| crate_dir(&fns[j].scope) == crate_dir(&caller.scope))
            .collect();
        all.extend(hits.iter());
        stat.extend(hits.iter());
        return;
    };
    for &j in cands {
        let g = &fns[j];
        let hit = g.owner.as_deref() == Some(last)
            || file_stem(&g.scope) == last
            || crate_ident(&g.scope) == last;
        if hit {
            all.insert(j);
            stat.insert(j);
        }
    }
}

/// `crates/exec/src/kernels.rs` → `crates/exec`; `src/lib.rs` → `.`.
fn crate_dir(scope: &str) -> &str {
    match scope.find("/src/") {
        Some(p) if scope.starts_with("crates/") => &scope[..p],
        _ if scope.starts_with("src/") || scope.starts_with("tests/") => ".",
        _ => scope,
    }
}

/// `crates/exec/src/kernels.rs` → `kernels`.
fn file_stem(scope: &str) -> &str {
    let base = scope.rsplit('/').next().unwrap_or(scope);
    base.strip_suffix(".rs").unwrap_or(base)
}

/// The ident a crate is referenced by in paths:
/// `crates/gpu-sim` → `mega_gpu_sim`, the root crate → `mega`.
fn crate_ident(scope: &str) -> String {
    let dir = crate_dir(scope);
    match dir.strip_prefix("crates/") {
        Some(name) => format!("mega_{}", name.replace('-', "_")),
        None => "mega".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Ctx {
    Block,
    Mod { test: bool },
    Owner { name: String, is_trait: bool },
    Fn { idx: usize },
}

#[derive(Debug)]
enum Pending {
    None,
    /// Saw `fn`, awaiting the name.
    FnName,
    /// Consuming a signature until `{` (body) or `;` (declaration).
    FnSig(Box<FnItem>),
    /// Saw `mod`, awaiting the name.
    ModName,
    /// Saw `mod name`, awaiting `{` or `;`.
    ModBody {
        test: bool,
    },
    /// Accumulating an `impl` header until `{`.
    ImplHeader(String),
    /// Saw `trait`, awaiting the name.
    TraitName,
    /// Saw `trait Name`, consuming bounds until `{`.
    TraitBody(String),
}

#[derive(Debug, Default)]
struct Carry {
    is_pub: bool,
    is_unsafe: bool,
    is_test: bool,
}

#[derive(Debug, PartialEq, Clone, Copy)]
enum Prev {
    PathSep,
    Dot,
    Other,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    Semi,
    Bang,
    PathSep,
    Dot,
    Other(char),
}

fn tokenize(code: &str) -> Vec<Tok> {
    let cs: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        let c = cs[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < cs.len() && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            out.push(Tok::Ident(cs[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            // Numeric literal: consume digits/idents plus a `.` only when a
            // digit follows, so tuple-field access like `x.0.iter()` keeps
            // its `.iter` tokens.
            while i < cs.len()
                && (cs[i].is_ascii_alphanumeric()
                    || cs[i] == '_'
                    || (cs[i] == '.' && cs.get(i + 1).is_some_and(char::is_ascii_digit)))
            {
                i += 1;
            }
        } else if c == ':' && cs.get(i + 1) == Some(&':') {
            out.push(Tok::PathSep);
            i += 2;
        } else if c.is_whitespace() {
            i += 1;
        } else {
            out.push(match c {
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                '(' => Tok::LParen,
                ';' => Tok::Semi,
                '!' => Tok::Bang,
                '.' => Tok::Dot,
                other => Tok::Other(other),
            });
            i += 1;
        }
    }
    out
}

struct Extractor<'a> {
    file: &'a str,
    scope: &'a str,
    path_is_test: bool,
    stack: Vec<Ctx>,
    pending: Pending,
    carry: Carry,
}

impl<'a> Extractor<'a> {
    fn innermost_fn(&self) -> Option<usize> {
        self.stack.iter().rev().find_map(|c| match c {
            Ctx::Fn { idx } => Some(*idx),
            _ => None,
        })
    }

    fn in_test_ctx(&self) -> bool {
        self.path_is_test
            || self
                .stack
                .iter()
                .any(|c| matches!(c, Ctx::Mod { test: true }))
    }

    fn owner_ctx(&self) -> (Option<String>, bool) {
        for c in self.stack.iter().rev() {
            if let Ctx::Owner { name, is_trait } = c {
                return (Some(name.clone()), *is_trait);
            }
        }
        (None, false)
    }
}

/// Extracts every `fn` item in one file, appending to `fns`.
pub fn extract(file: &str, scope: &str, lines: &[Line], fns: &mut Vec<FnItem>) {
    let mut ex = Extractor {
        file,
        scope,
        path_is_test: scope.starts_with("tests/") || scope.contains("/tests/"),
        stack: Vec::new(),
        pending: Pending::None,
        carry: Carry::default(),
    };
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.code.trim_start();
        if trimmed.starts_with("#[")
            && crate::scan::contains_token(trimmed, "test")
            && !trimmed.contains("not(test")
        {
            ex.carry.is_test = true;
        }
        let toks = tokenize(&line.code);
        let mut prev = Prev::Other;
        let mut path_buf: Vec<String> = Vec::new();
        let mut path_method = false;
        let mut line_hash = false;
        let mut line_iter = false;
        // The fn whose body tokens this line carried, captured before a
        // same-line `}` pops it off the stack.
        let mut line_fn: Option<usize> = None;
        let mut t = 0;
        while t < toks.len() {
            let tok = &toks[t];
            // Item-signature consumption takes priority over body scanning.
            match std::mem::replace(&mut ex.pending, Pending::None) {
                Pending::FnName => {
                    if let Tok::Ident(w) = tok {
                        let (owner, is_trait) = ex.owner_ctx();
                        let item = FnItem {
                            file: ex.file.to_string(),
                            scope: ex.scope.to_string(),
                            line: lineno,
                            name: w.clone(),
                            owner,
                            is_pub: ex.carry.is_pub || is_trait,
                            in_test: ex.carry.is_test || ex.in_test_ctx(),
                            has_body: false,
                            has_unsafe: ex.carry.is_unsafe,
                            opens_span: false,
                            calls: Vec::new(),
                            sources: Vec::new(),
                            panics: Vec::new(),
                        };
                        ex.carry = Carry::default();
                        ex.pending = Pending::FnSig(Box::new(item));
                        t += 1;
                        continue;
                    }
                    // Not an item fn (fn-pointer type); fall through.
                }
                Pending::FnSig(mut item) => match tok {
                    Tok::LBrace => {
                        item.has_body = true;
                        let idx = fns.len();
                        fns.push(*item);
                        ex.stack.push(Ctx::Fn { idx });
                        t += 1;
                        continue;
                    }
                    Tok::Semi => {
                        fns.push(*item);
                        t += 1;
                        continue;
                    }
                    other => {
                        if let Tok::Ident(w) = other {
                            if w == "unsafe" {
                                item.has_unsafe = true;
                            } else if w == "HashMap" || w == "HashSet" {
                                // Keep the same-line iteration heuristic
                                // alive when the map is a parameter and the
                                // body shares the signature's line.
                                line_hash = true;
                            }
                        }
                        ex.pending = Pending::FnSig(item);
                        t += 1;
                        continue;
                    }
                },
                Pending::ModName => {
                    if let Tok::Ident(_) = tok {
                        ex.pending = Pending::ModBody {
                            test: ex.carry.is_test,
                        };
                        ex.carry = Carry::default();
                        t += 1;
                        continue;
                    }
                }
                Pending::ModBody { test } => match tok {
                    Tok::LBrace => {
                        ex.stack.push(Ctx::Mod { test });
                        t += 1;
                        continue;
                    }
                    Tok::Semi => {
                        t += 1;
                        continue;
                    }
                    _ => {
                        ex.pending = Pending::ModBody { test };
                        t += 1;
                        continue;
                    }
                },
                Pending::ImplHeader(mut text) => match tok {
                    Tok::LBrace => {
                        let (owner, is_trait) = parse_impl_header(&text);
                        match owner {
                            Some(name) => ex.stack.push(Ctx::Owner { name, is_trait }),
                            None => ex.stack.push(Ctx::Block),
                        }
                        ex.carry = Carry::default();
                        t += 1;
                        continue;
                    }
                    Tok::Semi => {
                        ex.carry = Carry::default();
                        t += 1;
                        continue;
                    }
                    other => {
                        push_tok_text(&mut text, other);
                        ex.pending = Pending::ImplHeader(text);
                        t += 1;
                        continue;
                    }
                },
                Pending::TraitName => {
                    if let Tok::Ident(w) = tok {
                        ex.pending = Pending::TraitBody(w.clone());
                        ex.carry = Carry::default();
                        t += 1;
                        continue;
                    }
                }
                Pending::TraitBody(name) => match tok {
                    Tok::LBrace => {
                        ex.stack.push(Ctx::Owner {
                            name,
                            is_trait: true,
                        });
                        t += 1;
                        continue;
                    }
                    Tok::Semi => {
                        t += 1;
                        continue;
                    }
                    _ => {
                        ex.pending = Pending::TraitBody(name);
                        t += 1;
                        continue;
                    }
                },
                Pending::None => {}
            }
            // Body / top-level scanning.
            match tok {
                Tok::Ident(w) => {
                    let next = toks.get(t + 1);
                    match w.as_str() {
                        "fn" => ex.pending = Pending::FnName,
                        "mod" if matches!(next, Some(Tok::Ident(_))) => {
                            ex.pending = Pending::ModName;
                        }
                        "impl" => ex.pending = Pending::ImplHeader(String::new()),
                        "trait" if matches!(next, Some(Tok::Ident(_))) => {
                            ex.pending = Pending::TraitName;
                        }
                        "pub" => ex.carry.is_pub = true,
                        "unsafe" => match ex.innermost_fn() {
                            Some(i) => fns[i].has_unsafe = true,
                            None => ex.carry.is_unsafe = true,
                        },
                        _ => {
                            if prev == Prev::PathSep {
                                path_buf.push(w.clone());
                            } else {
                                path_buf = vec![w.clone()];
                                path_method = prev == Prev::Dot;
                            }
                            scan_ident(
                                fns,
                                &ex,
                                w,
                                next,
                                &path_buf,
                                path_method,
                                lineno,
                                &mut line_hash,
                                &mut line_iter,
                                &mut line_fn,
                            );
                        }
                    }
                    prev = Prev::Other;
                }
                Tok::LBrace => {
                    ex.stack.push(Ctx::Block);
                    ex.carry.is_pub = false;
                    ex.carry.is_unsafe = false;
                    prev = Prev::Other;
                }
                Tok::RBrace => {
                    ex.stack.pop();
                    ex.carry = Carry::default();
                    prev = Prev::Other;
                }
                Tok::Semi => {
                    ex.carry = Carry::default();
                    path_buf.clear();
                    prev = Prev::Other;
                }
                Tok::PathSep => prev = Prev::PathSep,
                Tok::Dot => prev = Prev::Dot,
                Tok::LParen | Tok::Bang | Tok::Other(_) => prev = Prev::Other,
            }
            t += 1;
        }
        if line_hash && line_iter {
            if let Some(i) = line_fn.or_else(|| ex.innermost_fn()) {
                fns[i].sources.push(TokenSite {
                    line: lineno,
                    what: "HashMap/HashSet iteration".to_string(),
                });
            }
        }
    }
}

/// Handles one non-keyword identifier in body position: call sites, panic
/// tokens, nondeterminism sources, span opens.
#[allow(clippy::too_many_arguments)]
fn scan_ident(
    fns: &mut [FnItem],
    ex: &Extractor<'_>,
    w: &str,
    next: Option<&Tok>,
    path_buf: &[String],
    path_method: bool,
    lineno: usize,
    line_hash: &mut bool,
    line_iter: &mut bool,
    line_fn: &mut Option<usize>,
) {
    let Some(fn_idx) = ex.innermost_fn() else {
        return;
    };
    *line_fn = Some(fn_idx);
    let item = &mut fns[fn_idx];
    match next {
        Some(Tok::Bang) => {
            if PANIC_MACROS.contains(&w) {
                item.panics.push(TokenSite {
                    line: lineno,
                    what: format!("{w}!"),
                });
            }
        }
        Some(Tok::LParen) => {
            if NON_CALL_WORDS.contains(&w) {
                return;
            }
            if path_method && PANIC_METHODS.contains(&w) {
                item.panics.push(TokenSite {
                    line: lineno,
                    what: w.to_string(),
                });
            }
            if path_method && ITER_METHODS.contains(&w) {
                *line_iter = true;
            }
            let qualifier = &path_buf[..path_buf.len().saturating_sub(1)];
            let has = |seg: &str| qualifier.iter().any(|s| s == seg);
            match w {
                "now" if has("Instant") => push_source(item, lineno, "Instant::now"),
                "now" if has("SystemTime") => push_source(item, lineno, "SystemTime::now"),
                "available_parallelism" => push_source(item, lineno, "available_parallelism"),
                "thread_rng" => push_source(item, lineno, "thread_rng"),
                "from_entropy" => push_source(item, lineno, "from_entropy"),
                "span" if has("mega_obs") => item.opens_span = true,
                _ => {}
            }
            item.calls.push(CallSite {
                name: w.to_string(),
                path: qualifier.to_vec(),
                method: path_method,
                line: lineno,
            });
        }
        _ => match w {
            "OsRng" => push_source(item, lineno, "OsRng"),
            "HashMap" | "HashSet" => *line_hash = true,
            _ => {}
        },
    }
}

fn push_source(item: &mut FnItem, line: usize, what: &str) {
    item.sources.push(TokenSite {
        line,
        what: what.to_string(),
    });
}

fn push_tok_text(text: &mut String, tok: &Tok) {
    match tok {
        Tok::Ident(w) => {
            text.push(' ');
            text.push_str(w);
            text.push(' ');
        }
        Tok::PathSep => text.push_str("::"),
        Tok::Dot => text.push('.'),
        Tok::LParen => text.push('('),
        Tok::Bang => text.push('!'),
        Tok::Other(c) => text.push(*c),
        Tok::LBrace | Tok::RBrace | Tok::Semi => {}
    }
}

/// Parses the text between `impl` and `{` into the implementing type's name
/// plus whether this is a trait impl (`impl Trait for Type`).
fn parse_impl_header(text: &str) -> (Option<String>, bool) {
    let cs: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < cs.len() && cs[i].is_whitespace() {
        i += 1;
    }
    // Skip the leading generic-parameter group, if any.
    if cs.get(i) == Some(&'<') {
        let mut depth = 0i32;
        while i < cs.len() {
            if cs[i] == '<' {
                depth += 1;
            } else if cs[i] == '>' {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let rest: String = cs[i..].iter().collect();
    match split_top_level_for(&rest) {
        Some(after) => (first_type_ident(&after), true),
        None => (first_type_ident(&rest), false),
    }
}

/// Finds a top-level (angle-depth 0) `for` keyword; returns the text after
/// it.
fn split_top_level_for(text: &str) -> Option<String> {
    let cs: Vec<char> = text.chars().collect();
    let mut depth = 0i32;
    let mut i = 0;
    while i < cs.len() {
        match cs[i] {
            '<' => depth += 1,
            '>' => depth = (depth - 1).max(0),
            'f' if depth == 0 => {
                let is_word = cs.get(i + 1) == Some(&'o')
                    && cs.get(i + 2) == Some(&'r')
                    && !cs
                        .get(i + 3)
                        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
                    && !cs
                        .get(i.wrapping_sub(1))
                        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_');
                if is_word && i > 0 {
                    return Some(cs[i + 3..].iter().collect());
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// First type-like identifier in a type expression, skipping `&`, `mut`,
/// `dyn`, `const`, and lifetimes.
fn first_type_ident(text: &str) -> Option<String> {
    let cs: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        let c = cs[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let lifetime = i > 0 && cs[i - 1] == '\'';
            let start = i;
            while i < cs.len() && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            let word: String = cs[start..i].iter().collect();
            if !lifetime && !matches!(word.as_str(), "mut" | "dyn" | "const") {
                return Some(word);
            }
        } else {
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let stripped: Vec<(&str, Vec<Line>)> = files.iter().map(|(p, s)| (*p, strip(s))).collect();
        let refs: Vec<(&str, &str, &[Line])> = stripped
            .iter()
            .map(|(p, l)| (*p, *p, l.as_slice()))
            .collect();
        Graph::build(&refs)
    }

    fn by_name<'a>(g: &'a Graph, name: &str) -> &'a FnItem {
        g.fns.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn extracts_items_with_owner_and_visibility() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub fn free() {}\nstruct S;\nimpl S { fn m(&self) {} pub fn p(&self) {} }\n\
             trait T { fn d(&self) { self.m() } fn decl(&self); }\n\
             impl T for S { fn decl(&self) {} }\n",
        )]);
        assert!(by_name(&g, "free").is_pub);
        assert!(by_name(&g, "free").owner.is_none());
        let m = by_name(&g, "m");
        assert!(!m.is_pub);
        assert_eq!(m.owner.as_deref(), Some("S"));
        assert!(by_name(&g, "p").is_pub);
        let d = by_name(&g, "d");
        assert!(d.is_pub, "trait default methods are API");
        assert_eq!(d.owner.as_deref(), Some("T"));
        let decls: Vec<_> = g.fns.iter().filter(|f| f.name == "decl").collect();
        assert_eq!(decls.len(), 2);
        assert!(!decls[0].has_body);
        assert!(decls[1].has_body);
        assert!(decls[1].is_pub, "trait-impl methods are API");
    }

    #[test]
    fn call_kinds_and_resolution() {
        let g = graph_of(&[
            (
                "crates/core/src/a.rs",
                "pub fn top() { helper(); m::qual(); obj.meth(1); }\npub fn helper() {}\n",
            ),
            ("crates/core/src/m.rs", "pub fn qual() {}\n"),
            (
                "crates/exec/src/b.rs",
                "struct O;\nimpl O { pub fn meth(&self, x: u32) {} }\n",
            ),
        ]);
        let top = by_name(&g, "top");
        assert_eq!(top.calls.len(), 3);
        let ti = g.fns.iter().position(|f| f.name == "top").unwrap();
        let names: Vec<&str> = g.edges[ti]
            .iter()
            .map(|&j| g.fns[j].name.as_str())
            .collect();
        assert_eq!(names, ["helper", "qual", "meth"]);
        let stat: Vec<&str> = g.static_edges[ti]
            .iter()
            .map(|&j| g.fns[j].name.as_str())
            .collect();
        assert_eq!(stat, ["helper", "qual"], "method edges are not static");
    }

    #[test]
    fn body_facts_are_collected() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, u32>) -> u32 {\n\
                 let t = std::time::Instant::now();\n\
                 let s: u32 = m.values().map(|v| *v).fold(0, |a, b| a + b);\n\
                 let _g = mega_obs::span(\"f\");\n\
                 assert!(s > 0);\n\
                 t.elapsed().as_nanos() as u32 + s\n\
             }\n\
             pub unsafe fn u() {}\n\
             pub fn b() { let x: Option<u32> = None; x.unwrap(); }\n",
        )]);
        let f = by_name(&g, "f");
        assert_eq!(
            f.sources
                .iter()
                .map(|s| s.what.as_str())
                .collect::<Vec<_>>(),
            ["Instant::now"],
            "HashMap on the signature line only does not mark iteration"
        );
        assert!(f.opens_span);
        assert_eq!(f.panics.len(), 1);
        assert_eq!(f.panics[0].what, "assert!");
        assert!(by_name(&g, "u").has_unsafe);
        assert_eq!(by_name(&g, "b").panics[0].what, "unwrap");
    }

    #[test]
    fn hash_iteration_needs_both_tokens_on_a_line() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub fn f(m: &std::collections::HashMap<u32, u32>) { for k in m.keys() {} }\n\
             pub fn g() { let m = std::collections::HashMap::new(); }\n",
        )]);
        assert!(by_name(&g, "f")
            .sources
            .iter()
            .any(|s| s.what.contains("iteration")));
        assert!(by_name(&g, "g").sources.is_empty());
    }

    #[test]
    fn cfg_test_and_test_paths_mark_items() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { prod(); }\n}\n",
        )]);
        assert!(!by_name(&g, "prod").in_test);
        assert!(by_name(&g, "t").in_test);
        let g2 = graph_of(&[("crates/core/tests/it.rs", "fn helper() {}\n")]);
        assert!(g2.fns[0].in_test);
    }

    #[test]
    fn impl_header_parsing() {
        assert_eq!(
            parse_impl_header(" Backend  for  SimdBackend "),
            (Some("SimdBackend".into()), true)
        );
        assert_eq!(
            parse_impl_header("< T :  Clone > Wrapper < T > "),
            (Some("Wrapper".into()), false)
        );
        assert_eq!(
            parse_impl_header("< 'a > Iterator  for  &mut Walker < 'a > "),
            (Some("Walker".into()), true)
        );
        assert_eq!(parse_impl_header(" fmt :: Display  for  Rule "), {
            (Some("Rule".into()), true)
        });
    }

    #[test]
    fn reach_respects_blocks_and_cycles() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub fn a() { b(); }\npub fn b() { c(); a(); }\npub fn c() {}\n",
        )]);
        let ai = g.fns.iter().position(|f| f.name == "a").unwrap();
        let bi = g.fns.iter().position(|f| f.name == "b").unwrap();
        let ci = g.fns.iter().position(|f| f.name == "c").unwrap();
        let r = g.reach([ai], false, |_| false);
        assert!(r[ci].is_some(), "cycle-safe transitive reach");
        let blocked = g.reach([ai], false, |i| i == bi);
        assert!(blocked[bi].is_some(), "blocked node is reached");
        assert!(blocked[ci].is_none(), "but does not propagate");
        assert_eq!(g.chain(&r, ci), "a → b → c");
    }

    #[test]
    fn self_qualifier_maps_to_owner() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "struct S;\nimpl S {\n    pub fn new() -> S { Self::init(); S }\n    fn init() {}\n}\n",
        )]);
        let ni = g.fns.iter().position(|f| f.name == "new").unwrap();
        let names: Vec<&str> = g.static_edges[ni]
            .iter()
            .map(|&j| g.fns[j].name.as_str())
            .collect();
        assert_eq!(names, ["init"]);
    }

    #[test]
    fn extraction_is_total_on_garbage() {
        let g = graph_of(&[(
            "crates/core/src/bad.rs",
            "}}}} fn ( impl { trait ; :: . ! fn fn unsafe {{ mod\n",
        )]);
        let _ = g.fns.len();
    }
}
