//! Weisfeiler-Lehman testing and aggregation-similarity scoring.
//!
//! The paper (§III-B, §IV-B1) uses the WL method for two purposes, both
//! implemented here:
//!
//! * [`labels`] — classic WL **color refinement**: repeatedly relabel every
//!   vertex with a canonical hash of its own label and the multiset of its
//!   neighbors' labels. Two graphs whose refined label multisets differ are
//!   certainly non-isomorphic.
//! * [`receptive`] and [`similarity`] — the **aggregation similarity** of
//!   Fig. 8: how much of each node's true k-hop receptive field is preserved
//!   by (a) MEGA's path representation (banded attention over path
//!   positions, merged per node only at readout) and (b) global attention
//!   (every node attends to every node). Path attention is exact at 1 hop
//!   and degrades gracefully with hop count; global attention destroys
//!   locality on sparse graphs.
//!
//! # Example
//!
//! ```
//! use mega_core::{preprocess, MegaConfig};
//! use mega_graph::generate;
//! use mega_wl::similarity;
//!
//! # fn main() -> Result<(), mega_core::MegaError> {
//! let g = generate::cycle(12).unwrap();
//! let s = preprocess(&g, &MegaConfig::default())?;
//! // 1-hop aggregation is preserved exactly.
//! assert!((similarity::path_similarity(&g, &s, 1) - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod labels;
pub mod receptive;
pub mod similarity;

pub use labels::{refine, wl_indistinguishable, RefinementHistory};
pub use similarity::{
    global_similarity, path_similarity, path_similarity_merged, subtree_similarity,
};
