//! Figure 6: GPU-kernel profile of the DGL baseline — global-load
//! transactions, memory-stall percentage, and invocation counts per kernel.
//!
//! The graph kernels (`cub`, `dgl`) show poor data locality: high stall
//! percentages and excessive global loads relative to the work done.

use mega_bench::{bench_datasets, fmt, save_json, TableWriter};
use mega_datasets::DatasetSpec;
use mega_gnn::{EngineChoice, ModelKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    kernel: String,
    invocations: u64,
    global_load_transactions: u64,
    stall_pct: f64,
    l2_hit_rate: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let spec = DatasetSpec::small(6);
    let (batch, hidden, layers) = (64usize, 128usize, 2usize);
    let mut table = TableWriter::new(&[
        "dataset", "model", "kernel", "calls", "ld_txns", "stall%", "l2-hit%",
    ]);
    let mut rows = Vec::new();
    for ds in bench_datasets(&spec) {
        for kind in [ModelKind::GatedGcn, ModelKind::GraphTransformer] {
            let cost = mega_bench::profile_config(
                &ds,
                kind,
                EngineChoice::Baseline,
                batch,
                hidden,
                layers,
            );
            for k in cost.report.kernels() {
                let hit = if k.load_transactions == 0 {
                    1.0
                } else {
                    k.l2_hits as f64 / k.load_transactions as f64
                };
                table.row(&[
                    ds.name.clone(),
                    kind.label().to_string(),
                    k.kind.label().to_string(),
                    k.invocations.to_string(),
                    k.load_transactions.to_string(),
                    fmt(k.stall_pct * 100.0, 1),
                    fmt(hit * 100.0, 1),
                ]);
                rows.push(Row {
                    dataset: ds.name.clone(),
                    model: kind.label().to_string(),
                    kernel: k.kind.label().to_string(),
                    invocations: k.invocations,
                    global_load_transactions: k.load_transactions,
                    stall_pct: k.stall_pct,
                    l2_hit_rate: hit,
                });
            }
        }
    }
    mega_obs::data!("Figure 6 — per-kernel profile (batch 64, hidden 128, DGL baseline)\n");
    table.print();
    mega_obs::data!(
        "\nPaper claim: cub/dgl kernels show high stall percentages and heavy global-load traffic."
    );
    save_json("fig06_kernel_profile", &rows);
}
