//! Multi-worker band-engine execution over path segments.
//!
//! The paper's §IV-B6 claim is that the path representation makes
//! distribution cheap: cutting the path into `k` contiguous segments leaves
//! only `k − 1` neighbor pairs, and each pair exchanges exactly the ±ω halo
//! rows per step. [`crate::comm`] *accounts* that volume; this module
//! *executes* it. [`ThreadExecutor`] runs one worker per segment
//! (threads with typed message channels — the in-tree harness behind the
//! [`DistExecutor`] trait, so a process-per-segment transport can slot in
//! later), double-buffers the halo exchange so interior compute overlaps
//! communication, and merges per-segment results in a fixed ascending
//! order, making every run bit-identical to the serial oracle
//! [`run_serial`] for any worker count.
//!
//! ## Halo protocol
//!
//! Each worker owns the rows of one [`SegmentPlan`] segment and holds two
//! slabs (`x`, `y`) covering its ±ω read extent. Per step:
//!
//! 1. zero `y`; compute the owned *boundary* rows (first ω, last ω) into
//!    `y` and scale by the damping factor;
//! 2. send those boundary rows to the chain neighbors (non-blocking);
//! 3. compute the owned *interior* rows — this overlaps the exchange;
//! 4. receive the neighbors' boundary rows into `y`'s halo regions;
//! 5. fold the owned slots' weight-gradient contributions (reads `x` and
//!    the just-completed `y`, including the received halo);
//! 6. swap `x ↔ y` — the received halo doubles as the next step's input
//!    halo, so each row crosses the wire exactly once per step.
//!
//! Per-row folds replay the serial kernel's slot order exactly
//! (`mega_exec::kernels::banded_aggregate_segment`), so no float is ever
//! re-associated; determinism does not depend on scheduling.

use mega_core::{AttentionSchedule, BandMask, Chunk, ChunkPlan};
use mega_exec::kernels;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};

/// The path cut into `k` contiguous segments with ±ω read extents —
/// exactly the assignment [`crate::path_segments`] produces, carried as a
/// validated [`ChunkPlan`] so the distributed workers share the
/// single-process engine's chunk geometry (and its race-check proofs).
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    plan: ChunkPlan,
    requested: usize,
}

impl SegmentPlan {
    /// Cuts a path of `len` rows under a width-`window` band into at most
    /// `workers` segments of `ceil(len / k)` rows — the same quotient
    /// [`crate::path_segments`] uses, so position `i` lands in segment
    /// `i / ceil(len / k)`.
    ///
    /// The halo protocol is adjacent-only: every segment but the last must
    /// span at least ω rows, otherwise a halo would have to hop across a
    /// worker. `workers` is clamped down until that holds (a path shorter
    /// than `workers · ω` simply runs on fewer workers).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn build(len: usize, window: usize, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut k = workers;
        while k > 1 && len.div_ceil(k) < window.max(1) {
            k -= 1;
        }
        let chunk = len.div_ceil(k).max(1);
        SegmentPlan {
            plan: ChunkPlan::build(len, window, chunk),
            requested: workers,
        }
    }

    /// [`SegmentPlan::build`] for a preprocessed schedule's band.
    // mega-lint: allow(span-coverage, reason = "plan construction, not kernel work; runs before any step loop")
    pub fn for_schedule(schedule: &AttentionSchedule, workers: usize) -> Self {
        let band = schedule.band();
        SegmentPlan::build(band.len(), band.window(), workers)
    }

    /// Wraps a raw, possibly invalid chunk layout — the race-check
    /// harness's entry point for proving that corrupt segment ownership
    /// panics instead of racing. Not validated.
    #[doc(hidden)]
    // mega-lint: allow(span-coverage, reason = "race-check harness constructor; never on a measured path")
    pub fn from_raw_parts(len: usize, window: usize, chunks: Vec<Chunk>) -> Self {
        let requested = chunks.len().max(1);
        SegmentPlan {
            plan: ChunkPlan::from_raw_parts(len, window, chunks),
            requested,
        }
    }

    /// The effective worker count: the number of segments after clamping
    /// (≤ the requested count).
    // mega-lint: allow(span-coverage, reason = "O(1) plan accessor; nothing to attribute")
    pub fn workers(&self) -> usize {
        self.plan.chunks().len()
    }

    /// The worker count originally requested, before clamping.
    // mega-lint: allow(span-coverage, reason = "O(1) plan accessor; nothing to attribute")
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// The segments, in path order.
    pub fn segments(&self) -> &[Chunk] {
        self.plan.chunks()
    }

    /// Path length.
    // mega-lint: allow(span-coverage, reason = "O(1) plan accessor; nothing to attribute")
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Whether the path is empty.
    // mega-lint: allow(span-coverage, reason = "O(1) plan accessor; nothing to attribute")
    pub fn is_empty(&self) -> bool {
        self.plan.len() == 0
    }

    /// Band half-width ω.
    pub fn window(&self) -> usize {
        self.plan.window()
    }

    /// Segment id per path position — must equal
    /// [`crate::path_segments`]'s assignment (proven by proptest).
    // mega-lint: allow(span-coverage, reason = "test/proptest oracle over the plan, not step-loop work")
    pub fn assignment(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        for (seg, chunk) in self.segments().iter().enumerate() {
            out.extend(std::iter::repeat_n(seg, chunk.owned_len()));
        }
        out
    }
}

/// One multi-step band-engine job: evolve `x_{t+1} = damping · A·x_t`
/// (`A` the banded slot-weight matrix) for `steps` steps, accumulating
/// each step's per-edge weight-gradient contribution
/// `dw[e] += ⟨x_{t+1}[lo], x_t[hi]⟩ + ⟨x_{t+1}[hi], x_t[lo]⟩` — the band
/// engine's forward + weight-grad pair, iterated so the halo protocol is
/// exercised across optimizer-step-like boundaries.
#[derive(Debug, Clone)]
pub struct BandJob<'a> {
    /// The band mask.
    pub band: &'a BandMask,
    /// Initial state, row-major `L × dim`.
    pub x0: &'a [f32],
    /// Feature width.
    pub dim: usize,
    /// Per-edge slot weights.
    pub weights: &'a [f32],
    /// Working-graph edge count (sizes the weight-grad output).
    pub edge_count: usize,
    /// Steps to run.
    pub steps: usize,
    /// Per-step damping factor applied elementwise after aggregation.
    pub damping: f32,
}

/// The result of a [`BandJob`]: final state and accumulated weight-grad.
#[derive(Debug, Clone, PartialEq)]
pub struct BandRun {
    /// Final state, row-major `L × dim`.
    pub x: Vec<f32>,
    /// Accumulated per-edge weight gradient over all steps.
    pub dw: Vec<f32>,
}

/// A distributed band-engine transport. [`ThreadExecutor`] is the in-tree
/// thread-per-segment implementation; a process-per-segment transport only
/// needs to move [`BandJob`] slabs and halo rows across its boundary and
/// can slot in behind this trait unchanged.
pub trait DistExecutor {
    /// The worker count this executor was configured for (before any
    /// per-job clamping).
    fn workers(&self) -> usize;

    /// Runs the job to completion and returns the merged result —
    /// bit-identical to [`run_serial`] on the same job.
    fn run(&self, job: &BandJob<'_>) -> BandRun;
}

/// One halo message: the sender's boundary rows for one step. The typed
/// envelope (step index + global row range) lets the receiver assert the
/// protocol instead of trusting channel ordering.
#[derive(Debug)]
struct HaloMsg {
    step: usize,
    rows: Range<usize>,
    data: Vec<f32>,
}

/// Per-worker channel endpoints: chain neighbors only — O(k) pairs, the
/// §IV-B6 topology.
struct Mailbox {
    to_left: Option<Sender<HaloMsg>>,
    to_right: Option<Sender<HaloMsg>>,
    from_left: Option<Receiver<HaloMsg>>,
    from_right: Option<Receiver<HaloMsg>>,
}

/// What one worker hands back: its owned rows of the final state and its
/// owned slots' accumulated weight-grad, merged by the coordinator in
/// ascending segment order.
struct SegmentResult {
    x_owned: Vec<f32>,
    dw: Vec<(usize, f32)>,
}

/// Thread-per-segment executor with typed message channels.
#[derive(Debug, Clone)]
pub struct ThreadExecutor {
    workers: usize,
    plan: Option<SegmentPlan>,
}

impl ThreadExecutor {
    /// An executor that will cut each job's path into (at most) `workers`
    /// segments.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    // mega-lint: allow(span-coverage, reason = "executor constructor; spans open in run_with_plan")
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ThreadExecutor {
            workers,
            plan: None,
        }
    }

    /// An executor pinned to an explicit segment plan — the race-check
    /// harness's entry point (corrupt plans must panic under
    /// `--features race-check`, not race).
    // mega-lint: allow(span-coverage, reason = "race-check harness constructor; spans open in run_with_plan")
    pub fn with_plan(plan: SegmentPlan) -> Self {
        ThreadExecutor {
            workers: plan.workers().max(1),
            plan: Some(plan),
        }
    }

    fn plan_for(&self, band: &BandMask) -> SegmentPlan {
        match &self.plan {
            Some(p) => {
                assert_eq!(p.len(), band.len(), "pinned plan length mismatch");
                p.clone()
            }
            None => SegmentPlan::build(band.len(), band.window(), self.workers),
        }
    }
}

impl DistExecutor for ThreadExecutor {
    // mega-lint: allow(span-coverage, reason = "O(1) accessor on the executor trait; nothing to attribute")
    fn workers(&self) -> usize {
        self.workers
    }

    fn run(&self, job: &BandJob<'_>) -> BandRun {
        let plan = self.plan_for(job.band);
        run_with_plan(job, &plan)
    }
}

/// Serial oracle: the same evolution on one process, using the serial
/// reference kernels. Every [`DistExecutor`] run must match this
/// bit-for-bit.
pub fn run_serial(job: &BandJob<'_>) -> BandRun {
    assert_eq!(job.x0.len(), job.band.len() * job.dim, "x0 must be L x dim");
    let _span = mega_obs::span("dist_serial");
    let mut x = job.x0.to_vec();
    let mut dw = vec![0.0f32; job.edge_count];
    for _ in 0..job.steps {
        let mut y = kernels::banded_aggregate_serial(job.band, &x, job.dim, job.weights);
        for v in &mut y {
            *v *= job.damping;
        }
        let step_dw = kernels::banded_weight_grad_serial(job.band, &x, &y, job.dim, job.edge_count);
        for (acc, v) in dw.iter_mut().zip(&step_dw) {
            *acc += *v;
        }
        x = y;
    }
    BandRun { x, dw }
}

/// Runs `job` over an explicit segment plan: one thread per segment,
/// boundary-first compute, double-buffered halo exchange, fixed-order merge.
pub fn run_with_plan(job: &BandJob<'_>, plan: &SegmentPlan) -> BandRun {
    assert_eq!(job.x0.len(), job.band.len() * job.dim, "x0 must be L x dim");
    let _span = mega_obs::span("dist_run");
    let segs = plan.segments();
    let k = segs.len();
    mega_obs::counter_add("dist.runs", 1);
    mega_obs::counter_add("dist.workers", k as u64);
    mega_obs::counter_add("dist.steps", job.steps as u64);

    // Under race-check: every worker claims its owned rows in a shared
    // writer map before any compute — overlapping or gappy segment
    // ownership panics up front instead of racing on halo rows.
    #[cfg(feature = "race-check")]
    let writers = kernels::race::WriterMap::new("segment row", plan.len());
    #[cfg(feature = "race-check")]
    {
        for (seg_id, seg) in segs.iter().enumerate() {
            writers.claim_range(seg.start, seg.end, seg_id as u32);
        }
        writers.assert_complete();
    }

    // Chain topology: one channel per directed neighbor edge — 2(k−1)
    // endpoints, the O(k) halo-pair structure the accounting model prices.
    let mut mailboxes: Vec<Mailbox> = (0..k)
        .map(|_| Mailbox {
            to_left: None,
            to_right: None,
            from_left: None,
            from_right: None,
        })
        .collect();
    for w in 0..k.saturating_sub(1) {
        let (tx_r, rx_r) = channel(); // w → w+1
        let (tx_l, rx_l) = channel(); // w+1 → w
        mailboxes[w].to_right = Some(tx_r);
        mailboxes[w + 1].from_left = Some(rx_r);
        mailboxes[w + 1].to_left = Some(tx_l);
        mailboxes[w].from_right = Some(rx_l);
    }

    let results: Vec<SegmentResult> = std::thread::scope(|s| {
        let handles: Vec<_> = segs
            .iter()
            .zip(mailboxes.drain(..))
            .map(|(seg, mailbox)| s.spawn(move || worker(job, seg, mailbox)))
            .collect();
        // Join in ascending segment order: the merge below is a fixed-order
        // reduction by construction.
        handles
            .into_iter()
            .map(|h| h.join().expect("segment worker panicked"))
            .collect()
    });

    let mut x = vec![0.0f32; job.x0.len()];
    let mut dw = vec![0.0f32; job.edge_count];
    for (seg, res) in segs.iter().zip(&results) {
        x[seg.start * job.dim..seg.end * job.dim].copy_from_slice(&res.x_owned);
        // Each edge claims exactly one slot and each slot has exactly one
        // owning segment, so this "all-reduce" is a disjoint fixed-order
        // scatter — no float is ever summed across workers.
        for &(e, v) in &res.dw {
            dw[e] = v;
        }
    }
    BandRun { x, dw }
}

/// One segment worker: owns `seg`'s rows, holds slabs over the ±ω read
/// extent, and speaks the halo protocol with its chain neighbors.
fn worker(job: &BandJob<'_>, seg: &Chunk, mailbox: Mailbox) -> SegmentResult {
    let dim = job.dim;
    let omega = job.band.window();
    let base = seg.read_lo;
    let slab_rows = seg.read_hi - seg.read_lo;
    let mut x = vec![0.0f32; slab_rows * dim];
    x.copy_from_slice(&job.x0[base * dim..seg.read_hi * dim]);
    let mut y = vec![0.0f32; slab_rows * dim];

    // Boundary geometry: the first/last ω owned rows are what neighbors
    // need. When the segment is narrower than 2ω the two regions meet.
    let b1_hi = (seg.start + omega).min(seg.end);
    let b2_lo = seg.end.saturating_sub(omega).max(b1_hi);
    // Slots owned by this segment (lo ∈ [start, end)), fixed across steps;
    // the accumulator is aligned to this slice so per-edge sums fold in
    // step order exactly like the serial oracle's `dw[e] += step_dw[e]`.
    let mut dw_acc: Vec<(usize, f32)> = Vec::new();

    for step in 0..job.steps {
        let t_step = mega_obs::timer();
        y.fill(0.0);
        // 1. Boundary rows first, then scale: y = damping · A·x.
        kernels::banded_aggregate_segment(
            job.band,
            seg,
            seg.start,
            b1_hi,
            &x,
            base,
            dim,
            job.weights,
            &mut y,
            base,
        );
        kernels::banded_aggregate_segment(
            job.band,
            seg,
            b2_lo,
            seg.end,
            &x,
            base,
            dim,
            job.weights,
            &mut y,
            base,
        );
        for r in (seg.start..b1_hi).chain(b2_lo..seg.end) {
            for v in &mut y[(r - base) * dim..(r - base + 1) * dim] {
                *v *= job.damping;
            }
        }
        // 2. Send boundary rows — non-blocking, overlaps step 3. The left
        // neighbor's right halo is exactly [start, min(start+ω, len)) =
        // [start, b1_hi); the right neighbor's left halo is [end−ω, end).
        if let Some(tx) = &mailbox.to_left {
            send_halo(tx, step, seg.start..b1_hi, &y, base, dim);
        }
        if let Some(tx) = &mailbox.to_right {
            send_halo(tx, step, seg.end - omega..seg.end, &y, base, dim);
        }
        // 3. Interior rows while the halos are in flight.
        kernels::banded_aggregate_segment(
            job.band,
            seg,
            b1_hi,
            b2_lo,
            &x,
            base,
            dim,
            job.weights,
            &mut y,
            base,
        );
        for v in &mut y[(b1_hi - base) * dim..(b2_lo - base) * dim] {
            *v *= job.damping;
        }
        // 4. Receive the neighbors' boundary rows into y's halo regions.
        let t_wait = mega_obs::timer();
        if let Some(rx) = &mailbox.from_left {
            recv_halo(rx, step, seg.read_lo..seg.start, &mut y, base, dim);
        }
        if let Some(rx) = &mailbox.from_right {
            recv_halo(rx, step, seg.end..seg.read_hi, &mut y, base, dim);
        }
        t_wait.observe("dist.halo.wait_ns");
        // 5. Weight-grad for owned slots: reads x (pre-step) and y
        // (post-step, halo included — a slot reaches up to ω rows right of
        // the owned range, which is exactly the halo just received).
        let step_dw = kernels::banded_weight_grad_segment(job.band, seg, &x, base, &y, base, dim);
        if dw_acc.is_empty() {
            dw_acc = step_dw;
        } else {
            debug_assert_eq!(dw_acc.len(), step_dw.len());
            for (acc, v) in dw_acc.iter_mut().zip(&step_dw) {
                debug_assert_eq!(acc.0, v.0);
                acc.1 += v.1;
            }
        }
        // 6. Double-buffer swap: the received halo is next step's input.
        std::mem::swap(&mut x, &mut y);
        t_step.observe("dist.step_ns");
    }

    SegmentResult {
        x_owned: x[(seg.start - base) * dim..(seg.end - base) * dim].to_vec(),
        dw: dw_acc,
    }
}

/// Copies `rows` out of the sender's slab and ships them. A disconnected
/// receiver means a peer worker panicked; propagate by panicking too.
fn send_halo(
    tx: &Sender<HaloMsg>,
    step: usize,
    rows: Range<usize>,
    slab: &[f32],
    base: usize,
    dim: usize,
) {
    if rows.is_empty() {
        // Mirrors recv_halo: a zero-width band has no halo to exchange.
        return;
    }
    let data = slab[(rows.start - base) * dim..(rows.end - base) * dim].to_vec();
    mega_obs::counter_add("dist.halo.msgs", 1);
    mega_obs::counter_add("dist.halo.bytes", (data.len() * 4) as u64);
    tx.send(HaloMsg { step, rows, data })
        .expect("halo peer disconnected");
}

/// Receives one halo message and writes it into the slab, asserting the
/// typed envelope matches the protocol's expected step and row range.
fn recv_halo(
    rx: &Receiver<HaloMsg>,
    step: usize,
    expect: Range<usize>,
    slab: &mut [f32],
    base: usize,
    dim: usize,
) {
    if expect.is_empty() {
        return;
    }
    let msg = rx.recv().expect("halo peer disconnected");
    assert_eq!(msg.step, step, "halo message from the wrong step");
    assert_eq!(
        msg.rows, expect,
        "halo rows [{}, {}) do not match the expected window [{}, {})",
        msg.rows.start, msg.rows.end, expect.start, expect.end
    );
    slab[(expect.start - base) * dim..(expect.end - base) * dim].copy_from_slice(&msg.data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_core::{preprocess, MegaConfig};
    use mega_graph::generate;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn schedule_for(n: usize, seed: u64) -> AttentionSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::barabasi_albert(n, 3, &mut rng).unwrap();
        preprocess(&g, &MegaConfig::default()).unwrap()
    }

    fn job_inputs(band: &BandMask, edges: usize, dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f32> = (0..band.len() * dim)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let weights: Vec<f32> = (0..edges).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
        (x0, weights)
    }

    #[test]
    fn segment_plan_clamps_to_window() {
        // 10 rows, ω = 4: 8 workers would leave segments thinner than the
        // halo; the plan must fall back to fewer.
        let plan = SegmentPlan::build(10, 4, 8);
        assert!(plan.workers() <= plan.requested());
        for seg in &plan.segments()[..plan.workers() - 1] {
            assert!(seg.owned_len() >= 4, "segment thinner than ω: {seg:?}");
        }
    }

    #[test]
    fn assignment_matches_path_segments_quotient() {
        let plan = SegmentPlan::build(11, 1, 3);
        let chunk = 11usize.div_ceil(3);
        let expect: Vec<usize> = (0..11).map(|i| (i / chunk).min(2)).collect();
        assert_eq!(plan.assignment(), expect);
    }

    #[test]
    fn distributed_run_is_bit_identical_to_serial() {
        let sched = schedule_for(120, 5);
        let band = sched.band();
        let edges = sched.working_graph().edge_count();
        let (x0, weights) = job_inputs(band, edges, 8, 17);
        let job = BandJob {
            band,
            x0: &x0,
            dim: 8,
            weights: &weights,
            edge_count: edges,
            steps: 4,
            damping: 0.7,
        };
        let oracle = run_serial(&job);
        assert!(oracle.x.iter().all(|v| v.is_finite()));
        for workers in [1, 2, 3, 4, 7] {
            let run = ThreadExecutor::new(workers).run(&job);
            assert_eq!(
                run.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                oracle.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "state diverged at {workers} workers"
            );
            assert_eq!(
                run.dw.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                oracle.dw.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "weight-grad diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn more_workers_than_rows_still_matches() {
        let sched = schedule_for(24, 9);
        let band = sched.band();
        let edges = sched.working_graph().edge_count();
        let (x0, weights) = job_inputs(band, edges, 4, 3);
        let job = BandJob {
            band,
            x0: &x0,
            dim: 4,
            weights: &weights,
            edge_count: edges,
            steps: 3,
            damping: 0.9,
        };
        let oracle = run_serial(&job);
        let run = ThreadExecutor::new(64).run(&job);
        assert_eq!(
            run.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            oracle.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_steps_returns_initial_state() {
        let sched = schedule_for(40, 2);
        let band = sched.band();
        let edges = sched.working_graph().edge_count();
        let (x0, weights) = job_inputs(band, edges, 4, 8);
        let job = BandJob {
            band,
            x0: &x0,
            dim: 4,
            weights: &weights,
            edge_count: edges,
            steps: 0,
            damping: 1.0,
        };
        let run = ThreadExecutor::new(3).run(&job);
        assert_eq!(run.x, x0);
        assert!(run.dw.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn halo_counters_account_the_chain_topology() {
        let sched = schedule_for(120, 5);
        let band = sched.band();
        let edges = sched.working_graph().edge_count();
        let (x0, weights) = job_inputs(band, edges, 4, 1);
        let job = BandJob {
            band,
            x0: &x0,
            dim: 4,
            weights: &weights,
            edge_count: edges,
            steps: 2,
            damping: 0.5,
        };
        mega_obs::reset();
        mega_obs::set_enabled(true);
        let plan = SegmentPlan::build(band.len(), band.window(), 4);
        let k = plan.workers();
        run_with_plan(&job, &plan);
        mega_obs::set_enabled(false);
        let snap = mega_obs::snapshot();
        let msgs = snap
            .counters
            .iter()
            .find(|(name, _)| name == "dist.halo.msgs")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        // 2(k−1) directed neighbor pairs, one message each per step.
        assert_eq!(msgs, (2 * (k - 1) * job.steps) as u64);
        mega_obs::reset();
    }
}
