//! Traversal behaviour across the topology spectrum the paper discusses
//! (§III-B: "uniform, normal, and predominantly power distributions"), plus
//! the geometric extremes: stars (one hub), grids (already banded), caveman
//! graphs (max clustering), and small-world rewirings.

use mega::core::{preprocess, traverse, MegaConfig, WindowPolicy};
use mega::graph::{generate, Graph};
use mega::wl::path_similarity;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn full(w: usize) -> MegaConfig {
    MegaConfig::default().with_window(WindowPolicy::Fixed(w))
}

fn assert_complete_schedule(g: &Graph, w: usize) {
    let s = preprocess(g, &full(w)).unwrap();
    assert_eq!(s.band().covered_edge_count(), g.edge_count(), "window {w}");
    assert!(
        (path_similarity(g, &s, 1) - 1.0).abs() < 1e-12,
        "window {w}"
    );
    for positions in s.scatter_index() {
        assert!(!positions.is_empty());
    }
}

/// A star forces maximal revisiting at ω=1: the hub must reappear between
/// leaves. The path alternates hub/leaf, and the revisit count hits the
/// paper's lower bound exactly.
#[test]
fn star_traversal_is_hub_alternating() {
    let n = 12;
    let g = generate::star(n).unwrap();
    let t = traverse(&g, &full(1)).unwrap();
    assert_eq!(t.covered_edges, n - 1);
    // Path length: each of the n-1 edges needs a hub appearance next to a
    // leaf appearance; optimal is 2(n-1) positions, one leaf each.
    assert!(t.path.len() <= 2 * (n - 1) + 1);
    // Hub (node 0) dominates appearances.
    let hub_appearances = t.path.iter().filter(|&&v| v == 0).count();
    assert!(
        hub_appearances >= (n - 1) / 2,
        "hub appeared {hub_appearances} times"
    );
    // Algorithm 1's pool priority (open neighbors -> stack -> jump) returns
    // to the hub after every leaf regardless of omega, so larger windows
    // cannot make a star worse -- and, faithfully to the paper's greedy
    // policy, they do not reach the sum-ceil(d/omega)-n bound either.
    let t4 = traverse(&g, &full(4)).unwrap();
    assert!(t4.revisits <= t.revisits);
}

/// A grid is already nearly banded; the traversal should produce a short
/// path (small expansion) with few virtual edges.
#[test]
fn grid_traversal_is_nearly_linear() {
    let g = generate::grid(8, 8).unwrap();
    let t = traverse(&g, &full(2)).unwrap();
    assert_eq!(t.covered_edges, g.edge_count());
    assert!(
        t.expansion_factor() < 2.5,
        "grid expansion {} unexpectedly high",
        t.expansion_factor()
    );
    assert!(t.virtual_edge_count <= g.node_count() / 8);
}

/// Caveman graphs are the friendliest case for Eq. 2: cliques are traversed
/// densely before moving on, so the window covers many edges per step.
#[test]
fn caveman_traversal_exploits_clustering() {
    let g = generate::caveman(5, 5).unwrap();
    let t = traverse(&g, &full(4)).unwrap();
    assert_eq!(t.covered_edges, g.edge_count());
    // A window of 4 covers each 5-clique in about one sweep: expansion stays
    // below 2.
    assert!(
        t.expansion_factor() < 2.0,
        "expansion {}",
        t.expansion_factor()
    );
    assert_eq!(t.virtual_edge_count, 0, "bridged cliques need no jumps");
}

/// Small-world rewiring adds shortcuts; coverage must remain exact across
/// the rewiring spectrum.
#[test]
fn watts_strogatz_coverage_across_beta() {
    for (i, &beta) in [0.0f64, 0.1, 0.5, 1.0].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(i as u64);
        let g = generate::watts_strogatz(60, 4, beta, &mut rng).unwrap();
        assert_complete_schedule(&g, 2);
    }
}

/// Dense and sparse ER extremes, several windows.
#[test]
fn erdos_renyi_extremes() {
    for &(p, seed) in &[(0.02f64, 1u64), (0.3, 2), (0.8, 3)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::erdos_renyi(40, p, &mut rng).unwrap();
        for w in [1usize, 3, 8] {
            assert_complete_schedule(&g, w);
        }
    }
}

/// The adaptive window picks larger ω for denser graphs, and the resulting
/// expansion factor is lower than forcing ω=1.
#[test]
fn adaptive_window_helps_dense_graphs() {
    let g = generate::complete(24).unwrap();
    let adaptive = traverse(&g, &MegaConfig::default()).unwrap();
    let narrow = traverse(&g, &full(1)).unwrap();
    assert!(adaptive.window > 1);
    assert!(adaptive.path.len() < narrow.path.len());
    assert_eq!(adaptive.covered_edges, g.edge_count());
}

/// Directed graphs traverse too: every stored arc gets a band slot.
#[test]
fn directed_graph_coverage() {
    let mut b = mega::graph::GraphBuilder::directed(6);
    b.edges([
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 0),
        (0, 3),
        (2, 5),
    ])
    .unwrap();
    let g = b.build().unwrap();
    let s = preprocess(&g, &full(2)).unwrap();
    assert_eq!(s.band().covered_edge_count(), g.edge_count());
}
