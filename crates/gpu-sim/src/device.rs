//! Device configurations.

use serde::{Deserialize, Serialize};

/// Architectural parameters of the simulated GPU.
///
/// The defaults model the paper's testbed, a GeForce GTX 1080 (Pascal GP104):
/// 20 SMs, 2 MiB L2, 32-byte sectors, ~320 GB/s GDDR5X.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// CUDA cores per SM (FP32 lanes).
    pub cores_per_sm: usize,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// Cache line size in bytes.
    pub l2_line_bytes: usize,
    /// Memory transaction (sector) granularity in bytes.
    pub sector_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// DRAM bandwidth in bytes per second.
    pub dram_bandwidth: f64,
    /// L2 bandwidth in bytes per cycle (device-wide).
    pub l2_bytes_per_cycle: f64,
    /// Latency of a DRAM access in core cycles.
    pub dram_latency_cycles: u64,
    /// Latency of an L2 hit in core cycles.
    pub l2_latency_cycles: u64,
    /// Fixed kernel launch overhead in core cycles (driver + dispatch).
    pub launch_overhead_cycles: u64,
    /// Achievable memory-level parallelism for scattered (index-driven)
    /// access streams; latency is amortized over this many in-flight
    /// requests. Streaming access achieves effectively full overlap.
    pub scattered_mlp: u64,
}

impl DeviceConfig {
    /// The paper's testbed: GeForce GTX 1080.
    pub fn gtx_1080() -> Self {
        DeviceConfig {
            name: "GeForce GTX 1080".to_string(),
            sm_count: 20,
            warp_size: 32,
            clock_ghz: 1.607,
            cores_per_sm: 128,
            l2_bytes: 2 * 1024 * 1024,
            l2_line_bytes: 128,
            sector_bytes: 32,
            l2_assoc: 16,
            dram_bandwidth: 320.0e9,
            l2_bytes_per_cycle: 512.0,
            dram_latency_cycles: 400,
            l2_latency_cycles: 80,
            launch_overhead_cycles: 12000,
            scattered_mlp: 80,
        }
    }

    /// A modern high-end part (RTX 3080-class: 68 SMs, 5 MiB L2, GDDR6X).
    /// Used by the device-sensitivity ablation: more bandwidth and cache
    /// shrink — but do not erase — the gap between scattered and banded
    /// access.
    pub fn rtx_3080() -> Self {
        DeviceConfig {
            name: "RTX 3080 (class)".to_string(),
            sm_count: 68,
            warp_size: 32,
            clock_ghz: 1.71,
            cores_per_sm: 128,
            l2_bytes: 5 * 1024 * 1024,
            l2_line_bytes: 128,
            sector_bytes: 32,
            l2_assoc: 16,
            dram_bandwidth: 760.0e9,
            l2_bytes_per_cycle: 2048.0,
            dram_latency_cycles: 450,
            l2_latency_cycles: 90,
            launch_overhead_cycles: 8000,
            scattered_mlp: 160,
        }
    }

    /// A low-end part (GTX 1050-class: 5 SMs, 1 MiB L2, 112 GB/s). The
    /// scattered-access penalty is most punishing here.
    pub fn gtx_1050() -> Self {
        DeviceConfig {
            name: "GTX 1050 (class)".to_string(),
            sm_count: 5,
            warp_size: 32,
            clock_ghz: 1.35,
            cores_per_sm: 128,
            l2_bytes: 1024 * 1024,
            l2_line_bytes: 128,
            sector_bytes: 32,
            l2_assoc: 16,
            dram_bandwidth: 112.0e9,
            l2_bytes_per_cycle: 256.0,
            dram_latency_cycles: 380,
            l2_latency_cycles: 70,
            launch_overhead_cycles: 12000,
            scattered_mlp: 48,
        }
    }

    /// FP32 operations the whole device can retire per cycle (FMA = 2).
    pub fn flops_per_cycle(&self) -> f64 {
        (self.sm_count * self.cores_per_sm) as f64 * 2.0
    }

    /// DRAM bytes deliverable per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth / (self.clock_ghz * 1e9)
    }

    /// Converts core cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx_1080_headline_numbers() {
        let d = DeviceConfig::gtx_1080();
        assert_eq!(d.sm_count, 20);
        assert_eq!(d.l2_bytes, 2 * 1024 * 1024);
        // 2560 cores × 2 = 5120 flops/cycle ≈ 8.2 TFLOPS at 1.607 GHz.
        assert_eq!(d.flops_per_cycle(), 5120.0);
        let tflops = d.flops_per_cycle() * d.clock_ghz * 1e9 / 1e12;
        assert!((tflops - 8.23).abs() < 0.1);
        // ~199 bytes/cycle of DRAM bandwidth.
        assert!((d.dram_bytes_per_cycle() - 199.1).abs() < 1.0);
    }

    #[test]
    fn device_family_ordering() {
        let low = DeviceConfig::gtx_1050();
        let mid = DeviceConfig::gtx_1080();
        let high = DeviceConfig::rtx_3080();
        assert!(low.flops_per_cycle() < mid.flops_per_cycle());
        assert!(mid.flops_per_cycle() < high.flops_per_cycle());
        assert!(low.dram_bandwidth < mid.dram_bandwidth);
        assert!(mid.l2_bytes < high.l2_bytes);
    }

    #[test]
    fn cycle_conversion() {
        let d = DeviceConfig::gtx_1080();
        let s = d.cycles_to_seconds(1_607_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
