//! Parameter store and optimizers (SGD, Adam).
//!
//! Training loops in this workspace rebuild the autograd tape every step; the
//! long-lived state — parameter tensors and optimizer moments — lives in a
//! [`ParamStore`]. A step looks like:
//!
//! ```
//! use mega_tensor::{Adam, Optimizer, ParamStore, Tape, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", Tensor::full(2, 2, 1.0));
//! let mut opt = Adam::new(0.1);
//!
//! for _ in 0..3 {
//!     let mut tape = Tape::new();
//!     let wv = store.leaf(&mut tape, w);
//!     let loss = {
//!         let sq = tape.mul(wv, wv);
//!         tape.mean(sq)
//!     };
//!     let grads = tape.backward(loss);
//!     store.accumulate(w, grads.wrt(wv));
//!     opt.step(&mut store);
//! }
//! assert!(store.get(w).norm() < 2.0); // weights shrank toward 0
//! ```

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
// mega-lint: allow(unordered-collection, reason = "name->id lookup only; iteration uses the ordered Vec fields")
use std::collections::HashMap;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Owns parameter tensors, their accumulated gradients, and names.
#[derive(Debug, Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
    // mega-lint: allow(unordered-collection, reason = "name->id lookup only; never iterated")
    by_name: HashMap<String, ParamId>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter under `name`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(
            !self.by_name.contains_key(name),
            "parameter `{name}` registered twice"
        );
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar count across all parameters (the paper's "parameter
    /// volume", Table I).
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(|t| t.rows() * t.cols()).sum()
    }

    /// The current value of `p`.
    pub fn get(&self, p: ParamId) -> &Tensor {
        &self.values[p.0]
    }

    /// Overwrites the value of `p`.
    ///
    /// # Panics
    ///
    /// Panics if the shape changes.
    pub fn set(&mut self, p: ParamId, value: Tensor) {
        assert_eq!(
            self.values[p.0].shape(),
            value.shape(),
            "parameter shape is fixed"
        );
        self.values[p.0] = value;
    }

    /// Looks a parameter up by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// The name of `p`.
    pub fn name_of(&self, p: ParamId) -> &str {
        &self.names[p.0]
    }

    /// Places the parameter's current value on a tape as a leaf. The
    /// [`ParamId`] doubles as the tape's stable parameter key, so GEMMs
    /// against the parameter can reuse packed operands through the tape's
    /// pack cache across steps.
    pub fn leaf(&self, tape: &mut Tape, p: ParamId) -> Var {
        tape.leaf_param(self.values[p.0].clone(), p.0 as u64)
    }

    /// Adds `grad` into the accumulated gradient of `p`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, p: ParamId, grad: &Tensor) {
        self.grads[p.0].add_assign(grad);
    }

    /// The accumulated gradient of `p`.
    pub fn grad(&self, p: ParamId) -> &Tensor {
        &self.grads[p.0]
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            *g = Tensor::zeros(g.rows(), g.cols());
        }
    }

    /// Global gradient-norm clipping: if the L2 norm over all grads exceeds
    /// `max_norm`, scales every grad down proportionally. Returns the norm
    /// before clipping.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total: f32 = self
            .grads
            .iter()
            .map(|g| g.norm().powi(2))
            .sum::<f32>()
            .sqrt();
        if total > max_norm && total > 0.0 {
            let k = max_norm / total;
            for g in &mut self.grads {
                *g = g.scale(k);
            }
        }
        total
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }
}

/// An optimizer updates all parameters of a store from their accumulated
/// gradients and zeroes the gradients.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (schedulers).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        if self.velocity.len() != store.len() {
            self.velocity = store
                .ids()
                .map(|p| {
                    let t = store.get(p);
                    Tensor::zeros(t.rows(), t.cols())
                })
                .collect();
        }
        for (i, p) in store.ids().enumerate() {
            let g = store.grad(p).clone();
            let v = if self.momentum > 0.0 {
                let v = self.velocity[i].scale(self.momentum).add(&g);
                self.velocity[i] = v.clone();
                v
            } else {
                g
            };
            let updated = store.get(p).sub(&v.scale(self.lr));
            store.set(p, updated);
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with explicit hyperparameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        if self.m.len() != store.len() {
            let zeros: Vec<Tensor> = store
                .ids()
                .map(|p| {
                    let t = store.get(p);
                    Tensor::zeros(t.rows(), t.cols())
                })
                .collect();
            self.m = zeros.clone();
            self.v = zeros;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in store.ids().enumerate() {
            let g = store.grad(p);
            self.m[i] = self.m[i].scale(self.beta1).add(&g.scale(1.0 - self.beta1));
            self.v[i] = self.v[i]
                .scale(self.beta2)
                .add(&g.mul(g).scale(1.0 - self.beta2));
            let mhat = self.m[i].scale(1.0 / bc1);
            let vhat = self.v[i].scale(1.0 / bc2);
            let update = mhat.zip_map(&vhat, |mm, vv| mm / (vv.sqrt() + self.eps));
            let updated = store.get(p).sub(&update.scale(self.lr));
            store.set(p, updated);
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(store: &mut ParamStore, p: ParamId) -> f32 {
        // loss = mean((w - 3)^2); minimum at w = 3.
        let mut tape = Tape::new();
        let w = store.leaf(&mut tape, p);
        let target = tape.leaf(Tensor::full(2, 2, 3.0));
        let d = tape.sub(w, target);
        let sq = tape.mul(d, d);
        let loss = tape.mean(sq);
        let lv = tape.value(loss).at(0, 0);
        let grads = tape.backward(loss);
        store.accumulate(p, grads.wrt(w));
        lv
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::zeros(2, 2));
        let mut opt = Sgd::new(0.5);
        let mut last = f32::MAX;
        for _ in 0..50 {
            last = quadratic_step(&mut store, p);
            opt.step(&mut store);
        }
        assert!(last < 1e-4, "loss {last}");
        assert!((store.get(p).at(0, 0) - 3.0).abs() < 0.01);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::zeros(2, 2));
        let mut opt = Adam::new(0.2);
        let mut last = f32::MAX;
        for _ in 0..200 {
            last = quadratic_step(&mut store, p);
            opt.step(&mut store);
        }
        assert!(last < 1e-3, "loss {last}");
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let run = |mut opt: Sgd| {
            let mut store = ParamStore::new();
            let p = store.register("w", Tensor::zeros(2, 2));
            let mut last = 0.0;
            for _ in 0..10 {
                last = quadratic_step(&mut store, p);
                opt.step(&mut store);
            }
            last
        };
        let plain = run(Sgd::new(0.05));
        let momo = run(Sgd::with_momentum(0.05, 0.9));
        assert!(momo < plain);
    }

    #[test]
    fn register_rejects_duplicates() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(1, 1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.register("w", Tensor::zeros(1, 1));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn name_lookup_and_counts() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::zeros(2, 3));
        let b = store.register("b", Tensor::zeros(4, 1));
        assert_eq!(store.id_of("a"), Some(a));
        assert_eq!(store.id_of("missing"), None);
        assert_eq!(store.name_of(b), "b");
        assert_eq!(store.scalar_count(), 10);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn grad_clipping_scales_down() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::zeros(1, 2));
        store.accumulate(p, &Tensor::from_rows(&[&[3.0, 4.0]])); // norm 5
        let before = store.clip_grad_norm(1.0);
        assert!((before - 5.0).abs() < 1e-5);
        assert!((store.grad(p).norm() - 1.0).abs() < 1e-5);
        // Below the cap nothing changes.
        let before = store.clip_grad_norm(10.0);
        assert!((before - 1.0).abs() < 1e-5);
        assert!((store.grad(p).norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_grads_resets() {
        let mut store = ParamStore::new();
        let p = store.register("w", Tensor::zeros(1, 1));
        store.accumulate(p, &Tensor::full(1, 1, 2.0));
        store.zero_grads();
        assert_eq!(store.grad(p).at(0, 0), 0.0);
    }
}
