//! Dense adjacency matrix.
//!
//! Global attention (Fig. 1a of the paper) treats the graph as fully connected
//! and operates on a dense `n × n` matrix. [`DenseAdjacency`] is that view; it
//! is also used to visualize the banded structure of MEGA's path
//! representation in tests and examples.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// A dense boolean adjacency matrix in row-major order.
///
/// # Example
///
/// ```
/// use mega_graph::{DenseAdjacency, GraphBuilder};
///
/// # fn main() -> Result<(), mega_graph::GraphError> {
/// let g = GraphBuilder::undirected(3).edges([(0, 1), (1, 2)])?.build()?;
/// let adj = DenseAdjacency::from_graph(&g);
/// assert!(adj.get(0, 1) && adj.get(1, 0));
/// assert!(!adj.get(0, 2));
/// assert_eq!(adj.bandwidth(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseAdjacency {
    n: usize,
    bits: Vec<bool>,
}

impl DenseAdjacency {
    /// An `n × n` all-zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseAdjacency {
            n,
            bits: vec![false; n * n],
        }
    }

    /// Materializes the adjacency matrix of `g` (symmetric for undirected
    /// graphs).
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut adj = DenseAdjacency::zeros(n);
        for (s, d) in g.edges() {
            adj.set(s, d, true);
            if g.is_undirected() {
                adj.set(d, s, true);
            }
        }
        adj
    }

    /// Matrix dimension `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0×0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reads entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is `>= len()`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.n && col < self.n,
            "index ({row}, {col}) out of range for n={}",
            self.n
        );
        self.bits[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is `>= len()`.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(
            row < self.n && col < self.n,
            "index ({row}, {col}) out of range for n={}",
            self.n
        );
        self.bits[row * self.n + col] = value;
    }

    /// Number of set entries.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// The matrix bandwidth: the maximum `|row - col|` over set entries, or 0
    /// for an empty matrix. A path representation with window ω has bandwidth
    /// ≤ ω by construction — this is how tests assert MEGA's diagonal claim.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for r in 0..self.n {
            for c in 0..self.n {
                if self.bits[r * self.n + c] {
                    bw = bw.max(r.abs_diff(c));
                }
            }
        }
        bw
    }

    /// Fraction of set entries that fall within `|row - col| <= window`.
    /// Returns 1.0 for a matrix with no set entries.
    pub fn band_coverage(&self, window: usize) -> f64 {
        let total = self.count_ones();
        if total == 0 {
            return 1.0;
        }
        let mut inside = 0usize;
        for r in 0..self.n {
            for c in 0..self.n {
                if self.bits[r * self.n + c] && r.abs_diff(c) <= window {
                    inside += 1;
                }
            }
        }
        inside as f64 / total as f64
    }

    /// Whether the matrix equals its transpose.
    pub fn is_symmetric(&self) -> bool {
        for r in 0..self.n {
            for c in (r + 1)..self.n {
                if self.bits[r * self.n + c] != self.bits[c * self.n + r] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn from_graph_symmetric_for_undirected() {
        let g = GraphBuilder::undirected(4)
            .edges([(0, 2), (1, 3)])
            .unwrap()
            .build()
            .unwrap();
        let adj = DenseAdjacency::from_graph(&g);
        assert!(adj.is_symmetric());
        assert_eq!(adj.count_ones(), 4);
    }

    #[test]
    fn directed_not_mirrored() {
        let g = GraphBuilder::directed(2)
            .edges([(0, 1)])
            .unwrap()
            .build()
            .unwrap();
        let adj = DenseAdjacency::from_graph(&g);
        assert!(adj.get(0, 1));
        assert!(!adj.get(1, 0));
        assert!(!adj.is_symmetric());
    }

    #[test]
    fn bandwidth_and_coverage() {
        // Path graph 0-1-2-3 has bandwidth 1.
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .build()
            .unwrap();
        let adj = DenseAdjacency::from_graph(&g);
        assert_eq!(adj.bandwidth(), 1);
        assert!((adj.band_coverage(1) - 1.0).abs() < 1e-12);
        // Add a long-range edge: bandwidth jumps, band coverage drops.
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3), (0, 3)])
            .unwrap()
            .build()
            .unwrap();
        let adj = DenseAdjacency::from_graph(&g);
        assert_eq!(adj.bandwidth(), 3);
        assert!((adj.band_coverage(1) - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_conventions() {
        let adj = DenseAdjacency::zeros(0);
        assert!(adj.is_empty());
        assert_eq!(adj.bandwidth(), 0);
        assert!((adj.band_coverage(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let adj = DenseAdjacency::zeros(2);
        adj.get(2, 0);
    }
}
