//! Incremental, validating construction of [`Graph`]s.

use crate::coo::EdgeList;
use crate::error::GraphError;
use crate::graph::{Direction, Graph};

/// Builder for [`Graph`], validating each edge as it is added.
///
/// Follows the non-consuming builder pattern: configuration methods take
/// `&mut self` and the terminal [`GraphBuilder::build`] takes `&self`, so both
/// one-liners and incremental construction read naturally.
///
/// # Example
///
/// ```
/// use mega_graph::GraphBuilder;
///
/// # fn main() -> Result<(), mega_graph::GraphError> {
/// // One-liner.
/// let g = GraphBuilder::undirected(3).edges([(0, 1), (1, 2)])?.build()?;
/// assert_eq!(g.edge_count(), 2);
///
/// // Incremental.
/// let mut b = GraphBuilder::directed(2);
/// b.edge(0, 1)?;
/// b.edge(1, 0)?; // distinct orientation, allowed in a directed graph
/// let d = b.build()?;
/// assert_eq!(d.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    direction: Direction,
    pairs: Vec<(usize, usize)>,
    dedup: bool,
}

impl GraphBuilder {
    /// Starts building an undirected graph over `node_count` nodes.
    pub fn undirected(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            direction: Direction::Undirected,
            pairs: Vec::new(),
            dedup: false,
        }
    }

    /// Starts building a directed graph over `node_count` nodes.
    pub fn directed(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            direction: Direction::Directed,
            pairs: Vec::new(),
            dedup: false,
        }
    }

    /// When enabled, duplicate edges and self-loops are silently dropped at
    /// [`GraphBuilder::build`] time instead of producing errors. Useful for
    /// random generators that may propose collisions.
    pub fn dedup(&mut self, yes: bool) -> &mut Self {
        self.dedup = yes;
        self
    }

    /// Adds a single edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range.
    pub fn edge(&mut self, src: usize, dst: usize) -> Result<&mut Self, GraphError> {
        if src >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: src,
                node_count: self.node_count,
            });
        }
        if dst >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: dst,
                node_count: self.node_count,
            });
        }
        self.pairs.push((src, dst));
        Ok(self)
    }

    /// Adds many edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] on the first invalid endpoint;
    /// edges before it are retained in the builder.
    pub fn edges<I>(&mut self, iter: I) -> Result<&mut Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (s, d) in iter {
            self.edge(s, d)?;
        }
        Ok(self)
    }

    /// Number of edges currently staged.
    pub fn staged_edge_count(&self) -> usize {
        self.pairs.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Propagates [`Graph::from_edge_list`] validation errors (empty graph,
    /// self-loops, duplicates) unless [`GraphBuilder::dedup`] was enabled.
    pub fn build(&self) -> Result<Graph, GraphError> {
        let coo = EdgeList::from_pairs(self.node_count, self.pairs.clone())?;
        let coo = if self.dedup {
            coo.deduplicated(self.direction == Direction::Undirected)
        } else {
            coo
        };
        Graph::from_edge_list(coo, self.direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_undirected() {
        let g = GraphBuilder::undirected(3)
            .edges([(0, 1), (1, 2)])
            .unwrap()
            .build()
            .unwrap();
        assert!(g.is_undirected());
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rejects_out_of_range_eagerly() {
        let mut b = GraphBuilder::undirected(2);
        assert!(b.edge(0, 5).is_err());
        assert_eq!(b.staged_edge_count(), 0);
    }

    #[test]
    fn dedup_mode_tolerates_collisions() {
        let g = GraphBuilder::undirected(3)
            .dedup(true)
            .edges([(0, 1), (1, 0), (1, 1), (1, 2)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn strict_mode_propagates_duplicates() {
        let mut b = GraphBuilder::undirected(3);
        b.edges([(0, 1), (1, 0)]).unwrap();
        assert_eq!(b.build(), Err(GraphError::DuplicateEdge { src: 1, dst: 0 }));
    }
}
