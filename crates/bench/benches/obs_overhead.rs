//! Overhead check for the observability layer (`mega-obs`).
//!
//! Three guarantees, asserted (not just reported):
//!
//! 1. The **disabled path** of every instrumentation call is a few
//!    nanoseconds — one relaxed atomic load and a branch.
//! 2. With instrumentation disabled, a full training run leaves the
//!    registry **completely untouched**.
//! 3. The **estimated overhead** instrumentation adds to training while
//!    disabled — (API calls the run would make) × (measured disabled
//!    per-call cost) / (run wall clock) — is **under 2%**.
//!
//! Run with `cargo bench --bench obs_overhead`. Exits non-zero on any
//! violated bound, so CI can gate on it.

use mega_datasets::{zinc, DatasetSpec};
use mega_gnn::{EngineChoice, GnnConfig, ModelKind, Trainer};
use std::time::Instant;

/// Mean cost in nanoseconds of one disabled instrumentation call,
/// averaged over counters, histograms, and span enter/exit.
fn disabled_per_call_ns() -> f64 {
    mega_obs::set_enabled(false);
    const ITERS: u64 = 1_000_000;
    // 4 API calls per iteration: counter, histogram value, span enter,
    // span exit (the guard drop).
    let t0 = Instant::now();
    for i in 0..ITERS {
        mega_obs::counter_add("bench.disabled.counter", i);
        mega_obs::record_value("bench.disabled.value", i);
        let _span = mega_obs::span("bench_disabled_span");
    }
    t0.elapsed().as_nanos() as f64 / (ITERS as f64 * 4.0)
}

fn trainer() -> (mega_datasets::Dataset, GnnConfig, Trainer) {
    let ds = zinc(&DatasetSpec::tiny(31));
    let cfg = GnnConfig::new(ModelKind::GatedGcn, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(16)
        .with_layers(2)
        .with_heads(2);
    let tr = Trainer::new(EngineChoice::Mega)
        .with_epochs(2)
        .with_batch_size(8);
    (ds, cfg, tr)
}

fn main() {
    mega_obs::report::init_from_env();
    let (ds, cfg, tr) = trainer();

    // 1. Disabled path cost. The bound is deliberately loose (the real
    // cost is single-digit ns) so slow CI machines don't flake.
    let per_call = disabled_per_call_ns();
    mega_obs::data!("disabled per-call cost: {per_call:.2} ns");
    assert!(
        per_call < 250.0,
        "disabled path too slow: {per_call:.1} ns/call"
    );

    // 2. A disabled run records nothing.
    mega_obs::reset();
    mega_obs::set_enabled(false);
    let t0 = Instant::now();
    let hist = tr.run(&ds, cfg.clone());
    let train_ns = t0.elapsed().as_nanos() as f64;
    assert!(hist
        .records
        .last()
        .is_some_and(|r| r.train_loss.is_finite()));
    let snap = mega_obs::snapshot();
    assert!(
        snap.counters.is_empty()
            && snap.gauges.is_empty()
            && snap.values.is_empty()
            && snap.timings.is_empty()
            && snap.spans.is_empty()
            && snap.api_calls == 0,
        "disabled run touched the registry"
    );

    // 3. Estimated disabled-instrumentation overhead of the same run.
    mega_obs::reset();
    mega_obs::set_enabled(true);
    tr.run(&ds, cfg);
    mega_obs::set_enabled(false);
    let api_calls = mega_obs::snapshot().api_calls;
    mega_obs::reset();
    let overhead = api_calls as f64 * per_call / train_ns;
    mega_obs::data!(
        "train: {:.1} ms | instrumentation API calls: {api_calls} | estimated disabled overhead: {:.4}%",
        train_ns / 1e6,
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "estimated disabled-instrumentation overhead {:.3}% exceeds 2%",
        overhead * 100.0
    );
    mega_obs::data!("obs_overhead: all bounds hold");
}
