// `obs-routing` fixture: prints and raw clocks, verdict depends on path.
pub fn debug_dump(epoch: usize) {
    println!("epoch {epoch}");
    eprintln!("warning");
    let t0 = std::time::Instant::now();
    let _ = t0;
}
