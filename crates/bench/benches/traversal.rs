//! Criterion benches of the MEGA preprocessing pipeline: traversal, band
//! construction and full preprocessing over representative topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mega_core::{preprocess, traverse, BandMask, MegaConfig, WindowPolicy};
use mega_graph::{generate, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topologies() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(1);
    vec![
        (
            "molecular-23".into(),
            generate::molecular_chain(23, 3, 3, &mut rng).unwrap(),
        ),
        (
            "csl-41".into(),
            generate::circular_skip_links(41, 5).unwrap(),
        ),
        (
            "ba-500".into(),
            generate::barabasi_albert(500, 3, &mut rng).unwrap(),
        ),
        (
            "er-500".into(),
            generate::erdos_renyi(500, 0.02, &mut rng).unwrap(),
        ),
    ]
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    for (name, g) in topologies() {
        let cfg = MegaConfig::default();
        group.bench_with_input(BenchmarkId::new("algorithm1", &name), &g, |b, g| {
            b.iter(|| traverse(g, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_band(c: &mut Criterion) {
    let mut group = c.benchmark_group("band_mask");
    for (name, g) in topologies() {
        let t = traverse(&g, &MegaConfig::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("build", &name), &t, |b, t| {
            b.iter(|| BandMask::from_traversal(t))
        });
    }
    group.finish();
}

fn bench_preprocess_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_window");
    let mut rng = StdRng::seed_from_u64(2);
    let g = generate::barabasi_albert(300, 4, &mut rng).unwrap();
    for w in [1usize, 4, 16] {
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(w));
        group.bench_with_input(BenchmarkId::new("ba-300", w), &cfg, |b, cfg| {
            b.iter(|| preprocess(&g, cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_traversal,
    bench_band,
    bench_preprocess_windows
);
criterion_main!(benches);
