//! Synthetic benchmark datasets matched to the paper's statistics.
//!
//! The paper evaluates on four graph-prediction datasets (Table II):
//! **ZINC** and **AQSOL** (molecular regression), **CSL** (circular skip
//! links, classification) and **CYCLES** (cycle detection, classification).
//! Those datasets are external artifacts; this crate generates *synthetic
//! equivalents* whose topology statistics match Table II/III — node and edge
//! counts, sparsity, degree-distribution consistency — and whose targets are
//! computable from the graph structure and features, so the models in
//! `mega-gnn` can genuinely learn them.
//!
//! Every generator is deterministic per seed, returns a [`Dataset`] with
//! train/validation/test splits, and documents how its target is derived.
//!
//! # Example
//!
//! ```
//! use mega_datasets::{zinc, DatasetSpec};
//!
//! let ds = zinc(&DatasetSpec::tiny(7));
//! assert_eq!(ds.train.len(), DatasetSpec::tiny(7).train);
//! let sample = &ds.train[0];
//! assert_eq!(sample.node_features.len(), sample.graph.node_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aqsol;
pub mod csl;
pub mod cycles;
pub mod molecular;
pub mod sample;
pub mod spec;

pub use aqsol::aqsol;
pub use csl::csl;
pub use cycles::cycles;
pub use molecular::zinc;
pub use sample::{Dataset, GraphSample, Target, Task};
pub use spec::DatasetSpec;
