//! Property-based tests for the execution backends.
//!
//! Two families:
//!
//! 1. **Blocked ≡ reference** — the cache-tiled [`BlockedBackend`] must be
//!    bit-for-bit identical to [`ReferenceBackend`] for every matmul shape,
//!    including shapes that straddle the `MC`/`KC` tile boundaries and the
//!    serial/parallel flop cutoff, and inputs with exact zeros (the
//!    zero-skip fast path must fire identically in both).
//! 2. **SIMD ≡ reference** — the vectorized [`SimdBackend`] must be
//!    bit-for-bit identical to the reference for every GEMM shape and every
//!    lane implementation (native intrinsics and all portable widths), and
//!    its elementwise family must match element-for-element.
//! 3. **Adjoint structure** — `scatter_add_rows` is the exact adjoint of
//!    `gather_rows` (⟨G x, y⟩ = ⟨x, Gᵀ y⟩), and both agree with central
//!    finite differences of the induced scalar loss.

use mega_core::Parallelism;
use mega_exec::{Backend, BlockedBackend, ReferenceBackend, SimdBackend, Unary};
use proptest::prelude::*;

/// Every lane implementation of the SIMD backend: the portable widths
/// everywhere, plus the auto-detected native path when the host has it.
fn simd_modes() -> Vec<SimdBackend> {
    let mut v = vec![
        SimdBackend::with_portable_lanes(4),
        SimdBackend::with_portable_lanes(8),
        SimdBackend::with_portable_lanes(16),
    ];
    let auto = SimdBackend::new();
    if auto.is_accelerated() {
        v.push(auto);
    }
    v
}

/// Exact bit patterns of a float slice, for whole-vector equality asserts.
fn bit_vec(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Row-major matrix entries with exact zeros mixed in, so the zero-skip
/// branch in the inner kernel is exercised as well as the dense path.
fn arb_matrix(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        prop_oneof![(-2.0f32..2.0).boxed(), Just(0.0f32).boxed()],
        len..=len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BlockedBackend's tiled GEMM is bit-identical to the reference loops
    /// across shapes that cross the 32×64 tile edges and the parallel
    /// cutoff, for 1 and 4 requested threads.
    #[test]
    fn blocked_matmul_bit_identical_to_reference(
        (n, k, m) in (1usize..70, 1usize..70, 1usize..70),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> =
            (0..n * k).map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(-2.0f32..2.0) }).collect();
        let b: Vec<f32> =
            (0..k * m).map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(-2.0f32..2.0) }).collect();
        for threads in [1usize, 4] {
            let par = Parallelism::pinned(threads);
            let mut want = vec![0.0f32; n * m];
            ReferenceBackend.matmul(&a, &b, n, k, m, &par, &mut want);
            let mut got = vec![0.0f32; n * m];
            BlockedBackend.matmul(&a, &b, n, k, m, &par, &mut got);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "threads={}", threads);
            }
        }
    }

    /// The fused bias+ReLU epilogue matches the unfused reference chain
    /// (matmul, then broadcast-add bias, then clamp) bit-for-bit.
    #[test]
    fn blocked_linear_relu_bit_identical_to_reference(
        (n, k, m) in (1usize..48, 1usize..48, 1usize..48),
        x in arb_matrix(48 * 48),
        w in arb_matrix(48 * 48),
        bias in arb_matrix(48),
    ) {
        let par = Parallelism::with_threads(1);
        let x = &x[..n * k];
        let w = &w[..k * m];
        let bias = &bias[..m];
        let mut want = vec![0.0f32; n * m];
        ReferenceBackend.linear_relu(x, w, bias, n, k, m, &par, &mut want);
        let mut got = vec![0.0f32; n * m];
        BlockedBackend.linear_relu(x, w, bias, n, k, m, &par, &mut got);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
        // And the fused op equals the unfused chain through the reference.
        let mut chain = vec![0.0f32; n * m];
        ReferenceBackend.matmul(x, w, n, k, m, &par, &mut chain);
        let mut biased = vec![0.0f32; n * m];
        ReferenceBackend.add_bias_rows(&chain, bias, n, m, &mut biased);
        let mut relued = vec![0.0f32; n * m];
        ReferenceBackend.unary(Unary::Relu, &biased, &mut relued);
        for (g, w) in want.iter().zip(&relued) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// SimdBackend's vectorized GEMM is bit-identical to the reference
    /// loops for every shape, every lane width, and both thread counts —
    /// the lanes split the output columns, never a single element's fold.
    #[test]
    fn simd_matmul_bit_identical_to_reference(
        (n, k, m) in (1usize..70, 1usize..70, 1usize..70),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> =
            (0..n * k).map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(-2.0f32..2.0) }).collect();
        let b: Vec<f32> =
            (0..k * m).map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(-2.0f32..2.0) }).collect();
        for backend in simd_modes() {
            for threads in [1usize, 4] {
                let par = Parallelism::pinned(threads);
                let mut want = vec![0.0f32; n * m];
                ReferenceBackend.matmul(&a, &b, n, k, m, &par, &mut want);
                let mut got = vec![0.0f32; n * m];
                backend.matmul(&a, &b, n, k, m, &par, &mut got);
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(
                        g.to_bits(), w.to_bits(),
                        "lanes={} threads={}", backend.lane_width(), threads
                    );
                }
            }
        }
    }

    /// The SIMD fused linear+ReLU and the elementwise family match the
    /// reference bit-for-bit, including the scalar tail past the last full
    /// vector and the transcendental delegation.
    #[test]
    fn simd_elementwise_and_fused_bit_identical_to_reference(
        (n, k, m, slope) in (1usize..40, 1usize..40, 1usize..40, 0.01f32..0.5),
        x in arb_matrix(40 * 40),
        w in arb_matrix(40 * 40),
        bias in arb_matrix(40),
    ) {
        let par = Parallelism::with_threads(1);
        let x = &x[..n * k];
        let w = &w[..k * m];
        let bias = &bias[..m];
        for backend in simd_modes() {
            let lanes = backend.lane_width();
            let mut want = vec![0.0f32; n * m];
            ReferenceBackend.linear_relu(x, w, bias, n, k, m, &par, &mut want);
            let mut got = vec![0.0f32; n * m];
            backend.linear_relu(x, w, bias, n, k, m, &par, &mut got);
            for (g, r) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), r.to_bits(), "linear_relu lanes={}", lanes);
            }
            let len = (n * k).min(k * m);
            let (a, b) = (&x[..len], &w[..len]);
            let mut want = vec![0.0f32; len];
            let mut got = vec![0.0f32; len];
            ReferenceBackend.add(a, b, &mut want);
            backend.add(a, b, &mut got);
            prop_assert_eq!(bit_vec(&got), bit_vec(&want), "add lanes={}", lanes);
            ReferenceBackend.mul(a, b, &mut want);
            backend.mul(a, b, &mut got);
            prop_assert_eq!(bit_vec(&got), bit_vec(&want), "mul lanes={}", lanes);
            for op in [Unary::Relu, Unary::LeakyRelu(slope), Unary::Sigmoid, Unary::Tanh] {
                ReferenceBackend.unary(op, a, &mut want);
                backend.unary(op, a, &mut got);
                prop_assert_eq!(bit_vec(&got), bit_vec(&want), "{:?} lanes={}", op, lanes);
            }
        }
    }

    /// Threaded GEMM ≡ serial, bit-for-bit, over random shapes × pinned
    /// thread counts {1, 2, 4} × every lane implementation, for both the
    /// plain matmul and the fused `linear_relu` epilogue. The anchor is the
    /// *serial* scalar kernel (`kernels::matmul`), not another parallel
    /// path, so this pins the whole threading stack — row partitioning,
    /// shared packed strips, direct-write fan-out — to the serial fold.
    /// Shapes reach past the `1 << 17` flop cutoff so the fan-out really
    /// runs (pinning bypasses the host-core clamp).
    #[test]
    fn threaded_gemm_bit_identical_to_serial(
        (n, k, m) in (1usize..96, 1usize..96, 1usize..96),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> =
            (0..n * k).map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(-2.0f32..2.0) }).collect();
        let b: Vec<f32> =
            (0..k * m).map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(-2.0f32..2.0) }).collect();
        let bias: Vec<f32> = (0..m).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut serial = vec![0.0f32; n * m];
        mega_exec::kernels::matmul(&a, &b, n, k, m, &mut serial);
        let mut serial_fused = serial.clone();
        mega_exec::kernels::bias_relu_inplace(&mut serial_fused, &bias, n, m);
        let mut dense: Vec<(String, Box<dyn Backend>)> = vec![
            ("reference".into(), Box::new(ReferenceBackend)),
            ("blocked".into(), Box::new(BlockedBackend)),
        ];
        for simd in simd_modes() {
            dense.push((format!("simd-{}", simd.lane_width()), Box::new(simd)));
        }
        for threads in [1usize, 2, 4] {
            let par = Parallelism::pinned(threads);
            for (name, backend) in &dense {
                let mut got = vec![0.0f32; n * m];
                backend.matmul(&a, &b, n, k, m, &par, &mut got);
                prop_assert_eq!(
                    bit_vec(&got), bit_vec(&serial),
                    "matmul {} threads={}", name, threads
                );
                let mut fused = vec![0.0f32; n * m];
                backend.linear_relu(&a, &b, &bias, n, k, m, &par, &mut fused);
                prop_assert_eq!(
                    bit_vec(&fused), bit_vec(&serial_fused),
                    "linear_relu {} threads={}", name, threads
                );
            }
        }
    }

    /// ⟨gather(x), y⟩ = ⟨x, scatter_add(y)⟩ for every index pattern —
    /// scatter_add_rows is the exact adjoint of gather_rows, which is what
    /// the tape's backward pass relies on.
    #[test]
    fn scatter_add_is_adjoint_of_gather(
        (src_rows, cols) in (1usize..12, 1usize..8),
        index in proptest::collection::vec(0usize..12, 1..20),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let index: Vec<usize> = index.into_iter().map(|i| i % src_rows).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f32> = (0..src_rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let y: Vec<f32> = (0..index.len() * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        let mut gx = vec![0.0f32; index.len() * cols];
        ReferenceBackend.gather_rows(&x, src_rows, cols, &index, &mut gx);
        let mut sy = vec![0.0f32; src_rows * cols];
        ReferenceBackend.scatter_add_rows(&y, &index, cols, src_rows, &mut sy);

        let lhs: f64 = gx.iter().zip(&y).map(|(a, b)| *a as f64 * *b as f64).sum();
        let rhs: f64 = x.iter().zip(&sy).map(|(a, b)| *a as f64 * *b as f64).sum();
        prop_assert!(
            (lhs - rhs).abs() <= 1e-4 * lhs.abs().max(1.0),
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    /// Central finite differences of L(x) = ⟨gather(x), y⟩ recover
    /// scatter_add(y): the analytic adjoint matches the numeric gradient.
    #[test]
    fn gather_gradient_matches_finite_differences(
        (src_rows, cols) in (1usize..6, 1usize..5),
        index in proptest::collection::vec(0usize..6, 1..10),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let index: Vec<usize> = index.into_iter().map(|i| i % src_rows).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f32> = (0..src_rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let y: Vec<f32> = (0..index.len() * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        let loss = |x: &[f32]| -> f64 {
            let mut gx = vec![0.0f32; index.len() * cols];
            ReferenceBackend.gather_rows(x, src_rows, cols, &index, &mut gx);
            gx.iter().zip(&y).map(|(a, b)| *a as f64 * *b as f64).sum()
        };
        let mut grad = vec![0.0f32; src_rows * cols];
        ReferenceBackend.scatter_add_rows(&y, &index, cols, src_rows, &mut grad);

        let h = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let numeric = (loss(&xp) - loss(&xm)) / (2.0 * h as f64);
            prop_assert!(
                (numeric - grad[i] as f64).abs() <= 1e-2 * numeric.abs().max(1.0),
                "element {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }
}
