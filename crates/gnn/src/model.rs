//! The full GNN: embeddings → stacked layers → readout head.

use crate::batch::Batch;
use crate::config::{GnnConfig, ModelKind};
use crate::layers::{GatLayer, GatedGcnLayer, GraphTransformerLayer, Layer};
use crate::nn::{Binder, Embedding, Mlp};
use mega_datasets::Task;
use mega_tensor::{ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A complete graph-prediction model.
///
/// # Example
///
/// ```
/// use mega_gnn::{Batch, Gnn, GnnConfig, ModelKind};
/// use mega_datasets::{zinc, DatasetSpec, Task};
/// use mega_tensor::{ParamStore, Tape};
/// use mega_gnn::nn::Binder;
///
/// let ds = zinc(&DatasetSpec::tiny(1));
/// let cfg = GnnConfig::new(ModelKind::GatedGcn, ds.node_vocab, ds.edge_vocab, 1)
///     .with_hidden(16)
///     .with_layers(2);
/// let mut store = ParamStore::new();
/// let model = Gnn::new(&mut store, cfg);
/// let batch = Batch::baseline(&ds.train[..4]);
/// let mut tape = Tape::new();
/// let mut binder = Binder::new();
/// let pred = model.forward(&mut tape, &mut binder, &store, &batch);
/// assert_eq!(tape.value(pred).shape(), (4, 1));
/// ```
#[derive(Debug)]
pub struct Gnn {
    config: GnnConfig,
    node_embed: Embedding,
    edge_embed: Embedding,
    layers: Vec<Layer>,
    head: Mlp,
}

impl Gnn {
    /// Registers all parameters of a model described by `config`.
    pub fn new(store: &mut ParamStore, config: GnnConfig) -> Self {
        config.assert_valid();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = config.hidden_dim;
        let node_embed = Embedding::new(store, "embed.node", config.node_vocab, d, &mut rng);
        let edge_embed = Embedding::new(store, "embed.edge", config.edge_vocab, d, &mut rng);
        let layers = (0..config.layers)
            .map(|i| match config.kind {
                ModelKind::GatedGcn => {
                    Layer::Gcn(GatedGcnLayer::new(store, &format!("layer{i}"), d, &mut rng))
                }
                ModelKind::GraphTransformer => Layer::Gt(GraphTransformerLayer::new(
                    store,
                    &format!("layer{i}"),
                    d,
                    config.heads,
                    &mut rng,
                )),
                ModelKind::Gat => Layer::Gat(GatLayer::new(
                    store,
                    &format!("layer{i}"),
                    d,
                    config.heads,
                    &mut rng,
                )),
            })
            .collect();
        let head = Mlp::new(store, "head", d, d / 2, config.out_dim, &mut rng);
        Gnn {
            config,
            node_embed,
            edge_embed,
            layers,
            head,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &GnnConfig {
        &self.config
    }

    /// Forward pass over a batch; returns per-graph predictions
    /// (`n_graphs × out_dim`).
    pub fn forward(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        batch: &Batch,
    ) -> Var {
        let idx = &batch.indices;
        let mut h = self
            .node_embed
            .forward(tape, binder, store, batch.node_feats.clone());
        let mut e = self
            .edge_embed
            .forward(tape, binder, store, idx.msg_edge_feat.clone());
        for layer in &self.layers {
            let (h2, e2) = layer.forward(tape, binder, store, idx, h, e);
            h = h2;
            e = e2;
        }
        // Mean readout per graph.
        let sums = tape.scatter_add_rows(h, batch.graph_of_node.clone(), batch.n_graphs());
        let inv_sizes: Vec<f32> = batch
            .graph_sizes
            .iter()
            .map(|&s| 1.0 / s.max(1) as f32)
            .collect();
        let means = tape.scale_rows(sums, Arc::new(inv_sizes));
        self.head.forward(tape, binder, store, means)
    }

    /// Builds the task loss for a batch's predictions.
    pub fn loss(&self, tape: &mut Tape, pred: Var, batch: &Batch, task: Task) -> Var {
        match task {
            Task::Regression => tape.l1_loss(pred, batch.regression_targets()),
            Task::Classification { .. } => {
                tape.cross_entropy(pred, Arc::new(batch.class_targets()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::config::EngineChoice;
    use mega_core::{preprocess, MegaConfig};
    use mega_datasets::{csl, zinc, DatasetSpec};

    fn zinc_model(
        d: usize,
        layers: usize,
        kind: ModelKind,
    ) -> (ParamStore, Gnn, Vec<mega_datasets::GraphSample>) {
        let ds = zinc(&DatasetSpec::tiny(5));
        let cfg = GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, 1)
            .with_hidden(d)
            .with_layers(layers)
            .with_heads(2);
        let mut store = ParamStore::new();
        let model = Gnn::new(&mut store, cfg);
        (store, model, ds.train)
    }

    #[test]
    fn regression_forward_and_loss() {
        let (store, model, samples) = zinc_model(8, 2, ModelKind::GatedGcn);
        let batch = Batch::baseline(&samples[..4]);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let pred = model.forward(&mut tape, &mut binder, &store, &batch);
        assert_eq!(tape.value(pred).shape(), (4, 1));
        let loss = model.loss(&mut tape, pred, &batch, Task::Regression);
        assert!(tape.value(loss).at(0, 0).is_finite());
    }

    #[test]
    fn classification_forward_shape() {
        let ds = csl(&DatasetSpec::tiny(6));
        let cfg = GnnConfig::new(ModelKind::GraphTransformer, ds.node_vocab, ds.edge_vocab, 4)
            .with_hidden(8)
            .with_layers(1)
            .with_heads(2);
        let mut store = ParamStore::new();
        let model = Gnn::new(&mut store, cfg);
        let batch = Batch::baseline(&ds.train[..4]);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let pred = model.forward(&mut tape, &mut binder, &store, &batch);
        assert_eq!(tape.value(pred).shape(), (4, 4));
        let loss = model.loss(&mut tape, pred, &batch, Task::Classification { classes: 4 });
        assert!(tape.value(loss).at(0, 0) > 0.0);
    }

    /// The paper's central accuracy claim: the MEGA engine computes the same
    /// function as the baseline (full coverage, per-node softmax/aggregation).
    #[test]
    fn engines_are_numerically_equivalent() {
        for kind in [
            ModelKind::GatedGcn,
            ModelKind::GraphTransformer,
            ModelKind::Gat,
        ] {
            let (store, model, samples) = zinc_model(8, 2, kind);
            let samples = &samples[..3];
            let schedules: Vec<_> = samples
                .iter()
                .map(|s| preprocess(&s.graph, &MegaConfig::default()).unwrap())
                .collect();
            let base = Batch::baseline(samples);
            let mega = Batch::mega(samples, &schedules);
            assert_eq!(mega.indices.engine, EngineChoice::Mega);

            let mut tape_b = Tape::new();
            let mut binder_b = Binder::new();
            let pred_b = model.forward(&mut tape_b, &mut binder_b, &store, &base);
            let mut tape_m = Tape::new();
            let mut binder_m = Binder::new();
            let pred_m = model.forward(&mut tape_m, &mut binder_m, &store, &mega);

            let vb = tape_b.value(pred_b);
            let vm = tape_m.value(pred_m);
            for (a, b) in vb.as_slice().iter().zip(vm.as_slice()) {
                assert!(
                    (a - b).abs() < 2e-3 * (1.0 + a.abs()),
                    "{kind:?}: baseline {a} vs mega {b}"
                );
            }
        }
    }

    #[test]
    fn gt_has_roughly_triple_gcn_parameters() {
        let (store_gcn, _, _) = zinc_model(16, 2, ModelKind::GatedGcn);
        let (store_gt, _, _) = zinc_model(16, 2, ModelKind::GraphTransformer);
        let ratio = store_gt.scalar_count() as f64 / store_gcn.scalar_count() as f64;
        assert!(ratio > 2.0 && ratio < 3.5, "ratio {ratio}");
    }
}
