//! Gates on the `ProfiledBackend` roofline decorator (CI job
//! `report-determinism` runs this in release).
//!
//! Three promises, one test each:
//!
//! 1. **Transparency** — wrapped kernels return bit-identical values to the
//!    inner backend across the kernel family, so attaching the profiler can
//!    never perturb training histories.
//! 2. **Deterministic attribution** — the `exec.profiled.*` calls/flops/
//!    bytes counters are pure functions of the launch shapes: two identical
//!    workloads produce identical counter sets (the property the
//!    byte-compared `mega report` CI gate stands on).
//! 3. **Overhead** — profiling a 512×512×512 GEMM harness costs ≤ 5%
//!    wall-clock versus the bare backend. Stated as a ratio of min-of-reps
//!    timings from the same run, so the gate is machine-speed invariant.
//!    `Instant` is used directly — integration tests are exempt from the
//!    `obs-routing` lint.

use mega_core::Parallelism;
use mega_exec::{Backend, BlockedBackend, ProfiledBackend, ReferenceBackend, Unary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn sample(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Min-of-`reps` wall-clock of `f` in seconds.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn profiled_backend_is_transparent_and_deterministic() {
    let (n, k, m) = (17usize, 23usize, 13usize);
    let a = sample(n * k, 1);
    let b = sample(k * m, 2);
    let bias = sample(m, 3);
    let par = Parallelism::with_threads(1);

    // One profiled workload under enabled obs; capture the counters.
    let run_profiled = || {
        mega_obs::reset();
        mega_obs::set_enabled(true);
        let p = ProfiledBackend::new(Arc::new(ReferenceBackend));
        let mut mm = vec![0.0f32; n * m];
        p.matmul(&a, &b, n, k, m, &par, &mut mm);
        let mut lr = vec![0.0f32; n * m];
        p.linear_relu(&a, &b, &bias, n, k, m, &par, &mut lr);
        let mut ew = vec![0.0f32; n * k];
        p.add(&a, &a, &mut ew);
        p.mul(&a, &a, &mut ew);
        p.unary(Unary::Tanh, &a, &mut ew);
        let index: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
        let mut ga = vec![0.0f32; n * k];
        p.gather_rows(&a, n, k, &index, &mut ga);
        mega_obs::set_enabled(false);
        let counters: Vec<(String, u64)> = mega_obs::snapshot()
            .counters
            .into_iter()
            .filter(|(name, _)| name.starts_with("exec.profiled."))
            .collect();
        mega_obs::reset();
        (mm, lr, ew, ga, counters)
    };
    let (mm, lr, ew, ga, counters) = run_profiled();

    // Transparency: bit-identical to the bare inner backend.
    let bare = ReferenceBackend;
    let mut want = vec![0.0f32; n * m];
    bare.matmul(&a, &b, n, k, m, &par, &mut want);
    assert_eq!(
        mm, want,
        "matmul must be bit-identical through the profiler"
    );
    want.fill(0.0);
    bare.linear_relu(&a, &b, &bias, n, k, m, &par, &mut want);
    assert_eq!(lr, want, "linear_relu must be bit-identical");
    let mut want_ew = vec![0.0f32; n * k];
    bare.unary(Unary::Tanh, &a, &mut want_ew);
    assert_eq!(ew, want_ew, "unary must be bit-identical");
    let index: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
    let mut want_ga = vec![0.0f32; n * k];
    bare.gather_rows(&a, n, k, &index, &mut want_ga);
    assert_eq!(ga, want_ga, "gather_rows must be bit-identical");

    // Attribution: shape-derived and therefore identical across runs.
    let (nm, km, nm2) = (
        n as u64 * k as u64,
        k as u64 * m as u64,
        n as u64 * m as u64,
    );
    let get = |name: &str| {
        counters
            .iter()
            .find(|(c, _)| c == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("exec.profiled.matmul.calls"), 1);
    assert_eq!(
        get("exec.profiled.matmul.flops"),
        2 * n as u64 * k as u64 * m as u64
    );
    assert_eq!(get("exec.profiled.matmul.bytes"), 4 * (nm + km + nm2));
    assert_eq!(
        get("exec.profiled.linear_relu.flops"),
        2 * n as u64 * k as u64 * m as u64 + 2 * nm2,
        "linear_relu must charge the fused epilogue"
    );
    assert_eq!(get("exec.profiled.add.calls"), 1);
    assert_eq!(get("exec.profiled.mul.calls"), 1);
    assert_eq!(get("exec.profiled.unary.calls"), 1);
    assert_eq!(get("exec.profiled.gather_rows.calls"), 1);
    let (_, _, _, _, counters_again) = run_profiled();
    assert_eq!(
        counters, counters_again,
        "attribution counters must be deterministic run to run"
    );
}

#[test]
fn profiling_overhead_within_five_percent_on_gemm_harness() {
    // Tolerance: the acceptance gate is 1.05 in release; debug builds trade
    // optimization for compile time and jitter more, so tier-1 (debug) runs
    // get the scaling-test noise allowance instead. CI enforces 1.05 via
    // the release run in the report-determinism job.
    let tolerance = if cfg!(debug_assertions) { 1.25 } else { 1.05 };
    let (n, k, m) = (512usize, 512usize, 512usize);
    let a = sample(n * k, 21);
    let b = sample(k * m, 22);
    let par = Parallelism::with_threads(1);
    let bare: Arc<dyn Backend> = Arc::new(BlockedBackend);
    let profiled = ProfiledBackend::new(Arc::clone(&bare));
    mega_obs::reset();
    mega_obs::set_enabled(true);
    let mut out = vec![0.0f32; n * m];
    let t_bare = time_min(3, || {
        out.fill(0.0);
        bare.matmul(&a, &b, n, k, m, &par, &mut out);
    });
    let t_profiled = time_min(3, || {
        out.fill(0.0);
        profiled.matmul(&a, &b, n, k, m, &par, &mut out);
    });
    mega_obs::set_enabled(false);
    mega_obs::reset();
    let ratio = t_profiled / t_bare;
    assert!(
        ratio <= tolerance,
        "profiling must cost ≤5% on the 512³ GEMM harness: bare {:.1} ms, \
         profiled {:.1} ms (ratio {ratio:.3}, tolerance {tolerance})",
        t_bare * 1e3,
        t_profiled * 1e3,
    );
}

#[test]
fn measured_calibration_produces_positive_roofs() {
    let c = mega_exec::Calibration::measure(&ReferenceBackend);
    assert!(
        c.gemm_gflops.is_finite() && c.gemm_gflops > 0.0,
        "gemm roof: {}",
        c.gemm_gflops
    );
    assert!(
        c.triad_gbps.is_finite() && c.triad_gbps > 0.0,
        "triad roof: {}",
        c.triad_gbps
    );
}
