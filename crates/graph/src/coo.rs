//! Coordinate-format (COO) edge list.
//!
//! The paper's input format: "The input graph is represented in the coordinate
//! format as a list of vertex pairs, where `(v_src, v_dst)` denotes an edge"
//! (§III-B). [`EdgeList`] is that representation, with validation helpers and
//! conversion into [`crate::Csr`].

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// An edge list in coordinate (COO) format.
///
/// Stores `(src, dst)` pairs together with the number of nodes. For undirected
/// graphs each edge is stored once; the CSR conversion mirrors it.
///
/// # Example
///
/// ```
/// use mega_graph::EdgeList;
///
/// # fn main() -> Result<(), mega_graph::GraphError> {
/// let coo = EdgeList::from_pairs(3, vec![(0, 1), (1, 2)])?;
/// assert_eq!(coo.len(), 2);
/// assert_eq!(coo.pairs()[0], (0, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeList {
    node_count: usize,
    pairs: Vec<(usize, usize)>,
}

impl EdgeList {
    /// Creates an empty edge list over `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        EdgeList {
            node_count,
            pairs: Vec::new(),
        }
    }

    /// Creates an edge list from explicit pairs, validating every endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= node_count`.
    pub fn from_pairs(node_count: usize, pairs: Vec<(usize, usize)>) -> Result<Self, GraphError> {
        for &(s, d) in &pairs {
            if s >= node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: s,
                    node_count,
                });
            }
            if d >= node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: d,
                    node_count,
                });
            }
        }
        Ok(EdgeList { node_count, pairs })
    }

    /// Appends an edge without validation against duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range.
    pub fn push(&mut self, src: usize, dst: usize) -> Result<(), GraphError> {
        if src >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: src,
                node_count: self.node_count,
            });
        }
        if dst >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: dst,
                node_count: self.node_count,
            });
        }
        self.pairs.push((src, dst));
        Ok(())
    }

    /// Number of nodes this edge list is defined over.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of stored edge pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Borrow the raw `(src, dst)` pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Consumes the list, returning the raw pairs.
    pub fn into_pairs(self) -> Vec<(usize, usize)> {
        self.pairs
    }

    /// Returns a copy with all duplicate pairs and self-loops removed.
    ///
    /// For undirected use, `(a, b)` and `(b, a)` are considered duplicates and
    /// only the first-seen orientation is kept when `undirected` is true.
    pub fn deduplicated(&self, undirected: bool) -> EdgeList {
        // mega-lint: allow(unordered-collection, reason = "membership test only; output follows self.pairs order")
        let mut seen = std::collections::HashSet::with_capacity(self.pairs.len());
        let mut out = Vec::with_capacity(self.pairs.len());
        for &(s, d) in &self.pairs {
            if s == d {
                continue;
            }
            let key = if undirected {
                (s.min(d), s.max(d))
            } else {
                (s, d)
            };
            if seen.insert(key) {
                out.push((s, d));
            }
        }
        EdgeList {
            node_count: self.node_count,
            pairs: out,
        }
    }

    /// Iterates over the `(src, dst)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (usize, usize)> {
        self.pairs.iter()
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a (usize, usize);
    type IntoIter = std::slice::Iter<'a, (usize, usize)>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

impl Extend<(usize, usize)> for EdgeList {
    fn extend<T: IntoIterator<Item = (usize, usize)>>(&mut self, iter: T) {
        // Endpoints are validated lazily by Graph construction; extend keeps
        // the collection contract infallible as required by the trait.
        self.pairs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_validates_endpoints() {
        assert!(EdgeList::from_pairs(2, vec![(0, 1)]).is_ok());
        assert_eq!(
            EdgeList::from_pairs(2, vec![(0, 2)]),
            Err(GraphError::NodeOutOfRange {
                node: 2,
                node_count: 2
            })
        );
    }

    #[test]
    fn push_validates() {
        let mut e = EdgeList::new(3);
        e.push(0, 2).unwrap();
        assert!(e.push(3, 0).is_err());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn deduplicated_removes_loops_and_mirrors() {
        let e = EdgeList::from_pairs(3, vec![(0, 1), (1, 0), (1, 1), (1, 2)]).unwrap();
        let und = e.deduplicated(true);
        assert_eq!(und.pairs(), &[(0, 1), (1, 2)]);
        let dir = e.deduplicated(false);
        assert_eq!(dir.pairs(), &[(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn iteration_and_extend() {
        let mut e = EdgeList::new(4);
        e.extend([(0, 1), (2, 3)]);
        let got: Vec<_> = e.iter().copied().collect();
        assert_eq!(got, vec![(0, 1), (2, 3)]);
    }
}
