//! Graph Attention Network layer (Veličković et al. — the paper's reference
//! \[14\] for state-of-the-art graph attention). An extension beyond the
//! paper's two evaluated models, included because MEGA's banded engine
//! applies to any attention-style aggregation.
//!
//! Per head `k` and message `(j → i)`:
//!
//! ```text
//! z = W_k·h
//! s_ji = LeakyReLU(a_src·z_j + a_dst·z_i + a_edge·(E_k·e_ji))
//! α_ji = softmax_i(s_ji)                  (per destination node)
//! agg_i = Σ_j α_ji · z_j
//! h' = h + O(concat_k agg)                (residual)
//! ```
//!
//! Edge states pass through unchanged (classic GAT does not update them).

use crate::batch::EngineIndices;
use crate::nn::{Binder, Linear, NormParams};
use mega_tensor::{ParamStore, Tape, Var};
use rand::Rng;

/// Negative slope of the attention LeakyReLU (the GAT paper's 0.2).
const LEAKY_SLOPE: f32 = 0.2;

/// Parameters of one GAT layer.
#[derive(Debug, Clone)]
pub struct GatLayer {
    heads: usize,
    w: Vec<Linear>,
    e: Vec<Linear>,
    a_src: Vec<Linear>,
    a_dst: Vec<Linear>,
    a_edge: Vec<Linear>,
    o: Linear,
    ln: NormParams,
}

impl GatLayer {
    /// Registers layer parameters of width `d` with `heads` attention heads.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            heads > 0 && d.is_multiple_of(heads),
            "heads {heads} must divide width {d}"
        );
        let hd = d / heads;
        let mut per_head = |what: &str, d_in: usize, d_out: usize, rng: &mut R| -> Vec<Linear> {
            (0..heads)
                .map(|h| Linear::new(store, &format!("{name}.{what}{h}"), d_in, d_out, rng))
                .collect()
        };
        GatLayer {
            heads,
            w: per_head("W", d, hd, rng),
            e: per_head("E", d, hd, rng),
            a_src: per_head("a_src", hd, 1, rng),
            a_dst: per_head("a_dst", hd, 1, rng),
            a_edge: per_head("a_edge", hd, 1, rng),
            o: Linear::new(store, &format!("{name}.O"), d, d, rng),
            ln: NormParams::new(store, &format!("{name}.ln"), d),
        }
    }

    /// Applies the layer; edge states are returned untouched.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        idx: &EngineIndices,
        h: Var,
        e: Var,
    ) -> (Var, Var) {
        let n = idx.n_nodes;
        let h_work = tape.gather_rows(h, idx.node_to_work.clone());
        let mut aggs = Vec::with_capacity(self.heads);
        for k in 0..self.heads {
            let z = self.w[k].forward(tape, binder, store, h_work);
            let ek = self.e[k].forward(tape, binder, store, e);
            let z_src = tape.gather_rows(z, idx.msg_src_work.clone());
            let z_dst = tape.gather_rows(z, idx.msg_dst_work.clone());
            let s_src = self.a_src[k].forward(tape, binder, store, z_src);
            let s_dst = self.a_dst[k].forward(tape, binder, store, z_dst);
            let s_edge = self.a_edge[k].forward(tape, binder, store, ek);
            let s1 = tape.add(s_src, s_dst);
            let s2 = tape.add(s1, s_edge);
            let score = tape.leaky_relu(s2, LEAKY_SLOPE);
            let attn = tape.segment_softmax(score, idx.msg_dst_node.clone(), n);
            let weighted = tape.mul_col_broadcast(z_src, attn);
            let agg = tape.scatter_add_rows(weighted, idx.msg_dst_node.clone(), n);
            aggs.push(agg);
        }
        let cat = tape.concat_cols(&aggs);
        let proj = self.o.forward(tape, binder, store, cat);
        let res = tape.add(h, proj);
        let out = self.ln.layer_norm(tape, binder, store, res);
        (out, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use mega_datasets::{zinc, DatasetSpec};
    use mega_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_gradients() {
        let samples: Vec<_> = zinc(&DatasetSpec::tiny(31))
            .train
            .into_iter()
            .take(2)
            .collect();
        let batch = Batch::baseline(&samples);
        let d = 8;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GatLayer::new(&mut store, "g0", d, 2, &mut rng);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        // Varied inputs — constant rows make the softmax gradient vanish.
        let varied = |rows: usize, seed: u32| {
            let data: Vec<f32> = (0..rows * d)
                .map(|i| {
                    (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 9) % 997) as f32
                        / 997.0
                        - 0.5
                })
                .collect();
            Tensor::from_vec(rows, d, data)
        };
        let h = tape.leaf(varied(batch.indices.n_nodes, 3));
        let e = tape.leaf(varied(batch.indices.msg_count(), 4));
        let (h2, e2) = layer.forward(&mut tape, &mut binder, &store, &batch.indices, h, e);
        assert_eq!(tape.value(h2).shape(), (batch.indices.n_nodes, d));
        assert_eq!(e2, e, "GAT passes edge states through");

        let loss = tape.mean(h2);
        let grads = tape.backward(loss);
        binder.apply(&mut store, &grads);
        let w0 = store.id_of("g0.W0.w").unwrap();
        assert!(store.grad(w0).norm() > 0.0, "gradient must reach W");
        let a0 = store.id_of("g0.a_src0.w").unwrap();
        assert!(
            store.grad(a0).norm() > 0.0,
            "gradient must reach attention vector"
        );
    }

    #[test]
    fn attention_weights_normalize_per_node() {
        // Indirect check: with one head and identity-ish setup the aggregated
        // output is a convex combination of neighbor z rows, so its per-row
        // magnitude is bounded by the max neighbor magnitude.
        let samples: Vec<_> = zinc(&DatasetSpec::tiny(32))
            .train
            .into_iter()
            .take(1)
            .collect();
        let batch = Batch::baseline(&samples);
        let d = 4;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GatLayer::new(&mut store, "g", d, 1, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let h = tape.leaf(Tensor::full(batch.indices.n_nodes, d, 1.0));
        let e = tape.leaf(Tensor::zeros(batch.indices.msg_count(), d));
        let (h2, _) = layer.forward(&mut tape, &mut binder, &store, &batch.indices, h, e);
        assert!(!tape.value(h2).has_non_finite());
    }
}
