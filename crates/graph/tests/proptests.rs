//! Property-based tests for the graph substrate.

use mega_graph::{algo, generate, ks, Csr, DenseAdjacency, EdgeList, Graph, GraphBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing an arbitrary simple undirected graph as (n, edges).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges.min(80)).prop_map(move |pairs| {
            let mut b = GraphBuilder::undirected(n);
            b.dedup(true);
            for (a, c) in pairs {
                b.edge(a, c).unwrap();
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #[test]
    fn csr_degree_sum_equals_two_m(g in arb_graph()) {
        let total: usize = (0..g.node_count()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn csr_round_trips_edges(g in arb_graph()) {
        // Every stored edge must be visible from both endpoints.
        for (s, d) in g.edges() {
            prop_assert!(g.contains_edge(s, d));
            prop_assert!(g.contains_edge(d, s));
        }
    }

    #[test]
    fn csr_neighbors_sorted_and_deduplicated(g in arb_graph()) {
        for v in 0..g.node_count() {
            let nbrs = g.neighbors(v);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn dense_adjacency_matches_csr(g in arb_graph()) {
        let adj = DenseAdjacency::from_graph(&g);
        prop_assert!(adj.is_symmetric());
        for a in 0..g.node_count() {
            for b in 0..g.node_count() {
                prop_assert_eq!(adj.get(a, b), g.contains_edge(a, b));
            }
        }
    }

    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let (comp, count) = algo::connected_components(&g);
        prop_assert_eq!(comp.len(), g.node_count());
        prop_assert!(comp.iter().all(|&c| c < count));
        // Edges never cross components.
        for (s, d) in g.edges() {
            prop_assert_eq!(comp[s], comp[d]);
        }
    }

    #[test]
    fn bfs_distances_respect_edges(g in arb_graph()) {
        let r = algo::bfs(&g, 0);
        for (s, d) in g.edges() {
            if r.dist[s] != usize::MAX {
                prop_assert!(r.dist[d] != usize::MAX);
                prop_assert!(r.dist[s].abs_diff(r.dist[d]) <= 1);
            }
        }
    }

    #[test]
    fn ks_statistic_bounds_and_symmetry(
        a in proptest::collection::vec(0.0f64..100.0, 1..50),
        b in proptest::collection::vec(0.0f64..100.0, 1..50),
    ) {
        let d = ks::statistic(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - ks::statistic(&b, &a)).abs() < 1e-12);
        prop_assert!(ks::statistic(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn sparsity_in_unit_interval(g in arb_graph()) {
        let s = g.sparsity();
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn erdos_renyi_edge_count_within_bounds(n in 2usize..50, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::erdos_renyi(n, 0.3, &mut rng).unwrap();
        prop_assert!(g.edge_count() <= n * (n - 1) / 2);
    }

    #[test]
    fn edge_list_dedup_idempotent(
        n in 2usize..20,
        pairs in proptest::collection::vec((0usize..20, 0usize..20), 0..40),
    ) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let e = EdgeList::from_pairs(n, pairs).unwrap();
        let once = e.deduplicated(true);
        let twice = once.deduplicated(true);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn csr_from_dedup_has_no_self_loop_slots(
        n in 2usize..20,
        pairs in proptest::collection::vec((0usize..20, 0usize..20), 0..40),
    ) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let e = EdgeList::from_pairs(n, pairs).unwrap().deduplicated(true);
        let csr = Csr::from_edge_list(&e, true);
        for v in 0..n {
            prop_assert!(!csr.neighbors(v).contains(&v));
        }
    }
}
