//! The lint rules themselves.
//!
//! Each rule is a pure function over one scanned line (plus, for the unsafe
//! hygiene rules, the lines above it) and the file's workspace-relative
//! path. Path scoping is part of a rule's definition — e.g. `unsafe-scope`
//! exempts exactly `crates/exec/src/simd.rs`, and `obs-routing` exempts the
//! observability crate, benchmarks, examples, and tests — so the same
//! source text can be clean at one path and a violation at another.

use crate::scan::{self, Line};
use crate::{Finding, Rule};

/// The one file allowed to contain `unsafe` code.
const UNSAFE_HOME: &str = "crates/exec/src/simd.rs";

/// The one kernel file whose iterator float accumulations are audited and
/// allowlisted (documented ascending-order folds in layer/batch norm).
const REASSOC_ALLOWLIST: &str = "crates/exec/src/kernels.rs";

/// Identifier fragments that imply fused or horizontally-reduced float
/// arithmetic: FMA rounds once where mul-then-add rounds twice, and
/// horizontal adds / dot-product / reduce intrinsics fold lanes in a
/// tree order, so any of these silently breaks bit-exactness with the
/// reference backend.
const FMA_FRAGMENTS: [&str; 4] = ["fmadd", "fmsub", "hadd", "dp_ps"];

/// Iterator-adapter float accumulations whose fold order the optimizer may
/// re-associate; outside the allowlist they must be explicit ascending
/// index loops.
const REASSOC_PATTERNS: [&str; 4] = ["sum::<f32", "sum::<f64", "product::<f32", "product::<f64"];

/// Console macros that bypass the observability layer.
const PRINT_MACROS: [&str; 4] = ["println!", "eprintln!", "print!", "eprint!"];

/// Raw clock reads that bypass `mega_obs::Stopwatch` / `mega_obs::timer`.
const CLOCK_READS: [&str; 2] = ["Instant::now", "SystemTime::now"];

/// `src/` trees whose collections can reach numeric results or emitted
/// orderings, where seed-dependent `HashMap`/`HashSet` iteration would
/// break run-to-run determinism.
pub(crate) const ORDER_SENSITIVE: [&str; 11] = [
    "src/",
    "crates/graph/src/",
    "crates/core/src/",
    "crates/exec/src/",
    "crates/wl/src/",
    "crates/tensor/src/",
    "crates/gnn/src/",
    "crates/datasets/src/",
    "crates/gpu-sim/src/",
    "crates/dist/src/",
    "crates/cli/src/",
];

/// The audited fusion surface: the only places allowed to *define* fused
/// composite kernels. `crates/exec/src/` holds the kernels, backend
/// drivers, and `Backend` trait defaults; the tape's planner files hold
/// the recording/dispatch entry points; the GPU simulator models fused
/// launches without real arithmetic.
const FUSION_HOMES: [&str; 4] = [
    "crates/exec/src/",
    "crates/gpu-sim/src/",
    "crates/tensor/src/tape.rs",
    "crates/tensor/src/plan.rs",
];

/// Name fragments that mark a fused composite kernel: a GEMM with a
/// folded-in epilogue, a scaled add, or a normalization with a fused
/// activation. A `fn` whose name carries one of these implements (or
/// wraps) arithmetic whose bit-exactness proof must live with the audited
/// kernels, not in model or trainer code.
const FUSED_KERNEL_FRAGMENTS: [&str; 6] = [
    "linear_relu",
    "linear_leaky",
    "bias_relu",
    "bias_leaky",
    "axpy",
    "norm_act",
];

/// Runs every rule over the scanned file, appending raw (pre-suppression)
/// findings.
pub fn run(path: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        no_fma(path, lineno, line, findings);
        float_reassoc(path, lineno, line, findings);
        unsafe_hygiene(path, lineno, idx, lines, findings);
        obs_routing(path, lineno, line, findings);
        unordered_collection(path, lineno, line, findings);
        fusion_scope(path, lineno, line, findings);
    }
}

fn emit(findings: &mut Vec<Finding>, path: &str, line: usize, rule: Rule, message: String) {
    findings.push(Finding {
        file: path.to_string(),
        line,
        rule,
        message,
    });
}

/// `no-fma`: applies to every file. Bit-exactness across backends depends
/// on every float op rounding exactly like the reference loops.
fn no_fma(path: &str, lineno: usize, line: &Line, findings: &mut Vec<Finding>) {
    for ident in scan::identifiers(&line.code) {
        let banned = ident == "mul_add"
            || FMA_FRAGMENTS.iter().any(|f| ident.contains(f))
            || (ident.starts_with("_mm") && ident.contains("reduce"));
        if banned {
            emit(
                findings,
                path,
                lineno,
                Rule::NoFma,
                format!(
                    "`{ident}` fuses or reorders float arithmetic; the bit-exactness \
                     contract requires separate mul/add folded in ascending order"
                ),
            );
        }
    }
}

/// `float-reassoc`: applies inside `crates/exec/src/` except the audited
/// kernels file.
fn float_reassoc(path: &str, lineno: usize, line: &Line, findings: &mut Vec<Finding>) {
    if !path.starts_with("crates/exec/src/") || path == REASSOC_ALLOWLIST {
        return;
    }
    for pat in REASSOC_PATTERNS {
        if scan::contains_token(&line.code, pat) {
            emit(
                findings,
                path,
                lineno,
                Rule::FloatReassoc,
                format!(
                    "iterator float accumulation `{pat}>()` outside the audited \
                     {REASSOC_ALLOWLIST} allowlist; write an explicit ascending-index fold"
                ),
            );
        }
    }
}

/// `unsafe-scope` + `undocumented-unsafe`: `unsafe` may appear only in the
/// SIMD backend, and every occurrence anywhere needs an adjacent
/// `// SAFETY:` comment.
fn unsafe_hygiene(
    path: &str,
    lineno: usize,
    idx: usize,
    lines: &[Line],
    findings: &mut Vec<Finding>,
) {
    if !scan::identifiers(&lines[idx].code).any(|id| id == "unsafe") {
        return;
    }
    if path != UNSAFE_HOME {
        emit(
            findings,
            path,
            lineno,
            Rule::UnsafeScope,
            format!("`unsafe` outside {UNSAFE_HOME}; the workspace confines unsafe code to the SIMD backend"),
        );
    }
    let mut documented = lines[idx].comment.contains("SAFETY:");
    let mut j = idx;
    while !documented && j > 0 {
        j -= 1;
        let above = &lines[j];
        if !above.is_comment_only() || above.comment.trim().is_empty() {
            break;
        }
        documented = above.comment.contains("SAFETY:");
    }
    if !documented {
        emit(
            findings,
            path,
            lineno,
            Rule::UndocumentedUnsafe,
            "`unsafe` without an adjacent `// SAFETY:` comment stating why the invariants hold"
                .to_string(),
        );
    }
}

fn obs_exempt(path: &str) -> bool {
    path.starts_with("crates/obs/")
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/analysis/")
        || path.starts_with("examples/")
        || path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// `obs-routing`: console output and raw clock reads must go through
/// mega-obs (report macros; `Stopwatch`/`timer`) so tracing stays
/// centrally gated and uniformly formatted.
fn obs_routing(path: &str, lineno: usize, line: &Line, findings: &mut Vec<Finding>) {
    if obs_exempt(path) {
        return;
    }
    for pat in PRINT_MACROS {
        if scan::contains_token(&line.code, pat) {
            emit(
                findings,
                path,
                lineno,
                Rule::ObsRouting,
                format!("`{pat}` bypasses mega-obs; route output through the report macros"),
            );
        }
    }
    for pat in CLOCK_READS {
        if scan::contains_token(&line.code, pat) {
            emit(
                findings,
                path,
                lineno,
                Rule::ObsRouting,
                format!(
                    "raw `{pat}` bypasses mega-obs; use `mega_obs::Stopwatch` (always-on \
                     phase timing) or `mega_obs::timer()` (gated metrics)"
                ),
            );
        }
    }
}

/// `fusion-scope`: fused composite kernels may be defined only on the
/// audited fusion surface. Call sites (`backend.axpy(...)`) are free;
/// the rule fires on `fn` *definitions* whose name carries a fused-kernel
/// fragment, in result-affecting `src/` trees outside [`FUSION_HOMES`].
fn fusion_scope(path: &str, lineno: usize, line: &Line, findings: &mut Vec<Finding>) {
    if !ORDER_SENSITIVE.iter().any(|p| path.starts_with(p))
        || path.contains("/tests/")
        || FUSION_HOMES.iter().any(|p| path.starts_with(p))
    {
        return;
    }
    let mut prev_is_fn = false;
    for ident in scan::identifiers(&line.code) {
        if prev_is_fn {
            if let Some(frag) = FUSED_KERNEL_FRAGMENTS.iter().find(|f| ident.contains(**f)) {
                emit(
                    findings,
                    path,
                    lineno,
                    Rule::FusionScope,
                    format!(
                        "`fn {ident}` defines a fused composite kernel (`*{frag}*`) outside \
                         the audited fusion surface (crates/exec, the tape planner, the GPU \
                         simulator); route fused arithmetic through the `Backend` trait"
                    ),
                );
            }
        }
        prev_is_fn = ident == "fn";
    }
}

/// `unordered-collection`: seed-dependent iteration order is banned in
/// result-affecting crates unless a pragma argues the site is
/// order-insensitive.
fn unordered_collection(path: &str, lineno: usize, line: &Line, findings: &mut Vec<Finding>) {
    if !ORDER_SENSITIVE.iter().any(|p| path.starts_with(p)) || path.contains("/tests/") {
        return;
    }
    for ident in scan::identifiers(&line.code) {
        if ident == "HashMap" || ident == "HashSet" {
            emit(
                findings,
                path,
                lineno,
                Rule::UnorderedCollection,
                format!(
                    "`{ident}` iterates in seed-dependent order; use BTreeMap/BTreeSet/Vec, \
                     or suppress with a pragma stating why order cannot reach results"
                ),
            );
        }
    }
}
