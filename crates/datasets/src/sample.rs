//! Dataset container types.

use mega_graph::{DatasetStats, Graph};

/// The prediction target of one graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// A scalar regression target.
    Regression(f32),
    /// A class index.
    Class(usize),
}

impl Target {
    /// The regression value.
    ///
    /// # Panics
    ///
    /// Panics on classification targets.
    pub fn value(&self) -> f32 {
        match self {
            Target::Regression(v) => *v,
            Target::Class(_) => panic!("classification target has no regression value"),
        }
    }

    /// The class index.
    ///
    /// # Panics
    ///
    /// Panics on regression targets.
    pub fn class(&self) -> usize {
        match self {
            Target::Class(c) => *c,
            Target::Regression(_) => panic!("regression target has no class"),
        }
    }
}

/// The task a dataset poses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Graph regression (L1/MAE loss).
    Regression,
    /// Graph classification with this many classes (cross-entropy loss).
    Classification {
        /// Number of classes.
        classes: usize,
    },
}

/// One labeled graph with categorical node and edge features.
#[derive(Debug, Clone)]
pub struct GraphSample {
    /// The topology.
    pub graph: Graph,
    /// One categorical feature id per node.
    pub node_features: Vec<usize>,
    /// One categorical feature id per edge (indexed by edge id).
    pub edge_features: Vec<usize>,
    /// The prediction target.
    pub target: Target,
}

impl GraphSample {
    /// Validates internal consistency (feature lengths match the graph).
    pub fn is_consistent(&self) -> bool {
        self.node_features.len() == self.graph.node_count()
            && self.edge_features.len() == self.graph.edge_count()
    }
}

/// A generated dataset with splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name ("ZINC", "AQSOL", "CSL", "CYCLES").
    pub name: String,
    /// The task posed.
    pub task: Task,
    /// Size of the node-feature vocabulary.
    pub node_vocab: usize,
    /// Size of the edge-feature vocabulary.
    pub edge_vocab: usize,
    /// Training split.
    pub train: Vec<GraphSample>,
    /// Validation split.
    pub val: Vec<GraphSample>,
    /// Test split.
    pub test: Vec<GraphSample>,
}

impl Dataset {
    /// All samples across splits.
    pub fn all_samples(&self) -> impl Iterator<Item = &GraphSample> {
        self.train.iter().chain(&self.val).chain(&self.test)
    }

    /// Table II / III statistics over the whole dataset.
    pub fn stats(&self, max_ks_pairs: usize) -> DatasetStats {
        let graphs: Vec<Graph> = self.all_samples().map(|s| s.graph.clone()).collect();
        DatasetStats::of(&graphs, max_ks_pairs)
    }

    /// Checks all samples for consistency and feature-vocabulary bounds.
    pub fn validate(&self) -> bool {
        self.all_samples().all(|s| {
            s.is_consistent()
                && s.node_features.iter().all(|&f| f < self.node_vocab)
                && s.edge_features.iter().all(|&f| f < self.edge_vocab)
                && match (self.task, s.target) {
                    (Task::Regression, Target::Regression(v)) => v.is_finite(),
                    (Task::Classification { classes }, Target::Class(c)) => c < classes,
                    _ => false,
                }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::generate;

    fn sample() -> GraphSample {
        let g = generate::cycle(4).unwrap();
        GraphSample {
            node_features: vec![0; 4],
            edge_features: vec![0; 4],
            target: Target::Regression(1.5),
            graph: g,
        }
    }

    #[test]
    fn consistency_checks() {
        let s = sample();
        assert!(s.is_consistent());
        let mut bad = s.clone();
        bad.node_features.pop();
        assert!(!bad.is_consistent());
    }

    #[test]
    fn target_accessors() {
        assert_eq!(Target::Regression(2.0).value(), 2.0);
        assert_eq!(Target::Class(3).class(), 3);
    }

    #[test]
    #[should_panic(expected = "no class")]
    fn regression_target_has_no_class() {
        let _ = Target::Regression(1.0).class();
    }

    #[test]
    fn dataset_validate_catches_bad_vocab() {
        let mut ds = Dataset {
            name: "T".into(),
            task: Task::Regression,
            node_vocab: 1,
            edge_vocab: 1,
            train: vec![sample()],
            val: vec![],
            test: vec![],
        };
        assert!(ds.validate());
        ds.train[0].node_features[0] = 7; // out of vocab
        assert!(!ds.validate());
    }

    #[test]
    fn dataset_validate_catches_task_mismatch() {
        let mut ds = Dataset {
            name: "T".into(),
            task: Task::Classification { classes: 2 },
            node_vocab: 1,
            edge_vocab: 1,
            train: vec![sample()],
            val: vec![],
            test: vec![],
        };
        assert!(!ds.validate()); // regression target under classification task
        ds.train[0].target = Target::Class(1);
        assert!(ds.validate());
    }
}
