//! `mega-lint` — the workspace invariant linter.
//!
//! Usage: `cargo run -p mega-analysis --bin mega-lint -- --workspace`
//!
//! Scans every Rust source in the workspace against the rule catalog in
//! `mega_analysis::Rule` — token rules plus the call-graph rules
//! (determinism-taint, unsafe-reach, panic-surface, span-coverage,
//! stale-pragma) — prints findings as `file:line: [rule] message`, applies
//! the checked-in ratchet baselines, and exits non-zero when anything
//! gates — which is how CI turns the project invariants into a merge gate.

use mega_analysis::{audit, render_json, Analysis};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: mega-lint --workspace [--root <dir>] [--format text|json] [--update-audits]

Lints every Rust source in the workspace against the MEGA invariant rules
(bit-exactness, unsafe hygiene, obs routing, determinism taint, unsafe/panic
reachability, span coverage). Exits 1 when any finding survives suppression
pragmas and the ratchet baselines, 2 on usage errors.

  --workspace       lint the enclosing cargo workspace (required)
  --root <dir>      use <dir> as the workspace root instead of discovering
                    it from the current directory
  --format <fmt>    output format: text (default) or json (full analysis,
                    including ratchet-tolerated findings)
  --update-audits   rewrite crates/analysis/audit/unsafe_reach.txt from the
                    computed reach set and refresh ratchet counts downward;
                    review the diff before committing
";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--update-audits" => update = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text|json)"))
                }
                None => return usage_error("--format needs text or json"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("pass --workspace");
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match mega_analysis::find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!("mega-lint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match mega_analysis::analyze_workspace(&root) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("mega-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if update {
        if let Err(err) = write_audits(&root, &analysis) {
            eprintln!("mega-lint: failed to update audit files: {err}");
            return ExitCode::from(2);
        }
        println!(
            "mega-lint: wrote {} entries to {} and refreshed {}",
            analysis.unsafe_reach.len(),
            audit::UNSAFE_AUDIT,
            audit::RATCHET_FILE,
        );
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", render_json(&analysis));
        return if analysis.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let gate = analysis.gate();
    for r in &analysis.ratchet {
        if r.count < r.baseline {
            println!(
                "mega-lint: note: `{}` is at {} findings, below its baseline of {} — \
                 tighten {} to lock the progress in",
                r.rule.id(),
                r.count,
                r.baseline,
                audit::RATCHET_FILE,
            );
        }
    }
    if gate.is_empty() {
        println!("mega-lint: clean — {} files checked", analysis.files);
        ExitCode::SUCCESS
    } else {
        for finding in &gate {
            println!("{finding}");
        }
        println!(
            "mega-lint: {} finding(s) in {} files checked",
            gate.len(),
            analysis.files
        );
        ExitCode::from(1)
    }
}

/// Rewrites the unsafe-reach inventory from the computed set and lowers
/// any ratchet baseline that the current count has dropped below. Baselines
/// are never raised here: adding headroom is a reviewed, manual edit.
fn write_audits(root: &std::path::Path, a: &Analysis) -> std::io::Result<()> {
    let unsafe_path = root.join(audit::UNSAFE_AUDIT);
    if let Some(dir) = unsafe_path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut inventory = String::from(
        "# Public fns that transitively reach an `unsafe` block (static call\n\
         # edges). Exact inventory: additions AND stale entries fail mega-lint.\n\
         # Regenerate with `mega-lint --workspace --update-audits` and review.\n",
    );
    for entry in &a.unsafe_reach {
        inventory.push_str(entry);
        inventory.push('\n');
    }
    std::fs::write(&unsafe_path, inventory)?;
    let ratchet_path = root.join(audit::RATCHET_FILE);
    if ratchet_path.exists() {
        let old = std::fs::read_to_string(&ratchet_path)?;
        let mut out = String::new();
        for line in old.lines() {
            let trimmed = line.trim();
            let rewritten = trimmed.split_once(char::is_whitespace).and_then(|(id, _)| {
                let rule = mega_analysis::Rule::from_id(id.trim())?;
                let status = a.ratchet.iter().find(|r| r.rule == rule)?;
                (status.count < status.baseline).then(|| format!("{} {}", rule.id(), status.count))
            });
            out.push_str(&rewritten.unwrap_or_else(|| line.to_string()));
            out.push('\n');
        }
        std::fs::write(&ratchet_path, out)?;
    }
    Ok(())
}

fn usage_error(why: &str) -> ExitCode {
    eprintln!("mega-lint: {why}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
