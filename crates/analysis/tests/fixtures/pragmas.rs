// Pragma fixture: both suppression forms must silence their site; the
// control site at the bottom must still fire.
use std::collections::HashMap; // mega-lint: allow(unordered-collection, reason = "fixture: same-line form")

// mega-lint: allow(unordered-collection, reason = "fixture: line-above form")
use std::collections::HashSet;

pub fn control() -> HashMap<u8, u8> {
    let _ = HashSet::<u8>::new();
    HashMap::new()
}
