//! Graph substrate for the MEGA reproduction.
//!
//! This crate provides the graph data structures and utilities that every other
//! crate in the workspace builds on:
//!
//! * [`Graph`] — the central graph type (undirected or directed), backed by a
//!   compressed sparse row ([`Csr`]) index built from a coordinate-format edge
//!   list ([`EdgeList`]).
//! * [`GraphBuilder`] — incremental, validating construction of [`Graph`]s.
//! * [`stats`] — degree and sparsity statistics used to reproduce Tables II and
//!   III of the paper.
//! * [`ks`] — the two-sample Kolmogorov–Smirnov test used by the paper to show
//!   that degree distributions are consistent within a dataset.
//! * [`algo`] — breadth-first search and connected components, used by the
//!   traversal and the test suites.
//! * [`generate`] — generic random-graph generators (Erdős–Rényi,
//!   Barabási–Albert, cycles with skip links, …). Dataset-specific generators
//!   matched to the paper's benchmark statistics live in `mega-datasets`.
//!
//! # Example
//!
//! ```
//! use mega_graph::{Graph, GraphBuilder};
//!
//! # fn main() -> Result<(), mega_graph::GraphError> {
//! let mut b = GraphBuilder::undirected(4);
//! b.edge(0, 1)?.edge(1, 2)?.edge(2, 3)?.edge(3, 0)?;
//! let g: Graph = b.build()?;
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.degree(0), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod builder;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod generate;
pub mod graph;
pub mod io;
pub mod ks;
pub mod stats;

pub use builder::GraphBuilder;
pub use coo::EdgeList;
pub use csr::Csr;
pub use dense::DenseAdjacency;
pub use error::GraphError;
pub use graph::{Direction, Graph, NodeId};
pub use stats::{DatasetStats, DegreeStats};
