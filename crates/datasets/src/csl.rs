//! CSL-like (circular skip links) classification dataset.
//!
//! CSL graphs (Murphy et al.) are 4-regular: `n` nodes in a cycle plus skip
//! links of a fixed stride; the class is the stride. Table II/III: 41 nodes,
//! 164 adjacency slots (4-regular ⇒ 2·2n), sparsity 0.098, *zero* degree
//! variance and perfect KS similarity — every graph in the dataset shares the
//! identical degree sequence.
//!
//! Plain message passing cannot distinguish CSL classes (all graphs are
//! WL-indistinguishable), so — as in the benchmark the paper builds on
//! (Dwivedi et al.) — nodes carry a positional index feature; the class
//! remains a pure function of topology. Edge features distinguish cycle
//! edges from skip edges.

use crate::sample::{Dataset, GraphSample, Target, Task};
use crate::spec::DatasetSpec;
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Number of nodes in every CSL graph (matches Table II).
pub const CSL_NODES: usize = 41;
/// The skip strides used as classes ("4 types of regular graphs").
pub const CSL_SKIPS: [usize; 4] = [2, 3, 4, 5];

/// Generates the CSL-like dataset. Every sample is a circular-skip-link graph
/// on [`CSL_NODES`] nodes with one of the [`CSL_SKIPS`] strides; the class is
/// the stride index. Node labels are randomly rotated so the positional
/// feature does not trivially encode the class.
pub fn csl(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let make = |count: usize, rng: &mut StdRng| -> Vec<GraphSample> {
        (0..count)
            .map(|i| {
                let class = i % CSL_SKIPS.len();
                csl_sample(class, rng)
            })
            .collect()
    };
    let mut train = make(spec.train, &mut rng);
    train.shuffle(&mut rng);
    let val = make(spec.val, &mut rng);
    let test = make(spec.test, &mut rng);
    Dataset {
        name: "CSL".to_string(),
        task: Task::Classification {
            classes: CSL_SKIPS.len(),
        },
        node_vocab: CSL_NODES,
        edge_vocab: 2,
        train,
        val,
        test,
    }
}

fn csl_sample(class: usize, rng: &mut StdRng) -> GraphSample {
    let skip = CSL_SKIPS[class];
    let base = generate::circular_skip_links(CSL_NODES, skip)
        .expect("CSL parameters are valid by construction");
    // Random rotation of positional ids: relabel node v as (v + r) mod n.
    let r = rng.gen_range(0..CSL_NODES);
    let node_features: Vec<usize> = (0..CSL_NODES).map(|v| (v + r) % CSL_NODES).collect();
    // Edge feature 0 = cycle edge, 1 = skip edge.
    let edge_features: Vec<usize> = base
        .edges()
        .map(|(a, b)| {
            let diff = (a + CSL_NODES - b) % CSL_NODES;
            let diff = diff.min(CSL_NODES - diff);
            usize::from(diff != 1)
        })
        .collect();
    GraphSample {
        graph: base,
        node_features,
        edge_features,
        target: Target::Class(class),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::DegreeStats;

    #[test]
    fn csl_matches_table_statistics() {
        let ds = csl(&DatasetSpec::paper_csl(1));
        assert!(ds.validate());
        let st = ds.stats(32);
        assert!((st.mean_nodes - 41.0).abs() < 1e-9);
        assert!((st.mean_edges - 82.0).abs() < 1e-9); // 164 slots / 2
                                                      // Table III row CSL: all-zero degree variance, μ(ε) = 1.
        assert!(st.mean_degree_std.abs() < 1e-9);
        assert!(st.std_min_degree.abs() < 1e-9);
        assert!(st.std_max_degree.abs() < 1e-9);
        assert!((st.mean_ks_similarity - 1.0).abs() < 1e-9);
        assert!(
            (st.mean_sparsity - 0.098).abs() < 0.005,
            "sparsity {}",
            st.mean_sparsity
        );
    }

    #[test]
    fn graphs_are_4_regular() {
        let ds = csl(&DatasetSpec::tiny(2));
        for s in ds.all_samples() {
            let d = DegreeStats::of(&s.graph);
            assert_eq!((d.min, d.max), (4, 4));
        }
    }

    #[test]
    fn all_classes_present_in_train() {
        let ds = csl(&DatasetSpec::tiny(3));
        let mut seen = [false; 4];
        for s in &ds.train {
            seen[s.target.class()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn edge_features_mark_skip_links() {
        let ds = csl(&DatasetSpec::tiny(4));
        let s = &ds.train[0];
        // A CSL graph has n cycle edges and n skip edges.
        let skips = s.edge_features.iter().filter(|&&f| f == 1).count();
        let cycles = s.edge_features.iter().filter(|&&f| f == 0).count();
        assert_eq!(skips, CSL_NODES);
        assert_eq!(cycles, CSL_NODES);
    }
}
