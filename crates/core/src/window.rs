//! Adaptive window sizing and the revisit lower bound.
//!
//! The paper (§III-B, §III-C): the window ω "can be adaptively tuned based on
//! the mean degree of the input processing graph", and the theoretical lower
//! bound on the number of revisits achievable with window ω is
//! `Σ_{d_i ∈ D} ⌈d_i / ω⌉ − n`.

use crate::config::WindowPolicy;
use mega_graph::Graph;

/// Chooses a window for `g`: roughly half the mean degree (each appearance of
/// a node can cover up to ω edges on each side of the diagonal), clamped to
/// `[min, max]` and never below 1.
///
/// # Example
///
/// ```
/// use mega_core::adaptive_window;
/// use mega_graph::generate;
///
/// let g = generate::cycle(10).unwrap(); // mean degree 2
/// assert_eq!(adaptive_window(&g, 1, 16), 1);
/// ```
pub fn adaptive_window(g: &Graph, min: usize, max: usize) -> usize {
    let mean = g.mean_degree();
    let w = (mean / 2.0).round() as usize;
    w.clamp(min.max(1), max.max(min.max(1)))
}

/// Resolves a [`WindowPolicy`] against a concrete graph.
pub fn resolve_window(g: &Graph, policy: WindowPolicy) -> usize {
    match policy {
        WindowPolicy::Fixed(w) => w.max(1),
        WindowPolicy::Adaptive { min, max } => adaptive_window(g, min, max),
    }
}

/// The paper's optimistic lower bound on revisit count for window ω:
/// `Σ ⌈d_i / ω⌉ − n`, clamped at 0.
///
/// Intuition: a node of degree `d` needs at least `⌈d/ω⌉` appearances for all
/// of its edges to fall inside a width-ω band; everything beyond the first
/// appearance is a revisit.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn revisit_lower_bound(degrees: &[usize], window: usize) -> usize {
    assert!(window >= 1, "window must be >= 1");
    let total: usize = degrees.iter().map(|&d| d.div_ceil(window)).sum();
    total.saturating_sub(degrees.len())
}

/// A tighter variant accounting for both sides of the band: each appearance
/// of a node can host up to `2ω` incident edges (ω backward, ω forward), so a
/// node of degree `d` needs at least `⌈d / 2ω⌉` appearances. Used by tests as
/// a true invariant on traversal output.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn revisit_floor_two_sided(degrees: &[usize], window: usize) -> usize {
    assert!(window >= 1, "window must be >= 1");
    let total: usize = degrees.iter().map(|&d| d.div_ceil(2 * window)).sum();
    total.saturating_sub(degrees.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::generate;

    #[test]
    fn lower_bound_zero_when_window_covers_degree() {
        // Cycle: all degrees 2, window 2 -> ceil(2/2)=1 per node -> bound 0.
        assert_eq!(revisit_lower_bound(&[2, 2, 2, 2], 2), 0);
        // Window 1 -> ceil(2/1)=2 per node -> bound n.
        assert_eq!(revisit_lower_bound(&[2, 2, 2, 2], 1), 4);
    }

    #[test]
    fn lower_bound_scales_with_hub_degree() {
        // Star with hub degree 9, window 2: hub needs ceil(9/2)=5 appearances.
        let mut degrees = vec![1usize; 9];
        degrees.push(9);
        assert_eq!(revisit_lower_bound(&degrees, 2), (9 + 5) - 10);
    }

    #[test]
    fn two_sided_floor_is_no_larger() {
        let degrees = [5usize, 3, 8, 1, 12];
        for w in 1..6 {
            assert!(revisit_floor_two_sided(&degrees, w) <= revisit_lower_bound(&degrees, w));
        }
    }

    #[test]
    fn adaptive_window_tracks_mean_degree() {
        let sparse = generate::path(20).unwrap(); // mean degree ~1.9
        assert_eq!(adaptive_window(&sparse, 1, 16), 1);
        let dense = generate::complete(21).unwrap(); // mean degree 20
        assert_eq!(adaptive_window(&dense, 1, 16), 10);
        // Clamped by max.
        assert_eq!(adaptive_window(&dense, 1, 4), 4);
    }

    #[test]
    fn resolve_window_fixed_and_adaptive() {
        let g = generate::cycle(6).unwrap();
        assert_eq!(resolve_window(&g, WindowPolicy::Fixed(7)), 7);
        assert_eq!(resolve_window(&g, WindowPolicy::Fixed(0)), 1); // floor at 1
        assert_eq!(
            resolve_window(&g, WindowPolicy::Adaptive { min: 2, max: 8 }),
            2
        );
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn zero_window_panics() {
        revisit_lower_bound(&[1, 2], 0);
    }
}
