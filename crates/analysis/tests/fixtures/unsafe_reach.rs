// `unsafe-reach` fixture: a pub entry reaching unsafe through a helper.
pub fn entry(p: *const f32) -> f32 {
    helper(p)
}

fn helper(p: *const f32) -> f32 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn safe_path(x: f32) -> f32 {
    x + 1.0
}
