//! GPU profiling: nvprof-style comparison of the DGL baseline and the MEGA
//! engine on the simulated GTX 1080.
//!
//! Run with: `cargo run --release --example attention_profile`
//!
//! Reproduces the paper's profiling methodology (§III-A / §IV-B2) at example
//! scale: build a batch of molecular graphs, expand one Graph Transformer
//! training step into its kernel launches under both engines, and print the
//! per-kernel tables plus the invocation-weighted aggregate metrics.

use mega::core::{preprocess, MegaConfig};
use mega::datasets::{zinc, DatasetSpec};
use mega::gpu_sim::{BatchTopology, DeviceConfig, EngineKind, GnnCostModel, ModelSpec, Profiler};

fn main() {
    let ds = zinc(&DatasetSpec {
        train: 64,
        val: 8,
        test: 8,
        seed: 9,
    });
    let graphs: Vec<_> = ds.train.iter().map(|s| s.graph.clone()).collect();
    let schedules: Vec<_> = graphs
        .iter()
        .map(|g| preprocess(g, &MegaConfig::default()).expect("valid graph"))
        .collect();
    let topo = BatchTopology::from_graphs_with_schedules(&graphs, &schedules);
    println!(
        "batch: {} graphs | {} nodes | {} adjacency slots | path length {} (window {})",
        graphs.len(),
        topo.n_nodes,
        topo.n_slots,
        topo.path_len,
        topo.window
    );

    let spec = ModelSpec::graph_transformer(128, 2);
    for engine in [EngineKind::DglBaseline, EngineKind::Mega] {
        let model = GnnCostModel::new(DeviceConfig::gtx_1080(), spec.clone(), engine);
        let mut profiler = Profiler::new(DeviceConfig::gtx_1080());
        model.simulate_step(&mut profiler, &topo);
        let report = profiler.report();
        println!(
            "\n=== {:?} — one GT training step (batch 64, hidden 128) ===",
            engine
        );
        println!("{report}");
    }
    println!("\nThe dgl kernels stall on scattered loads; the mega band kernels stream.");
    println!("Compare the aggregate sm_eff / stall lines — the paper's Fig. 9.");
}
