//! Fixture regression tests for the lint rules.
//!
//! Each fixture under `tests/fixtures/` seeds violations at known lines;
//! these tests assert every rule fires exactly there (and nowhere else),
//! that path scoping flips the verdict where it should, that suppression
//! pragmas silence precisely their target, and — the self-test that makes
//! `cargo test` a lint gate too — that the workspace itself is clean.

use mega_analysis::{lint_source, lint_workspace, Finding, Rule};
use std::path::Path;

const NO_FMA: &str = include_str!("fixtures/no_fma.rs");
const FLOAT_REASSOC: &str = include_str!("fixtures/float_reassoc.rs");
const UNSAFE_SCOPE: &str = include_str!("fixtures/unsafe_scope.rs");
const UNDOCUMENTED_UNSAFE: &str = include_str!("fixtures/undocumented_unsafe.rs");
const OBS_ROUTING: &str = include_str!("fixtures/obs_routing.rs");
const UNORDERED: &str = include_str!("fixtures/unordered_collection.rs");
const PRAGMAS: &str = include_str!("fixtures/pragmas.rs");
const FUSION_SCOPE: &str = include_str!("fixtures/fusion_scope.rs");
const BAD_PRAGMA: &str = include_str!("fixtures/bad_pragma.rs");

/// The seeded lines at which `rule` fired, in order.
fn lines(findings: &[Finding], rule: Rule) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn no_fma_fires_on_each_seeded_line_only() {
    let findings = lint_source("crates/gnn/src/layer.rs", NO_FMA);
    assert_eq!(lines(&findings, Rule::NoFma), [5, 9, 10, 11]);
    assert_eq!(findings.len(), 4, "comment/string mentions must not fire");
}

#[test]
fn float_reassoc_respects_the_kernels_allowlist() {
    let inside = lint_source("crates/exec/src/window.rs", FLOAT_REASSOC);
    assert_eq!(lines(&inside, Rule::FloatReassoc), [3, 7]);
    assert!(lint_source("crates/exec/src/kernels.rs", FLOAT_REASSOC).is_empty());
    assert!(lint_source("crates/gnn/src/nn.rs", FLOAT_REASSOC).is_empty());
}

#[test]
fn unsafe_scope_exempts_only_the_simd_backend() {
    let away = lint_source("crates/core/src/peek.rs", UNSAFE_SCOPE);
    assert_eq!(lines(&away, Rule::UnsafeScope), [4]);
    assert_eq!(away.len(), 1, "the SAFETY comment covers the site");
    assert!(lint_source("crates/exec/src/simd.rs", UNSAFE_SCOPE).is_empty());
}

#[test]
fn undocumented_unsafe_fires_on_the_bare_site_only() {
    let findings = lint_source("crates/exec/src/simd.rs", UNDOCUMENTED_UNSAFE);
    assert_eq!(lines(&findings, Rule::UndocumentedUnsafe), [8]);
    assert_eq!(findings.len(), 1);
}

#[test]
fn obs_routing_exempts_obs_tests_and_examples() {
    let inside = lint_source("crates/gnn/src/debug.rs", OBS_ROUTING);
    assert_eq!(lines(&inside, Rule::ObsRouting), [3, 4, 5]);
    assert!(lint_source("crates/obs/src/dump.rs", OBS_ROUTING).is_empty());
    assert!(lint_source("crates/gnn/tests/debug.rs", OBS_ROUTING).is_empty());
    assert!(lint_source("examples/quickstart.rs", OBS_ROUTING).is_empty());
    assert!(lint_source("crates/bench/src/bin/timing.rs", OBS_ROUTING).is_empty());
}

#[test]
fn unordered_collection_fires_in_result_affecting_crates_only() {
    let inside = lint_source("crates/core/src/cache.rs", UNORDERED);
    assert_eq!(lines(&inside, Rule::UnorderedCollection), [2, 3, 5, 5, 7]);
    // The distributed crate folds gradients and halo rows in a fixed order,
    // so it stays pinned inside the order-sensitive scope.
    let dist = lint_source("crates/dist/src/train.rs", UNORDERED);
    assert_eq!(lines(&dist, Rule::UnorderedCollection), [2, 3, 5, 5, 7]);
    assert!(lint_source("crates/obs/src/cache.rs", UNORDERED).is_empty());
    assert!(lint_source("crates/core/tests/cache.rs", UNORDERED).is_empty());
}

#[test]
fn fusion_scope_fires_outside_the_audited_surface_only() {
    let inside = lint_source("crates/gnn/src/layers.rs", FUSION_SCOPE);
    assert_eq!(lines(&inside, Rule::FusionScope), [3, 6, 11]);
    assert_eq!(
        inside.len(),
        3,
        "call sites, comments, and the pragma-covered fn must not fire: {inside:?}"
    );
    // The audited fusion surface is exempt: kernels/backends, the tape
    // planner files, the GPU simulator — and tests anywhere.
    for home in [
        "crates/exec/src/kernels.rs",
        "crates/tensor/src/tape.rs",
        "crates/tensor/src/plan.rs",
        "crates/gpu-sim/src/profiler.rs",
        "crates/exec/tests/scaling.rs",
    ] {
        assert!(
            lint_source(home, FUSION_SCOPE)
                .iter()
                .all(|f| f.rule != Rule::FusionScope),
            "{home} must be exempt"
        );
    }
}

#[test]
fn pragmas_suppress_exactly_their_target_line() {
    let findings = lint_source("crates/core/src/cache.rs", PRAGMAS);
    assert_eq!(lines(&findings, Rule::UnorderedCollection), [8, 9, 10]);
    assert!(lines(&findings, Rule::BadPragma).is_empty());
    assert_eq!(
        findings.len(),
        3,
        "both pragma forms must silence their site"
    );
}

#[test]
fn malformed_pragmas_fire_and_do_not_suppress() {
    let findings = lint_source("crates/core/src/cache.rs", BAD_PRAGMA);
    assert_eq!(lines(&findings, Rule::BadPragma), [2, 3, 4]);
    assert_eq!(findings.len(), 3);
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (files, findings) = lint_workspace(&root).expect("workspace scan");
    assert!(
        files > 100,
        "expected the full source tree, saw {files} files"
    );
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
}
