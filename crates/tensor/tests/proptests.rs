//! Property-based tests for the tensor library and autograd.

use mega_core::Parallelism;
use mega_exec::{backend_by_name, BufferPool, PackCache};
use mega_tensor::{Tape, Tensor, Var};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// A deterministic pseudo-random tensor (LCG), so the planned and unfused
/// runs of a chain rebuild identical leaves without sharing a tape.
fn lcg_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Builds the op chain encoded by `codes` on a fresh tape and returns the
/// final value plus the gradients of every leaf, in creation order. Each
/// code appends one block: a fusable linear/norm/axpy pattern or a plain
/// unfused op, so random chains mix fusion windows with barriers.
fn run_chain(
    codes: &[u8],
    rows: usize,
    planning: bool,
    backend_name: &str,
    threads: usize,
) -> (Tensor, Vec<Tensor>) {
    let backend = backend_by_name(backend_name).expect("known backend");
    let mut tape = Tape::with_exec(backend, Arc::new(BufferPool::new()));
    tape.set_parallelism(Parallelism::pinned(threads));
    if planning {
        tape.set_planning(true);
        tape.set_pack_cache(Arc::new(PackCache::default()));
    }
    let mut leaves: Vec<Var> = Vec::new();
    let mut cols = 4usize;
    let mut cur = tape.leaf(lcg_tensor(1, rows, cols));
    leaves.push(cur);
    let mut param_key = 0u64;
    for (i, &code) in codes.iter().enumerate() {
        let seed = 100 + 10 * i as u64;
        match code % 7 {
            0 | 1 => {
                // linear (+ relu or leaky-relu tail): the matmul fusion.
                let new_cols = [3, 5, 8][i % 3];
                param_key += 1;
                let w = tape.leaf_param(lcg_tensor(seed, cols, new_cols), param_key);
                let b = tape.leaf(lcg_tensor(seed + 1, 1, new_cols));
                leaves.push(w);
                leaves.push(b);
                let m = tape.matmul(cur, w);
                let a = tape.add_row(m, b);
                cur = if code % 7 == 0 {
                    tape.relu(a)
                } else {
                    tape.leaky_relu(a, 0.2)
                };
                cols = new_cols;
            }
            2 => {
                // scale + add (either operand order): the axpy fusion.
                let o = tape.leaf(lcg_tensor(seed, rows, cols));
                leaves.push(o);
                let s = tape.scale(cur, 0.5 + (i % 3) as f32 * 0.25);
                cur = if i % 2 == 0 {
                    tape.add(s, o)
                } else {
                    tape.add(o, s)
                };
            }
            3 | 4 => {
                // normalization + activation: the norm-act fusion.
                let gamma = tape.leaf(lcg_tensor(seed, 1, cols));
                let beta = tape.leaf(lcg_tensor(seed + 1, 1, cols));
                leaves.push(gamma);
                leaves.push(beta);
                let n = if code % 7 == 3 {
                    tape.layer_norm(cur, gamma, beta, 1e-5)
                } else {
                    tape.batch_norm(cur, gamma, beta, 1e-5)
                };
                cur = if i % 2 == 0 {
                    tape.relu(n)
                } else {
                    tape.leaky_relu(n, 0.1)
                };
            }
            5 => cur = tape.tanh(cur), // unfused link between windows
            _ => {
                // self-referential axpy: `cur` is consumed twice, so only
                // the scale link may fuse (and the operands alias).
                let s = tape.scale(cur, -0.75);
                cur = tape.add(s, cur);
            }
        }
    }
    let loss = tape.sum(cur);
    let grads = tape.backward(loss);
    let out = tape.value(loss).clone();
    let leaf_grads = leaves.iter().map(|&v| grads.wrt(v).clone()).collect();
    (out, leaf_grads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matmul distributes over addition: (A + B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes(a in arb_tensor(3, 4), b in arb_tensor(3, 4), c in arb_tensor(4, 2)) {
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Transpose reverses matmul: (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product(a in arb_tensor(3, 5), b in arb_tensor(5, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// gather then scatter-add with the same index preserves column sums
    /// when every source row is hit exactly once (a permutation).
    #[test]
    fn gather_scatter_permutation_preserves_sums(x in arb_tensor(6, 3), seed in 0u64..1000) {
        let mut perm: Vec<usize> = (0..6).collect();
        // Deterministic Fisher-Yates from the seed.
        let mut state = seed;
        for i in (1..6).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let gathered = x.gather_rows(&perm);
        let back = gathered.scatter_add_rows(&perm, 6);
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Sum of scatter-add equals sum of input regardless of index pattern.
    #[test]
    fn scatter_add_conserves_mass(
        x in arb_tensor(8, 2),
        idx in proptest::collection::vec(0usize..5, 8),
    ) {
        let out = x.scatter_add_rows(&idx, 5);
        prop_assert!((out.sum() - x.sum()).abs() < 1e-4);
    }

    /// Autograd linearity: grad of sum(k·x) is k everywhere.
    #[test]
    fn grad_of_scaled_sum_is_constant(x in arb_tensor(4, 3), k in -3.0f32..3.0) {
        let mut tape = Tape::new();
        let v = tape.leaf(x);
        let s = tape.scale(v, k);
        let loss = tape.sum(s);
        let grads = tape.backward(loss);
        for &g in grads.wrt(v).as_slice() {
            prop_assert!((g - k).abs() < 1e-5);
        }
    }

    /// Softmax within segments is a probability distribution per column.
    #[test]
    fn segment_softmax_normalizes(
        x in arb_tensor(10, 2),
        segs in proptest::collection::vec(0usize..3, 10),
    ) {
        let mut tape = Tape::new();
        let v = tape.leaf(x);
        let p = tape.segment_softmax(v, Arc::new(segs.clone()), 3);
        let out = tape.value(p);
        for col in 0..2 {
            for seg in 0..3 {
                let members: Vec<usize> = (0..10).filter(|&i| segs[i] == seg).collect();
                if members.is_empty() {
                    continue;
                }
                let total: f32 = members.iter().map(|&i| out.at(i, col)).sum();
                prop_assert!((total - 1.0).abs() < 1e-4, "segment {seg} col {col}: {total}");
                for &i in &members {
                    prop_assert!(out.at(i, col) >= 0.0);
                }
            }
        }
    }

    /// The L1 loss is non-negative and zero iff prediction equals target.
    #[test]
    fn l1_loss_properties(x in arb_tensor(5, 1)) {
        let mut tape = Tape::new();
        let v = tape.leaf(x.clone());
        let zero = tape.l1_loss(v, x.clone());
        prop_assert!(tape.value(zero).at(0, 0).abs() < 1e-6);
        let mut shifted = x.clone();
        shifted.as_mut_slice()[0] += 1.0;
        let v2 = tape.leaf(x);
        let nonzero = tape.l1_loss(v2, shifted);
        prop_assert!(tape.value(nonzero).at(0, 0) > 0.0);
    }

    /// The planner is bit-exact: a random op chain run through planning
    /// mode (fusion + pack caching) produces the same forward value and
    /// leaf gradients, bit for bit, as the unfused eager oracle — across
    /// backends and pinned thread counts. (Fixed-seed *training* bit-
    /// identity is asserted end to end in `mega-gnn`'s
    /// `planned_training_is_bit_identical_to_unplanned`.)
    #[test]
    fn planned_chains_match_unfused_oracle(
        codes in proptest::collection::vec(0u8..7, 1..6),
        rows in 2usize..7,
    ) {
        let (oracle_out, oracle_grads) = run_chain(&codes, rows, false, "reference", 1);
        for backend in ["reference", "blocked", "simd"] {
            for threads in [1usize, 2, 4] {
                let (out, grads) = run_chain(&codes, rows, true, backend, threads);
                prop_assert_eq!(
                    out.at(0, 0).to_bits(),
                    oracle_out.at(0, 0).to_bits(),
                    "loss diverged: {}/{} threads, chain {:?}",
                    backend, threads, &codes
                );
                prop_assert_eq!(grads.len(), oracle_grads.len());
                for (g, og) in grads.iter().zip(&oracle_grads) {
                    for (a, b) in g.as_slice().iter().zip(og.as_slice()) {
                        prop_assert_eq!(
                            a.to_bits(), b.to_bits(),
                            "grad diverged: {}/{} threads, chain {:?}: {} vs {}",
                            backend, threads, &codes, a, b
                        );
                    }
                }
            }
        }
    }

    /// Layer norm output rows have (near) zero mean and unit variance under
    /// identity affine parameters.
    #[test]
    fn layer_norm_standardizes(x in arb_tensor(4, 6)) {
        // Skip degenerate constant rows (variance ~ 0 makes the test vacuous).
        for r in 0..4 {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / 6.0;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 6.0;
            prop_assume!(var > 1e-3);
        }
        let mut tape = Tape::new();
        let v = tape.leaf(x);
        let gamma = tape.leaf(Tensor::full(1, 6, 1.0));
        let beta = tape.leaf(Tensor::zeros(1, 6));
        let y = tape.layer_norm(v, gamma, beta, 1e-6);
        let out = tape.value(y);
        for r in 0..4 {
            let row = out.row(r);
            let mean = row.iter().sum::<f32>() / 6.0;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 6.0;
            prop_assert!(mean.abs() < 1e-3);
            prop_assert!((var - 1.0).abs() < 1e-2);
        }
    }
}
