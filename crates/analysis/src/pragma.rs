//! Inline suppression pragmas.
//!
//! A finding is suppressed by a comment of the form
//! `// mega-lint: allow(unordered-collection, reason = "lookup only")` —
//! the rule id names which rule to silence and the reason string is
//! mandatory and non-empty, so every suppression carries its justification
//! into the source. A pragma silences its own line; when the pragma line
//! carries no code (comment-only), it silences the following line instead,
//! which is the usual "pragma above the offending statement" shape.
//!
//! Anything that *looks* like a pragma but does not parse — wrong shape,
//! unknown rule id, missing or empty reason — is itself reported under the
//! `bad-pragma` rule, so a typo cannot silently disable enforcement.
//! `bad-pragma` findings are never suppressible.
//!
//! Every valid pragma tracks whether it actually did something: suppressed
//! at least one finding, or served as a determinism-taint propagation
//! boundary. A pragma that did neither is reported under `stale-pragma`
//! (also never suppressible), so suppressions cannot outlive the code they
//! excused.

use crate::scan::Line;
use crate::{Finding, Rule};
use std::cell::Cell;

const MARKER: &str = "mega-lint:";

/// One parsed pragma with its usage flag.
#[derive(Debug)]
struct Pragma {
    /// 1-based line the pragma comment sits on.
    line: usize,
    rule: Rule,
    /// Comment-only pragmas also cover the following line.
    covers_next: bool,
    used: Cell<bool>,
}

impl Pragma {
    fn covers(&self, line: usize) -> bool {
        line == self.line || (self.covers_next && line == self.line + 1)
    }
}

/// The set of pragmas collected from one file.
#[derive(Debug, Default)]
pub struct Suppressions {
    pragmas: Vec<Pragma>,
}

impl Suppressions {
    /// True when `rule` findings on 1-based `line` are silenced; marks the
    /// covering pragma as used.
    pub fn covers(&self, line: usize, rule: Rule) -> bool {
        if rule == Rule::BadPragma || rule == Rule::StalePragma {
            return false;
        }
        let mut hit = false;
        for p in &self.pragmas {
            if p.rule == rule && p.covers(line) {
                p.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Like [`Suppressions::covers`] but without marking usage — for rules
    /// that need to *ask* about coverage while deciding whether a site
    /// fires at all (e.g. taint boundaries).
    pub fn covers_peek(&self, line: usize, rule: Rule) -> bool {
        rule != Rule::BadPragma
            && rule != Rule::StalePragma
            && self
                .pragmas
                .iter()
                .any(|p| p.rule == rule && p.covers(line))
    }

    /// Marks the pragma covering `(line, rule)` as used without consuming a
    /// finding — the taint rule calls this when a boundary pragma actually
    /// intercepts propagation.
    pub fn mark_used(&self, line: usize, rule: Rule) {
        for p in &self.pragmas {
            if p.rule == rule && p.covers(line) {
                p.used.set(true);
            }
        }
    }

    /// `(line, rule)` of every pragma that neither suppressed a finding nor
    /// acted as a boundary. Call after all rules have filtered.
    pub fn stale(&self) -> Vec<(usize, Rule)> {
        self.pragmas
            .iter()
            .filter(|p| !p.used.get())
            .map(|p| (p.line, p.rule))
            .collect()
    }
}

/// Scans every comment for pragmas; returns the suppression set plus a
/// `bad-pragma` finding for each malformed one.
pub fn collect(path: &str, lines: &[Line]) -> (Suppressions, Vec<Finding>) {
    let mut sup = Suppressions::default();
    let mut bad = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.doc {
            // Doc comments *describe* pragmas (rule docs quote the syntax
            // verbatim); they never issue one.
            continue;
        }
        let Some(pos) = line.comment.find(MARKER) else {
            continue;
        };
        match parse(&line.comment[pos + MARKER.len()..]) {
            Ok(rule) => sup.pragmas.push(Pragma {
                line: lineno,
                rule,
                covers_next: line.is_comment_only(),
                used: Cell::new(false),
            }),
            Err(why) => bad.push(Finding {
                file: path.to_string(),
                line: lineno,
                rule: Rule::BadPragma,
                message: why,
            }),
        }
    }
    (sup, bad)
}

/// Parses the text after the pragma marker into the rule it allows.
fn parse(text: &str) -> Result<Rule, String> {
    const SHAPE: &str = "pragma must be `mega-lint: allow(<rule>, reason = \"...\")`";
    let body = text
        .trim_start()
        .strip_prefix("allow")
        .ok_or(SHAPE)?
        .trim_start()
        .strip_prefix('(')
        .ok_or(SHAPE)?;
    let inner = &body[..body.rfind(')').ok_or(SHAPE)?];
    let (rule_name, rest) = inner.split_once(',').ok_or(SHAPE)?;
    let rule = Rule::from_id(rule_name.trim())
        .ok_or_else(|| format!("pragma names unknown rule `{}`", rule_name.trim()))?;
    if rule == Rule::BadPragma || rule == Rule::StalePragma {
        return Err(format!("`{}` findings are never suppressible", rule.id()));
    }
    let reason = rest
        .trim()
        .strip_prefix("reason")
        .ok_or(SHAPE)?
        .trim_start()
        .strip_prefix('=')
        .ok_or(SHAPE)?
        .trim_start()
        .strip_prefix('"')
        .ok_or(SHAPE)?;
    let quoted = &reason[..reason.rfind('"').ok_or(SHAPE)?];
    if quoted.trim().is_empty() {
        return Err("pragma reason must not be empty".to_string());
    }
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;

    #[test]
    fn valid_pragma_covers_own_and_next_line() {
        let lines = strip(
            "// mega-lint: allow(unordered-collection, reason = \"membership only\")\nlet x = 1;",
        );
        let (sup, bad) = collect("f.rs", &lines);
        assert!(bad.is_empty());
        assert!(sup.covers(1, Rule::UnorderedCollection));
        assert!(sup.covers(2, Rule::UnorderedCollection));
        assert!(!sup.covers(2, Rule::NoFma));
        assert!(!sup.covers(3, Rule::UnorderedCollection));
    }

    #[test]
    fn trailing_pragma_covers_only_its_line() {
        let lines =
            strip("let x = 1; // mega-lint: allow(obs-routing, reason = \"usage text\")\nnext();");
        let (sup, _) = collect("f.rs", &lines);
        assert!(sup.covers(1, Rule::ObsRouting));
        assert!(!sup.covers(2, Rule::ObsRouting));
    }

    #[test]
    fn malformed_pragmas_are_reported() {
        let src = "// mega-lint: allow(no-fma)\n// mega-lint: allow(not-a-rule, reason = \"x\")\n// mega-lint: allow(no-fma, reason = \"\")";
        let (sup, bad) = collect("f.rs", &strip(src));
        assert_eq!(bad.len(), 3);
        assert!(bad.iter().all(|f| f.rule == Rule::BadPragma));
        assert!(bad[1].message.contains("unknown rule"));
        assert!(bad[2].message.contains("must not be empty"));
        assert!(!sup.covers(1, Rule::NoFma));
        assert!(!sup.covers(2, Rule::NoFma));
    }

    #[test]
    fn doc_comment_pragma_examples_are_inert() {
        let src = "//! e.g. `// mega-lint: allow(no-fma, reason = \"x\")`\n\
                   /// also `// mega-lint: allow(bogus-rule)`\n\
                   /** and `mega-lint: allow(no-fma)` in block docs */";
        let (sup, bad) = collect("f.rs", &strip(src));
        assert!(bad.is_empty(), "doc examples are not bad pragmas: {bad:?}");
        assert!(sup.stale().is_empty(), "and never become stale pragmas");
        assert!(!sup.covers_peek(1, Rule::NoFma));
    }

    #[test]
    fn pragma_inside_string_literal_is_inert() {
        let lines = strip("let s = \"mega-lint: allow(no-fma)\";");
        let (_, bad) = collect("f.rs", &lines);
        assert!(bad.is_empty());
    }

    #[test]
    fn bad_pragma_is_never_suppressible() {
        let lines = strip("// mega-lint: allow(bad-pragma, reason = \"nice try\")");
        let (sup, bad) = collect("f.rs", &lines);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("never suppressible"));
        assert!(!sup.covers(1, Rule::BadPragma));
    }

    #[test]
    fn usage_tracking_surfaces_stale_pragmas() {
        let src = "// mega-lint: allow(no-fma, reason = \"audited\")\nlet a = 1;\n\
                   x(); // mega-lint: allow(obs-routing, reason = \"usage\")";
        let (sup, _) = collect("f.rs", &strip(src));
        assert_eq!(
            sup.stale(),
            vec![(1, Rule::NoFma), (3, Rule::ObsRouting)],
            "nothing consumed yet"
        );
        assert!(sup.covers(2, Rule::NoFma));
        assert_eq!(sup.stale(), vec![(3, Rule::ObsRouting)]);
        assert!(!sup.covers_peek(4, Rule::ObsRouting));
        assert!(
            sup.covers_peek(3, Rule::ObsRouting),
            "peek does not consume"
        );
        assert_eq!(sup.stale(), vec![(3, Rule::ObsRouting)]);
        sup.mark_used(3, Rule::ObsRouting);
        assert!(sup.stale().is_empty());
    }
}
