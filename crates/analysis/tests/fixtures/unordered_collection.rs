// `unordered-collection` fixture.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn build(keys: HashSet<String>) -> HashMap<String, usize> {
    let _ = keys;
    HashMap::new()
}
