//! AQSOL-like molecular regression dataset.
//!
//! AQSOL molecules are smaller than ZINC's (Table II: ~18 atoms, sparsity
//! ≈ 0.148) with a slightly wider degree spread (Table III). The synthetic
//! equivalent reuses the molecular generator with those parameters; the
//! target is the same solubility-flavored function documented in
//! [`crate::molecular`].

use crate::molecular::{molecular_dataset, MolecularParams};
use crate::sample::Dataset;
use crate::spec::DatasetSpec;

/// Generates the AQSOL-like dataset (Table II row: 18 nodes, ~18 bonds,
/// sparsity ≈ 0.148).
pub fn aqsol(spec: &DatasetSpec) -> Dataset {
    molecular_dataset(
        spec,
        &MolecularParams {
            name: "AQSOL",
            nodes_mean: 18,
            nodes_jitter: 5,
            ring_closures: 2,
            max_branch: 4,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aqsol_matches_table_ii_statistics() {
        let ds = aqsol(&DatasetSpec::small(11));
        assert!(ds.validate());
        let st = ds.stats(64);
        assert!(
            (st.mean_nodes - 18.0).abs() < 2.0,
            "nodes {}",
            st.mean_nodes
        );
        assert!(
            (st.mean_sparsity - 0.148).abs() < 0.05,
            "sparsity {}",
            st.mean_sparsity
        );
    }

    #[test]
    fn aqsol_is_smaller_and_denser_than_zinc() {
        let a = aqsol(&DatasetSpec::tiny(12));
        let z = crate::zinc(&DatasetSpec::tiny(12));
        let sa = a.stats(16);
        let sz = z.stats(16);
        assert!(sa.mean_nodes < sz.mean_nodes);
        assert!(sa.mean_sparsity > sz.mean_sparsity);
    }
}
