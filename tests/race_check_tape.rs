//! Race-check coverage for the autograd tape's parallel matmuls.
//!
//! The GEMM shadow writer map (see `crates/exec/tests/race_check.rs` for
//! the tests proving it *fires* on corrupt partitions) sits inside the
//! backend drivers, so every matmul the tape issues — forward products and
//! both backward-pass products — runs with row-ownership checking armed
//! when the `race-check` feature is on. This harness drives full
//! forward+backward passes through each backend at pinned thread counts
//! with shapes past the parallel flop cutoff, proving (a) the instrumented
//! tape path completes without an overlap or coverage panic and (b) losses
//! and gradients stay bit-identical to the single-thread run — the checked
//! ownership proof, extended from raw kernels to the tape.

#![cfg(feature = "race-check")]

use mega::core::parallel::Parallelism;
use mega::exec::{Backend, BlockedBackend, BufferPool, ReferenceBackend, SimdBackend};
use mega::tensor::{Tape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

#[test]
fn tape_matmuls_race_checked_and_bit_identical_across_backends() {
    // 128×64 · 64×64: forward and both backward products all exceed the
    // 1 << 17 multiply-add cutoff, so every one fans out when pinned.
    let mut rng = StdRng::seed_from_u64(17);
    let a = Tensor::from_vec(128, 64, random_vec(&mut rng, 128 * 64));
    let b = Tensor::from_vec(64, 64, random_vec(&mut rng, 64 * 64));

    let backends: Vec<(&str, Arc<dyn Backend>)> = vec![
        ("reference", Arc::new(ReferenceBackend)),
        ("blocked", Arc::new(BlockedBackend)),
        ("simd", Arc::new(SimdBackend::new())),
    ];
    for (name, backend) in backends {
        let run = |threads: usize| {
            let mut tape = Tape::with_exec(backend.clone(), Arc::new(BufferPool::new()));
            tape.set_parallelism(Parallelism::pinned(threads));
            let va = tape.leaf(a.clone());
            let vb = tape.leaf(b.clone());
            let prod = tape.matmul(va, vb);
            let loss = tape.sum(prod);
            let grads = tape.backward(loss);
            (
                tape.value(loss).at(0, 0),
                grads.wrt(va).as_slice().to_vec(),
                grads.wrt(vb).as_slice().to_vec(),
            )
        };
        let (l1, ga1, gb1) = run(1);
        for threads in [2usize, 4] {
            let (l, ga, gb) = run(threads);
            assert_eq!(l.to_bits(), l1.to_bits(), "{name} loss, threads={threads}");
            for (x, y) in ga.iter().zip(&ga1) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} grad a, threads={threads}");
            }
            for (x, y) in gb.iter().zip(&gb1) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} grad b, threads={threads}");
            }
        }
    }
}
