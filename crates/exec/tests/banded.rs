//! Bit-identity of the parallel banded kernels against their serial
//! counterparts, on real traversal-derived bands.
//!
//! These tests moved here from `mega-core` along with the kernels: the
//! scheduling primitives (chunk plans, ordered map) stayed in core, but the
//! determinism contract is a property of the kernels and lives with them.

use mega_core::band::BandMask;
use mega_core::config::{MegaConfig, WindowPolicy};
use mega_core::parallel::Parallelism;
use mega_core::traversal::traverse;
use mega_exec::kernels::{
    banded_aggregate, banded_aggregate_serial, banded_weight_grad, banded_weight_grad_serial,
};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn band_fixture(n: usize, w: usize) -> BandMask {
    let g = generate::erdos_renyi(n, 0.2, &mut StdRng::seed_from_u64(n as u64)).unwrap();
    let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(w));
    BandMask::from_traversal(&traverse(&g, &cfg).unwrap())
}

fn random_rows(len: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len * dim)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect()
}

#[test]
fn parallel_aggregation_bit_identical_to_serial() {
    let band = band_fixture(40, 3);
    let dim = 5;
    let x = random_rows(band.len(), dim, 7);
    let edges = band
        .active_slots()
        .iter()
        .map(|s| s.edge)
        .max()
        .map_or(0, |m| m + 1);
    let mut rng = StdRng::seed_from_u64(9);
    let weights: Vec<f32> = (0..edges).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let serial = banded_aggregate_serial(&band, &x, dim, &weights);
    for threads in [1usize, 2, 4, 8] {
        for chunk in [band.window(), 4 * band.window(), band.len().max(1)] {
            let par = Parallelism::pinned(threads).with_chunk_size(chunk);
            let got = banded_aggregate(&band, &x, dim, &weights, &par);
            assert_eq!(serial.len(), got.len());
            for (a, b) in serial.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} chunk={chunk}");
            }
        }
    }
}

#[test]
fn weight_grad_bit_identical_to_serial() {
    let band = band_fixture(30, 2);
    let dim = 4;
    let x = random_rows(band.len(), dim, 3);
    let d_out = random_rows(band.len(), dim, 4);
    let edges = band
        .active_slots()
        .iter()
        .map(|s| s.edge)
        .max()
        .map_or(0, |m| m + 1);
    let serial = banded_weight_grad_serial(&band, &x, &d_out, dim, edges);
    for threads in [1usize, 3, 8] {
        let par = Parallelism::pinned(threads).with_chunk_size(5);
        let got = banded_weight_grad(&band, &x, &d_out, dim, edges, &par);
        for (a, b) in serial.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
