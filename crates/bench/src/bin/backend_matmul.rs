//! Dense-GEMM backend micro-benchmark: reference loops vs the cache-blocked
//! backend across square sizes, single-threaded (the blocking win is memory
//! locality, not parallelism). Results land in
//! `bench_results/backend_matmul.json`; the 512×512 row is the acceptance
//! gate — blocked must beat reference there.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::Parallelism;
use mega_exec::{Backend, BlockedBackend, ReferenceBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

const SIZES: [usize; 4] = [64, 128, 256, 512];
const REPS: usize = 7;

#[derive(Serialize)]
struct Row {
    size: usize,
    reference_ms: f64,
    blocked_ms: f64,
    speedup: f64,
    gflops_reference: f64,
    gflops_blocked: f64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    reps: usize,
    rows: Vec<Row>,
}

fn median_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(42);
    let par = Parallelism::with_threads(1);
    let mut table = TableWriter::new(&["size", "reference(ms)", "blocked(ms)", "speedup"]);
    let mut rows = Vec::new();
    for &n in &SIZES {
        let a: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut out = vec![0.0f32; n * n];

        let reference_ms = median_ms(|| {
            ReferenceBackend.matmul(&a, &b, n, n, n, &par, &mut out);
            std::hint::black_box(&out);
        });
        let blocked_ms = median_ms(|| {
            BlockedBackend.matmul(&a, &b, n, n, n, &par, &mut out);
            std::hint::black_box(&out);
        });

        let flops = 2.0 * (n as f64).powi(3);
        let row = Row {
            size: n,
            reference_ms,
            blocked_ms,
            speedup: reference_ms / blocked_ms,
            gflops_reference: flops / (reference_ms * 1e-3) / 1e9,
            gflops_blocked: flops / (blocked_ms * 1e-3) / 1e9,
        };
        table.row(&[
            fmt(n as f64, 0),
            fmt(row.reference_ms, 3),
            fmt(row.blocked_ms, 3),
            fmt(row.speedup, 2),
        ]);
        rows.push(row);
    }
    table.print();

    let gate = rows.iter().find(|r| r.size == 512).expect("512 row present");
    mega_obs::data!(
        "512x512 gate: blocked {:.3} ms vs reference {:.3} ms ({:.2}x)",
        gate.blocked_ms,
        gate.reference_ms,
        gate.speedup
    );
    let pass = gate.speedup > 1.0;
    save_json("backend_matmul", &Report { threads: 1, reps: REPS, rows });
    if !pass {
        mega_obs::error!("FAIL: blocked did not beat reference at 512x512");
        std::process::exit(1);
    }
}
