//! Table II: graph dataset statistics (splits, nodes, edges, sparsity).

use mega_bench::{bench_datasets, fmt, save_json, TableWriter};
use mega_datasets::DatasetSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    train: usize,
    val: usize,
    test: usize,
    mean_nodes: f64,
    mean_edges: f64,
    mean_adjacency_slots: f64,
    mean_sparsity: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    // Generated at a CPU-friendly scale; topology statistics are
    // per-graph and independent of split size.
    let spec = DatasetSpec::small(2024);
    let mut table = TableWriter::new(&[
        "Datasets",
        "train",
        "validation",
        "test",
        "nodes",
        "edges(2m)",
        "sparsity",
    ]);
    let mut rows = Vec::new();
    for ds in bench_datasets(&spec) {
        let st = ds.stats(128);
        table.row(&[
            ds.name.clone(),
            ds.train.len().to_string(),
            ds.val.len().to_string(),
            ds.test.len().to_string(),
            fmt(st.mean_nodes, 1),
            fmt(2.0 * st.mean_edges, 1),
            fmt(st.mean_sparsity, 3),
        ]);
        rows.push(Row {
            dataset: ds.name.clone(),
            train: ds.train.len(),
            val: ds.val.len(),
            test: ds.test.len(),
            mean_nodes: st.mean_nodes,
            mean_edges: st.mean_edges,
            mean_adjacency_slots: 2.0 * st.mean_edges,
            mean_sparsity: st.mean_sparsity,
        });
    }
    mega_obs::data!("Table II — graph statistics (synthetic datasets, paper-matched topology)\n");
    table.print();
    mega_obs::data!(
        "\nPaper values (nodes/edges/sparsity): ZINC 23/50/0.096, AQSOL 18/36/0.148, \
         CSL 41/164/0.098, CYCLES 49/88/0.036."
    );
    mega_obs::data!("Paper split sizes: ZINC 10000/1000/1000, AQSOL 7985/996/996, CSL 90/30/30, CYCLES 9000/1000/10000");
    mega_obs::data!("(regenerate with DatasetSpec::paper_* for full-size splits).");
    save_json("tab02_graph_stats", &rows);
}
