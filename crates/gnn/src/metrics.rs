//! Task metrics.

use mega_tensor::Tensor;

/// Mean absolute error between a prediction column and targets.
///
/// Empty inputs yield `0.0` (never `NaN`): an empty evaluation split
/// contributes a neutral value to the graph-weighted averages in
/// [`crate::Trainer::evaluate`], which weight it by zero graphs anyway.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mae(pred: &Tensor, target: &Tensor) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "mae shape mismatch");
    let n = pred.as_slice().len().max(1) as f64;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&a, &b)| (a - b).abs() as f64)
        .sum::<f64>()
        / n
}

/// Classification accuracy of row-wise argmax against labels.
///
/// Empty labels yield `0.0` by contract (never `NaN` from `0/0`) — the
/// deliberate neutral value for the zero-graph case, mirroring [`mae`];
/// callers that must distinguish "no data" from "all wrong" should check
/// emptiness first (cf. `TrainingHistory::final_metric` returning
/// `Option` for empty runs).
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.row(i);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if argmax == label {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_value() {
        let p = Tensor::from_rows(&[&[1.0], &[2.0]]);
        let t = Tensor::from_rows(&[&[0.0], &[4.0]]);
        assert!((mae(&p, &t) - 1.5).abs() < 1e-9);
        assert_eq!(mae(&p, &p), 0.0);
    }

    #[test]
    fn accuracy_known_value() {
        let logits = Tensor::from_rows(&[&[0.1, 0.9], &[0.8, 0.2], &[0.3, 0.7]]);
        assert!((accuracy(&logits, &[1, 0, 0]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&logits, &[1, 0, 1]), 1.0);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        let logits = Tensor::zeros(0, 2);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }
}
