//! Bit-exact distributed equivalence check.
//!
//! Two legs, mirroring `backend_equivalence`:
//!
//! 1. **Band engine** — runs the halo-exchange executor over a fixed-seed
//!    band job for every `--workers` count and bit-compares states and
//!    weight gradients against the serial oracle (`run_serial`).
//! 2. **Trainer** — trains the same fixed-seed model through the
//!    shard-parallel `DistTrainer` for every worker count crossed with
//!    every `--backend`, and prints the loss trajectory as raw `f64` bit
//!    patterns. Every configuration is compared against the first, so CI
//!    can assert that the distributed trajectory is invariant under the
//!    worker count and the kernel backend simultaneously.
//!
//! Exits non-zero on any mismatch.

use mega_core::{preprocess, MegaConfig};
use mega_datasets::{zinc, DatasetSpec};
use mega_dist::{run_serial, BandJob, DistExecutor, DistTrainer, ThreadExecutor};
use mega_exec::{backend_by_name, Backend};
use mega_gnn::{EngineChoice, GnnConfig, ModelKind, Trainer, TrainingHistory};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;

/// Deterministic pseudo-input bits; the kernels only care about the bits.
fn mix(i: usize) -> f32 {
    let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(41);
    ((h >> 32) as f32 / u32::MAX as f32) - 0.5
}

/// Leg 1: the halo-exchange executor must be bit-identical to the serial
/// oracle for every worker count.
fn band_leg(worker_counts: &[usize]) -> bool {
    let mut rng = StdRng::seed_from_u64(23);
    let g = generate::barabasi_albert(300, 3, &mut rng).expect("BA graph");
    let s = preprocess(&g, &MegaConfig::default()).expect("preprocess");
    let band = s.band();
    let edges = s.working_graph().edge_count();
    let dim = 16usize;
    let x0: Vec<f32> = (0..band.len() * dim).map(mix).collect();
    let weights: Vec<f32> = (0..edges).map(|e| mix(e + band.len() * dim)).collect();
    let job = BandJob {
        band,
        x0: &x0,
        dim,
        weights: &weights,
        edge_count: edges,
        steps: 6,
        damping: 0.8,
    };
    let oracle = run_serial(&job);
    let obits: Vec<u32> = oracle.x.iter().map(|v| v.to_bits()).collect();
    let odw: Vec<u32> = oracle.dw.iter().map(|v| v.to_bits()).collect();
    let mut ok = true;
    for &k in worker_counts {
        let run = ThreadExecutor::new(k).run(&job);
        let bits: Vec<u32> = run.x.iter().map(|v| v.to_bits()).collect();
        let dw: Vec<u32> = run.dw.iter().map(|v| v.to_bits()).collect();
        if bits == obits && dw == odw {
            println!("MATCH: band[workers={k}] == serial (bit-exact, state + grads)");
        } else {
            eprintln!("MISMATCH: band[workers={k}] differs from the serial oracle");
            ok = false;
        }
    }
    ok
}

fn train(engine: EngineChoice, backend: Arc<dyn Backend>, workers: usize) -> TrainingHistory {
    let ds = zinc(&DatasetSpec {
        train: 48,
        val: 16,
        test: 16,
        seed: 7,
    });
    let cfg = GnnConfig::new(ModelKind::GatedGcn, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(24)
        .with_layers(2)
        .with_heads(2);
    let inner = Trainer::new(engine)
        .with_epochs(2)
        .with_batch_size(8)
        .with_backend(backend);
    DistTrainer::new(inner, workers).run(&ds, cfg)
}

fn print_history(label: &str, hist: &TrainingHistory) {
    for r in &hist.records {
        println!(
            "{label} epoch {} train {:016x} val {:016x}",
            r.epoch,
            r.train_loss.to_bits(),
            r.val_loss.to_bits()
        );
    }
    println!("{label} test {:016x}", hist.test_loss.to_bits());
}

/// Loss trajectory as exact bit patterns, for comparison across configs.
fn bits(hist: &TrainingHistory) -> Vec<u64> {
    let mut v: Vec<u64> = hist
        .records
        .iter()
        .flat_map(|r| [r.train_loss.to_bits(), r.val_loss.to_bits()])
        .collect();
    v.push(hist.test_loss.to_bits());
    v
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workers = "1,2,4".to_string();
    let mut backends = "reference".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workers" => workers = args.next().unwrap_or_default(),
            "--backend" => backends = args.next().unwrap_or_default(),
            _ => {}
        }
    }
    let mut counts = Vec::new();
    for w in workers.split(',') {
        match w.trim().parse::<usize>() {
            Ok(k) if k > 0 => counts.push(k),
            _ => {
                eprintln!("invalid --workers value `{w}` (expected positive integers)");
                return ExitCode::FAILURE;
            }
        }
    }
    let names: Vec<&str> = backends.split(',').collect();
    let mut ok = band_leg(&counts);

    // Leg 2: worker count x backend x engine, all against the first config.
    let mut trajectories: Vec<(String, Vec<u64>)> = Vec::new();
    for name in &names {
        let Some(backend) = backend_by_name(name) else {
            eprintln!("unknown backend `{name}` (expected reference, blocked, or simd)");
            return ExitCode::FAILURE;
        };
        for &k in &counts {
            for engine in [EngineChoice::Baseline, EngineChoice::Mega] {
                let hist = train(engine, backend.clone(), k);
                let label = format!("{name}[workers={k}]/{}", engine.label());
                print_history(&label, &hist);
                trajectories.push((label, bits(&hist)));
            }
        }
    }
    let per_config = 2; // Baseline + Mega
    for c in 1..trajectories.len() / per_config {
        for e in 0..per_config {
            let (ref la, ref a) = trajectories[e];
            let (ref lb, ref b) = trajectories[c * per_config + e];
            if a != b {
                eprintln!("MISMATCH: {lb} differs from {la}");
                ok = false;
            } else {
                println!("MATCH: {lb} == {la} (bit-exact)");
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
