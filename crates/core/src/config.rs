//! MEGA preprocessing configuration.

use crate::error::MegaError;
use serde::{Deserialize, Serialize};

/// How the traversal window ω is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowPolicy {
    /// Use a fixed window size.
    Fixed(usize),
    /// Derive the window from the graph's mean degree (the paper's adaptive
    /// diagonal attention, §III-C), clamped to `[min, max]`.
    Adaptive {
        /// Smallest window allowed.
        min: usize,
        /// Largest window allowed.
        max: usize,
    },
}

impl Default for WindowPolicy {
    fn default() -> Self {
        WindowPolicy::Adaptive { min: 1, max: 16 }
    }
}

/// How the next node is picked among the filtered candidate pool.
///
/// The paper's policy is [`CandidatePolicy::CorrelateArgmax`] (Eq. 2); the
/// others exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CandidatePolicy {
    /// Pick the candidate maximizing overlap with the last ω path entries
    /// (ties broken toward the smallest node id). The paper's Eq. 2.
    #[default]
    CorrelateArgmax,
    /// Pick the smallest-id candidate (no correlation objective).
    FirstCandidate,
    /// Pick a pseudo-random candidate (seeded from the config seed and step).
    Random,
}

/// Configuration for MEGA preprocessing.
///
/// # Example
///
/// ```
/// use mega_core::{MegaConfig, WindowPolicy};
///
/// # fn main() -> Result<(), mega_core::MegaError> {
/// let cfg = MegaConfig::default()
///     .with_window(WindowPolicy::Fixed(2))
///     .with_coverage(0.9)
///     .with_edge_drop(0.2);
/// cfg.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MegaConfig {
    /// Window policy (ω selection).
    pub window: WindowPolicy,
    /// Edge coverage target θ ∈ (0, 1]: traversal continues until this
    /// fraction of (post-drop) edges is covered by the band.
    pub coverage: f64,
    /// Fraction of edges dropped before traversal (0 disables; §IV-B5 uses
    /// 0.2).
    pub edge_drop: f64,
    /// Candidate-selection policy (Eq. 2 by default).
    pub policy: CandidatePolicy,
    /// Seed for stochastic choices (edge dropping, `CandidatePolicy::Random`,
    /// start-node ties).
    pub seed: u64,
    /// Hard cap on path length as a multiple of `n + 2m`, a safety net against
    /// pathological revisit loops. The default (4) is never reached by the
    /// shipped policies.
    pub max_path_factor: usize,
}

impl Default for MegaConfig {
    fn default() -> Self {
        MegaConfig {
            window: WindowPolicy::default(),
            coverage: 1.0,
            edge_drop: 0.0,
            policy: CandidatePolicy::default(),
            seed: 0x4d454741, // "MEGA"
            max_path_factor: 4,
        }
    }
}

impl MegaConfig {
    /// Sets the window policy.
    pub fn with_window(mut self, window: WindowPolicy) -> Self {
        self.window = window;
        self
    }

    /// Sets the edge coverage target θ.
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        self.coverage = coverage;
        self
    }

    /// Sets the edge-drop fraction.
    pub fn with_edge_drop(mut self, edge_drop: f64) -> Self {
        self.edge_drop = edge_drop;
        self
    }

    /// Sets the candidate policy.
    pub fn with_policy(mut self, policy: CandidatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// [`MegaError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), MegaError> {
        match self.window {
            WindowPolicy::Fixed(0) => {
                return Err(MegaError::InvalidConfig {
                    field: "window",
                    reason: "fixed window must be >= 1".into(),
                });
            }
            WindowPolicy::Adaptive { min, max } if min == 0 || min > max => {
                return Err(MegaError::InvalidConfig {
                    field: "window",
                    reason: format!(
                        "adaptive bounds must satisfy 1 <= min <= max, got [{min}, {max}]"
                    ),
                });
            }
            _ => {}
        }
        if !(self.coverage > 0.0 && self.coverage <= 1.0) {
            return Err(MegaError::InvalidConfig {
                field: "coverage",
                reason: format!("coverage {} not in (0, 1]", self.coverage),
            });
        }
        if !(0.0..1.0).contains(&self.edge_drop) {
            return Err(MegaError::InvalidConfig {
                field: "edge_drop",
                reason: format!("edge_drop {} not in [0, 1)", self.edge_drop),
            });
        }
        if self.max_path_factor == 0 {
            return Err(MegaError::InvalidConfig {
                field: "max_path_factor",
                reason: "must be >= 1".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        MegaConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_window() {
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(0));
        assert!(matches!(
            cfg.validate(),
            Err(MegaError::InvalidConfig {
                field: "window",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_adaptive_bounds() {
        let cfg = MegaConfig::default().with_window(WindowPolicy::Adaptive { min: 8, max: 2 });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_out_of_range_coverage_and_drop() {
        assert!(MegaConfig::default().with_coverage(0.0).validate().is_err());
        assert!(MegaConfig::default().with_coverage(1.2).validate().is_err());
        assert!(MegaConfig::default()
            .with_edge_drop(1.0)
            .validate()
            .is_err());
        assert!(MegaConfig::default()
            .with_edge_drop(-0.1)
            .validate()
            .is_err());
        assert!(MegaConfig::default()
            .with_edge_drop(0.999)
            .validate()
            .is_ok());
    }

    #[test]
    fn builder_chains() {
        let cfg = MegaConfig::default()
            .with_window(WindowPolicy::Fixed(3))
            .with_coverage(0.5)
            .with_policy(CandidatePolicy::Random)
            .with_seed(42);
        assert_eq!(cfg.window, WindowPolicy::Fixed(3));
        assert_eq!(cfg.coverage, 0.5);
        assert_eq!(cfg.policy, CandidatePolicy::Random);
        assert_eq!(cfg.seed, 42);
    }
}
