//! Property-based tests for MEGA preprocessing invariants.

use mega_core::{
    preprocess, revisit_lower_bound, traverse, window::revisit_floor_two_sided, BandMask,
    CandidatePolicy, ChunkPlan, MegaConfig, WindowPolicy,
};
use mega_graph::{Graph, GraphBuilder};
use proptest::prelude::*;

/// Arbitrary simple undirected graph.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |pairs| {
            let mut b = GraphBuilder::undirected(n);
            b.dedup(true);
            for (a, c) in pairs {
                b.edge(a, c).unwrap();
            }
            b.build().unwrap()
        })
    })
}

fn arb_config() -> impl Strategy<Value = MegaConfig> {
    (
        1usize..5,
        prop_oneof![
            Just(CandidatePolicy::CorrelateArgmax),
            Just(CandidatePolicy::FirstCandidate),
            Just(CandidatePolicy::Random)
        ],
        0u64..100,
    )
        .prop_map(|(w, policy, seed)| {
            MegaConfig::default()
                .with_window(WindowPolicy::Fixed(w))
                .with_policy(policy)
                .with_seed(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_node_appears_at_least_once((g, cfg) in (arb_graph(), arb_config())) {
        let t = traverse(&g, &cfg).unwrap();
        let mut seen = vec![false; g.node_count()];
        for &v in &t.path {
            seen[v] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_coverage_reached((g, cfg) in (arb_graph(), arb_config())) {
        let t = traverse(&g, &cfg).unwrap();
        prop_assert_eq!(t.covered_edges, g.edge_count());
    }

    #[test]
    fn real_steps_ride_original_edges((g, cfg) in (arb_graph(), arb_config())) {
        let t = traverse(&g, &cfg).unwrap();
        for i in 1..t.path.len() {
            if !t.virtual_step[i] {
                prop_assert!(g.contains_edge(t.path[i - 1], t.path[i]));
            }
        }
    }

    #[test]
    fn revisits_at_least_two_sided_floor((g, cfg) in (arb_graph(), arb_config())) {
        let t = traverse(&g, &cfg).unwrap();
        let floor = revisit_floor_two_sided(&g.degrees(), t.window);
        prop_assert!(t.revisits >= floor);
        // The paper's one-sided bound is an upper estimate of the floor.
        prop_assert!(revisit_lower_bound(&g.degrees(), t.window) >= floor);
    }

    #[test]
    fn band_mask_claims_each_edge_once((g, cfg) in (arb_graph(), arb_config())) {
        let t = traverse(&g, &cfg).unwrap();
        let band = BandMask::from_traversal(&t);
        let mut claimed = std::collections::HashSet::new();
        for s in band.active_slots() {
            prop_assert!(s.hi - s.lo >= 1 && s.hi - s.lo <= band.window());
            prop_assert!(claimed.insert(s.edge));
        }
        prop_assert_eq!(claimed.len(), g.edge_count());
    }

    #[test]
    fn band_slots_connect_true_endpoints((g, cfg) in (arb_graph(), arb_config())) {
        let t = traverse(&g, &cfg).unwrap();
        let band = BandMask::from_traversal(&t);
        let pairs: Vec<(usize, usize)> = g.edges().collect();
        for s in band.active_slots() {
            let (a, b) = pairs[s.edge];
            let (u, v) = (t.path[s.lo], t.path[s.hi]);
            prop_assert!((u, v) == (a, b) || (u, v) == (b, a));
        }
    }

    #[test]
    fn partial_coverage_meets_theta(g in arb_graph(), theta in 0.2f64..1.0) {
        let cfg = MegaConfig::default()
            .with_window(WindowPolicy::Fixed(2))
            .with_coverage(theta);
        let t = traverse(&g, &cfg).unwrap();
        if g.edge_count() > 0 {
            prop_assert!(t.coverage() + 1e-12 >= theta);
        }
    }

    #[test]
    fn schedule_round_trips_scatter_gather((g, cfg) in (arb_graph(), arb_config())) {
        let s = preprocess(&g, &cfg).unwrap();
        for (v, positions) in s.scatter_index().iter().enumerate() {
            prop_assert!(!positions.is_empty());
            for &p in positions {
                prop_assert_eq!(s.gather_index()[p], v);
            }
        }
    }

    #[test]
    fn edge_drop_keeps_subset(g in arb_graph(), drop in 0.0f64..0.9, seed in 0u64..50) {
        prop_assume!(g.edge_count() > 0);
        let d = mega_core::edge_drop::drop_edges(&g, drop, seed).unwrap();
        for (s, t) in d.edges() {
            prop_assert!(g.contains_edge(s, t));
        }
        prop_assert!(d.edge_count() >= 1);
    }

    #[test]
    fn path_length_bounded(g in arb_graph()) {
        // Full coverage paths never exceed n + 2m appearances in practice;
        // assert the generous safety bound of the config is far from binding.
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(1));
        let t = traverse(&g, &cfg).unwrap();
        prop_assert!(t.path.len() <= g.node_count() + 2 * g.edge_count() + 1);
    }

    // --- Chunk-splitter invariants of the parallel band engine ---

    #[test]
    fn chunks_partition_the_full_path(len in 0usize..400, window in 1usize..8, chunk in 1usize..64) {
        let plan = ChunkPlan::build(len, window, chunk);
        // Owned ranges are contiguous, ordered, and cover [0, len) exactly.
        let mut expected_start = 0usize;
        for c in plan.chunks() {
            prop_assert_eq!(c.start, expected_start);
            prop_assert!(c.end >= c.start);
            expected_start = c.end;
        }
        prop_assert_eq!(expected_start, len);
        let covered: usize = plan.chunks().iter().map(|c| c.owned_len()).sum();
        prop_assert_eq!(covered, len);
    }

    #[test]
    fn chunk_overlap_is_exactly_omega(len in 1usize..400, window in 1usize..8, chunk in 1usize..64) {
        let plan = ChunkPlan::build(len, window, chunk);
        for c in plan.chunks() {
            // Read extent extends the owned range by exactly ω on each side,
            // clamped at the path boundary — so no in-band pair (distance
            // ≤ ω) straddles a cut unseen.
            prop_assert_eq!(c.read_lo, c.start.saturating_sub(window));
            prop_assert_eq!(c.read_hi, (c.end + window).min(len));
        }
    }

    #[test]
    fn every_active_slot_owned_by_exactly_one_chunk((g, cfg) in (arb_graph(), arb_config()), chunk in 1usize..32) {
        let s = preprocess(&g, &cfg).unwrap();
        let band = s.band();
        let plan = ChunkPlan::build(band.len(), band.window(), chunk);
        for slot in band.active_slots() {
            // Ownership = the chunk whose owned rows contain slot.lo; both
            // endpoints must sit inside that chunk's read extent.
            let owner = plan.owner_of(slot.lo);
            let c = plan.chunks()[owner];
            prop_assert!(c.start <= slot.lo && slot.lo < c.end);
            prop_assert!(c.read_lo <= slot.lo && slot.hi < c.read_hi);
            let owners = plan.chunks().iter().filter(|k| k.start <= slot.lo && slot.lo < k.end).count();
            prop_assert_eq!(owners, 1);
        }
    }

    // --- Static plan validation (ChunkPlan::validate) ---

    #[test]
    fn random_built_plans_validate(len in 0usize..400, window in 1usize..8, chunk in 1usize..64) {
        // validate() re-derives the partition + read-window proof that the
        // race-check shadow map verifies dynamically.
        prop_assert!(ChunkPlan::build(len, window, chunk).validate().is_ok());
    }

    #[test]
    fn band_plans_validate_over_thread_chunk_grid((g, cfg) in (arb_graph(), arb_config())) {
        let s = preprocess(&g, &cfg).unwrap();
        let band = s.band();
        for threads in [1usize, 2, 4, 8] {
            for chunk in [1usize, band.window(), 4 * band.window(), band.len().max(1)] {
                let par = mega_core::Parallelism::pinned(threads)
                    .with_chunk_size(chunk.max(1));
                let plan = ChunkPlan::for_band(band, &par);
                prop_assert!(plan.validate().is_ok(), "threads={} chunk={}", threads, chunk);
                // Owned ranges partition [0, len) and reads stay within ±ω.
                let mut expected_start = 0usize;
                for c in plan.chunks() {
                    prop_assert_eq!(c.start, expected_start);
                    prop_assert_eq!(c.read_lo, c.start.saturating_sub(band.window()));
                    prop_assert_eq!(c.read_hi, (c.end + band.window()).min(band.len()));
                    expected_start = c.end;
                }
                prop_assert_eq!(expected_start, band.len());
            }
        }
    }

    #[test]
    fn corrupted_plans_fail_validation(
        len in 8usize..200,
        window in 1usize..6,
        chunk in 2usize..32,
        which in 0usize..5,
        victim in 0usize..100,
    ) {
        let plan = ChunkPlan::build(len, window, chunk);
        prop_assume!(plan.chunks().len() >= 2);
        let mut chunks = plan.chunks().to_vec();
        let v = victim % chunks.len();
        match which {
            // Ownership overlap with the next chunk (or end past the path).
            0 => chunks[v].end += 1,
            // Coverage gap before the next chunk (or an empty chunk).
            1 => chunks[v].end -= 1,
            // Read window narrower than ω on the left.
            2 => {
                prop_assume!(chunks[v].start > 0);
                chunks[v].read_lo = chunks[v].start;
            }
            // Read window wider than ω on the right.
            3 => chunks[v].read_hi += 1,
            // Truncated plan: the tail of the path is owned by nobody.
            _ => { chunks.pop(); }
        }
        let corrupt = ChunkPlan::from_raw_parts(len, window, chunks);
        prop_assert!(corrupt.validate().is_err(), "mutation {} on chunk {}", which, v);
    }
}
