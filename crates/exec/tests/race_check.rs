//! The `race-check` harness: proves the shadow writer map actually fires.
//!
//! A race detector that has never been seen to detect anything proves
//! nothing, so half of these tests drive the `_with_plan` kernel entry
//! points with deliberately corrupt [`ChunkPlan`]s — overlapping owned
//! ranges, coverage gaps, read windows narrower than ω — built through the
//! validation-bypassing `ChunkPlan::from_raw_parts`, and assert the panic
//! each corruption must produce. The other half re-runs the serial/parallel
//! equivalence grid with checking enabled, proving the instrumented kernels
//! still produce bit-identical results on valid plans.
//!
//! Corrupt-plan runs use `threads = 1`: `ordered_map` then runs the chunk
//! closures inline, so the panic payload (with its diagnostic message)
//! reaches `catch_unwind` intact instead of being replaced by
//! `std::thread::scope`'s generic "a scoped thread panicked". One test
//! drives the threaded path too, asserting the panic still propagates.

#![cfg(feature = "race-check")]

use mega_core::band::BandMask;
use mega_core::config::{MegaConfig, WindowPolicy};
use mega_core::parallel::{Chunk, ChunkPlan, Parallelism};
use mega_core::traversal::traverse;
use mega_exec::kernels::race::WriterMap;
use mega_exec::kernels::{
    banded_aggregate, banded_aggregate_serial, banded_aggregate_with_plan, banded_weight_grad,
    banded_weight_grad_serial, banded_weight_grad_with_plan,
};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn band_fixture(n: usize, w: usize) -> BandMask {
    let g = generate::erdos_renyi(n, 0.2, &mut StdRng::seed_from_u64(n as u64)).unwrap();
    let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(w));
    BandMask::from_traversal(&traverse(&g, &cfg).unwrap())
}

fn random_rows(len: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len * dim)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect()
}

fn edge_count(band: &BandMask) -> usize {
    band.active_slots()
        .iter()
        .map(|s| s.edge)
        .max()
        .map_or(0, |m| m + 1)
}

fn random_weights(edges: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..edges).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Runs `f`, requires it to panic, and returns the panic message.
fn panic_message<R>(f: impl FnOnce() -> R) -> String {
    let payload = match catch_unwind(AssertUnwindSafe(f)) {
        Ok(_) => panic!("expected a panic"),
        Err(payload) => payload,
    };
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// A chunk whose read extent is exactly the legal ω-window.
fn chunk(start: usize, end: usize, window: usize, len: usize) -> Chunk {
    Chunk {
        start,
        end,
        read_lo: start.saturating_sub(window),
        read_hi: (end + window).min(len),
    }
}

#[test]
fn writer_map_allows_reclaims_and_detects_overlap() {
    let map = WriterMap::new("output row", 8);
    map.claim_range(0, 4, 0);
    map.claim(2, 0); // same writer accumulating again: fine
    assert_eq!(map.claimed(), 4);
    let msg = panic_message(|| map.claim(2, 1));
    assert!(msg.contains("race-check"), "got: {msg}");
    assert!(msg.contains("owned ranges overlap"), "got: {msg}");
}

#[test]
fn writer_map_completeness_detects_gaps() {
    let map = WriterMap::new("output row", 6);
    map.claim_range(0, 3, 0);
    map.claim_range(4, 6, 1); // row 3 never claimed
    let msg = panic_message(|| map.assert_complete());
    assert!(msg.contains("never claimed"), "got: {msg}");
}

#[test]
fn equivalence_grid_passes_under_race_check() {
    let band = band_fixture(40, 3);
    let dim = 5;
    let x = random_rows(band.len(), dim, 7);
    let edges = edge_count(&band);
    let weights = random_weights(edges, 9);
    let d_out = random_rows(band.len(), dim, 11);
    let fwd = banded_aggregate_serial(&band, &x, dim, &weights);
    let grad = banded_weight_grad_serial(&band, &x, &d_out, dim, edges);
    for threads in [2usize, 4, 8] {
        for chunk in [band.window(), 4 * band.window(), band.len().max(1)] {
            let par = Parallelism::pinned(threads).with_chunk_size(chunk);
            let got_fwd = banded_aggregate(&band, &x, dim, &weights, &par);
            let got_grad = banded_weight_grad(&band, &x, &d_out, dim, edges, &par);
            for (a, b) in fwd.iter().zip(&got_fwd) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} chunk={chunk}");
            }
            for (a, b) in grad.iter().zip(&got_grad) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} chunk={chunk}");
            }
        }
    }
}

#[test]
fn overlapping_ownership_panics_in_aggregate() {
    let band = band_fixture(40, 3);
    let (len, w) = (band.len(), band.window());
    let x = random_rows(len, 4, 1);
    let weights = random_weights(edge_count(&band), 2);
    let half = len / 2;
    // Second chunk re-owns the last ω rows of the first.
    let corrupt = ChunkPlan::from_raw_parts(
        len,
        w,
        vec![chunk(0, half, w, len), chunk(half - w, len, w, len)],
    );
    let msg = panic_message(|| banded_aggregate_with_plan(&band, &x, 4, &weights, &corrupt, 1));
    assert!(msg.contains("race-check"), "got: {msg}");
    assert!(msg.contains("owned ranges overlap"), "got: {msg}");
}

#[test]
fn coverage_gap_panics_on_completeness() {
    let band = band_fixture(40, 3);
    let (len, w) = (band.len(), band.window());
    let x = random_rows(len, 4, 3);
    let weights = random_weights(edge_count(&band), 4);
    let half = len / 2;
    // Rows [half, half + 1) belong to no chunk.
    let corrupt = ChunkPlan::from_raw_parts(
        len,
        w,
        vec![chunk(0, half, w, len), chunk(half + 1, len, w, len)],
    );
    let msg = panic_message(|| banded_aggregate_with_plan(&band, &x, 4, &weights, &corrupt, 1));
    assert!(msg.contains("never claimed"), "got: {msg}");
}

#[test]
fn narrow_read_window_panics_on_cross_boundary_read() {
    let band = band_fixture(40, 3);
    let (len, w) = (band.len(), band.window());
    let x = random_rows(len, 4, 5);
    let weights = random_weights(edge_count(&band), 6);
    let half = len / 2;
    // Owned ranges are a valid partition, but the read extents claim ω = 0:
    // the first cross-boundary in-band pair read must trip the check.
    let corrupt = ChunkPlan::from_raw_parts(
        len,
        w,
        vec![
            Chunk {
                start: 0,
                end: half,
                read_lo: 0,
                read_hi: half,
            },
            Chunk {
                start: half,
                end: len,
                read_lo: half,
                read_hi: len,
            },
        ],
    );
    let msg = panic_message(|| banded_aggregate_with_plan(&band, &x, 4, &weights, &corrupt, 1));
    assert!(msg.contains("outside its"), "got: {msg}");
}

#[test]
fn overlap_panics_through_the_threaded_path_too() {
    let band = band_fixture(40, 3);
    let (len, w) = (band.len(), band.window());
    let x = random_rows(len, 4, 7);
    let weights = random_weights(edge_count(&band), 8);
    let half = len / 2;
    let corrupt = ChunkPlan::from_raw_parts(
        len,
        w,
        vec![chunk(0, half, w, len), chunk(half - w, len, w, len)],
    );
    // std::thread::scope swallows the payload, but the panic must still
    // propagate out of the harness rather than corrupt results silently.
    let result = catch_unwind(AssertUnwindSafe(|| {
        banded_aggregate_with_plan(&band, &x, 4, &weights, &corrupt, 4)
    }));
    assert!(
        result.is_err(),
        "threaded run over overlapping plan must panic"
    );
}

#[test]
fn gemm_overlapping_row_partition_panics() {
    // Two ranges both claim rows [4, 8): the GEMM shadow writer map must
    // fire with the same overlap diagnostic as the banded engine — before
    // any slice of the output is handed to a worker.
    let (n, k, m) = (16usize, 8usize, 8usize);
    let a = random_rows(n, k, 51);
    let b = random_rows(k, m, 52);
    let mut out = vec![0.0f32; n * m];
    let msg = panic_message(|| {
        mega_exec::kernels::matmul_par_with_ranges(&a, &b, n, k, m, &[(0, 8), (4, 16)], &mut out);
    });
    assert!(msg.contains("race-check"), "got: {msg}");
    assert!(msg.contains("owned ranges overlap"), "got: {msg}");
    assert!(msg.contains("gemm output row"), "got: {msg}");
}

#[test]
fn gemm_row_coverage_gap_panics() {
    let (n, k, m) = (16usize, 8usize, 8usize);
    let a = random_rows(n, k, 53);
    let b = random_rows(k, m, 54);
    let mut out = vec![0.0f32; n * m];
    // Rows [8, 10) belong to no range.
    let msg = panic_message(|| {
        mega_exec::kernels::matmul_par_with_ranges(&a, &b, n, k, m, &[(0, 8), (10, 16)], &mut out);
    });
    assert!(msg.contains("never claimed"), "got: {msg}");
}

#[test]
fn gemm_equivalence_passes_under_race_check() {
    // The happy path through the instrumented GEMM partitioner: valid
    // partitions from every backend stay bit-identical to serial with the
    // writer map armed — the checked row-ownership proof for the dense
    // kernels, matching the banded grid above.
    use mega_exec::{Backend, BlockedBackend, ReferenceBackend, SimdBackend};
    let (n, k, m) = (96usize, 48usize, 40usize);
    let a = random_rows(n, k, 55);
    let b = random_rows(k, m, 56);
    let mut serial = vec![0.0f32; n * m];
    mega_exec::kernels::matmul(&a, &b, n, k, m, &mut serial);
    let backends: [(&str, Box<dyn Backend>); 3] = [
        ("reference", Box::new(ReferenceBackend)),
        ("blocked", Box::new(BlockedBackend)),
        ("simd", Box::new(SimdBackend::new())),
    ];
    for (name, backend) in backends {
        for threads in [2usize, 4] {
            let par = Parallelism::pinned(threads);
            let mut got = vec![0.0f32; n * m];
            backend.matmul(&a, &b, n, k, m, &par, &mut got);
            for (g, s) in got.iter().zip(&serial) {
                assert_eq!(g.to_bits(), s.to_bits(), "{name} threads={threads}");
            }
        }
    }
}

#[test]
fn weight_grad_duplicate_slot_claims_panic() {
    let band = band_fixture(30, 2);
    let (len, w) = (band.len(), band.window());
    let x = random_rows(len, 4, 9);
    let d_out = random_rows(len, 4, 10);
    let edges = edge_count(&band);
    // Two chunks that both own every row: every active slot is claimed
    // twice, by different writers.
    let corrupt = ChunkPlan::from_raw_parts(len, w, vec![chunk(0, len, w, len); 2]);
    let msg =
        panic_message(|| banded_weight_grad_with_plan(&band, &x, &d_out, 4, edges, &corrupt, 1));
    assert!(msg.contains("race-check"), "got: {msg}");
    assert!(msg.contains("edge slot"), "got: {msg}");
}
