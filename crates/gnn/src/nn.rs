//! Neural building blocks: parameter binding, linear layers, norms, MLPs.

use mega_tensor::init;
use mega_tensor::{ParamId, ParamStore, Tape, Tensor, Var};
use rand::Rng;

/// Tracks which tape leaf corresponds to which stored parameter during one
/// forward pass, and routes gradients back after `backward`.
#[derive(Debug, Default)]
pub struct Binder {
    bound: Vec<(ParamId, Var)>,
}

impl Binder {
    /// A fresh binder for one tape.
    pub fn new() -> Self {
        Binder::default()
    }

    /// Places parameter `p` on the tape and remembers the binding.
    pub fn bind(&mut self, tape: &mut Tape, store: &ParamStore, p: ParamId) -> Var {
        let v = store.leaf(tape, p);
        self.bound.push((p, v));
        v
    }

    /// Accumulates the gradients of every bound parameter into the store.
    pub fn apply(&self, store: &mut ParamStore, grads: &mega_tensor::Gradients) {
        for &(p, v) in &self.bound {
            store.accumulate(p, grads.wrt(v));
        }
    }

    /// Extracts the gradients of every bound parameter as owned
    /// `(param, grad)` pairs, in exactly [`Binder::apply`]'s binding order.
    /// This is the shippable form of a gradient shard: a distributed
    /// coordinator that replays shards' pair lists through
    /// `ParamStore::accumulate` in a fixed shard order reproduces the
    /// single-process accumulation bit-for-bit.
    pub fn shard_grads(&self, grads: &mega_tensor::Gradients) -> Vec<(ParamId, Tensor)> {
        self.bound
            .iter()
            .map(|&(p, v)| (p, grads.wrt(v).clone()))
            .collect()
    }

    /// Number of bindings recorded.
    pub fn len(&self) -> usize {
        self.bound.len()
    }

    /// Whether no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.bound.is_empty()
    }
}

/// A dense layer `x·W + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
}

impl Linear {
    /// Registers a `d_in × d_out` layer under `name`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut R,
    ) -> Self {
        let weight = store.register(&format!("{name}.w"), init::xavier_uniform(d_in, d_out, rng));
        let bias = store.register(&format!("{name}.b"), Tensor::zeros(1, d_out));
        Linear { weight, bias }
    }

    /// Applies the layer on the tape.
    pub fn forward(&self, tape: &mut Tape, binder: &mut Binder, store: &ParamStore, x: Var) -> Var {
        let w = binder.bind(tape, store, self.weight);
        let b = binder.bind(tape, store, self.bias);
        let y = tape.matmul(x, w);
        tape.add_row(y, b)
    }

    /// Applies the layer followed by a ReLU as one fused tape node
    /// (`relu(x·W + b)`), letting backends run the fused kernel. Matches
    /// `relu(forward(..))` value-for-value.
    pub fn forward_relu(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let w = binder.bind(tape, store, self.weight);
        let b = binder.bind(tape, store, self.bias);
        tape.linear_relu(x, w, b)
    }
}

/// Learnable affine normalization parameters (shared by layer/batch norm).
#[derive(Debug, Clone, Copy)]
pub struct NormParams {
    gamma: ParamId,
    beta: ParamId,
}

impl NormParams {
    /// Registers `gamma = 1`, `beta = 0` of width `d` under `name`.
    pub fn new(store: &mut ParamStore, name: &str, d: usize) -> Self {
        let gamma = store.register(&format!("{name}.gamma"), Tensor::full(1, d, 1.0));
        let beta = store.register(&format!("{name}.beta"), Tensor::zeros(1, d));
        NormParams { gamma, beta }
    }

    /// Row-wise layer norm.
    pub fn layer_norm(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let g = binder.bind(tape, store, self.gamma);
        let b = binder.bind(tape, store, self.beta);
        tape.layer_norm(x, g, b, 1e-5)
    }

    /// Column-wise batch norm (training statistics).
    pub fn batch_norm(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let g = binder.bind(tape, store, self.gamma);
        let b = binder.bind(tape, store, self.beta);
        tape.batch_norm(x, g, b, 1e-5)
    }
}

/// An embedding table: categorical ids → learnable rows.
#[derive(Debug, Clone, Copy)]
pub struct Embedding {
    table: ParamId,
}

impl Embedding {
    /// Registers a `vocab × d` table under `name`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        d: usize,
        rng: &mut R,
    ) -> Self {
        let table = store.register(name, init::xavier_uniform(vocab, d, rng));
        Embedding { table }
    }

    /// Looks up rows for `ids`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        ids: std::sync::Arc<Vec<usize>>,
    ) -> Var {
        let t = binder.bind(tape, store, self.table);
        tape.gather_rows(t, ids)
    }
}

/// A two-layer MLP with ReLU (`d_in → d_hidden → d_out`).
#[derive(Debug, Clone, Copy)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Registers the MLP under `name`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_hidden: usize,
        d_out: usize,
        rng: &mut R,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, &format!("{name}.fc1"), d_in, d_hidden, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), d_hidden, d_out, rng),
        }
    }

    /// Applies `fc2(relu(fc1(x)))`, with the first layer and its ReLU fused
    /// into one node.
    pub fn forward(&self, tape: &mut Tape, binder: &mut Binder, store: &ParamStore, x: Var) -> Var {
        let h = self.fc1.forward_relu(tape, binder, store, x);
        self.fc2.forward(tape, binder, store, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn linear_shapes_and_grads_flow() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.leaf(Tensor::full(4, 3, 1.0));
        let y = lin.forward(&mut tape, &mut binder, &store, x);
        assert_eq!(tape.value(y).shape(), (4, 2));
        let loss = tape.sum(y);
        let grads = tape.backward(loss);
        binder.apply(&mut store, &grads);
        let wid = store.id_of("l.w").unwrap();
        assert!(store.grad(wid).norm() > 0.0);
        assert_eq!(binder.len(), 2);
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let emb = Embedding::new(&mut store, "e", 5, 4, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let out = emb.forward(&mut tape, &mut binder, &store, Arc::new(vec![0, 4, 0]));
        assert_eq!(tape.value(out).shape(), (3, 4));
        // Row 0 repeated.
        assert_eq!(tape.value(out).row(0), tape.value(out).row(2));
    }

    #[test]
    fn mlp_forward_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut store, "m", 4, 8, 2, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.leaf(Tensor::full(5, 4, 0.5));
        let y = mlp.forward(&mut tape, &mut binder, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 2));
        assert_eq!(store.len(), 4); // two weights + two biases
    }

    #[test]
    fn norm_params_normalize() {
        let mut store = ParamStore::new();
        let np = NormParams::new(&mut store, "n", 3);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 8.0, 12.0]]));
        let y = np.layer_norm(&mut tape, &mut binder, &store, x);
        // Each row has ~zero mean under gamma=1, beta=0.
        for r in 0..2 {
            let row = tape.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
        }
    }
}
