//! Table I: model configuration statistics.
//!
//! Parameter volume (multiples of d²) and scatter/gather operator counts per
//! layer, derived from the actual model definitions — plus the true trainable
//! scalar counts of instantiated models as a cross-check.

use mega_bench::{save_json, TableWriter};
use mega_gnn::{Gnn, GnnConfig, ModelKind};
use mega_gpu_sim::ModelSpec;
use mega_tensor::ParamStore;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    param_volume_d2: usize,
    scatter_calls: usize,
    gather_calls: usize,
    instantiated_params_d16: usize,
}

fn main() {
    mega_obs::report::init_from_env();
    let d = 16usize;
    let mut table = TableWriter::new(&[
        "",
        "Parameter Volume",
        "Scatter(edges) calls",
        "Gather(nodes) calls",
        "instantiated @ d=16 (1 layer)",
    ]);
    let mut rows = Vec::new();
    for kind in [ModelKind::GatedGcn, ModelKind::GraphTransformer] {
        let spec = match kind {
            ModelKind::GatedGcn => ModelSpec::gated_gcn(d, 1),
            ModelKind::GraphTransformer => ModelSpec::graph_transformer(d, 1),
            ModelKind::Gat => ModelSpec::gat(d, 1),
        };
        let mut store = ParamStore::new();
        let cfg = GnnConfig::new(kind, 8, 4, 1)
            .with_hidden(d)
            .with_layers(1)
            .with_heads(4);
        let _ = Gnn::new(&mut store, cfg);
        // Subtract embedding + head parameters to isolate the layer.
        let mut layer_only = ParamStore::new();
        let cfg0 = GnnConfig::new(kind, 8, 4, 1)
            .with_hidden(d)
            .with_layers(2)
            .with_heads(4);
        let _ = Gnn::new(&mut layer_only, cfg0);
        let per_layer = layer_only.scalar_count() - store.scalar_count();
        table.row(&[
            spec.name.clone(),
            format!("{}d^2", spec.proj_per_layer),
            format!("x{}", spec.scatter_calls),
            format!("x{}", spec.gather_calls),
            per_layer.to_string(),
        ]);
        rows.push(Row {
            model: spec.name.clone(),
            param_volume_d2: spec.proj_per_layer,
            scatter_calls: spec.scatter_calls,
            gather_calls: spec.gather_calls,
            instantiated_params_d16: per_layer,
        });
    }
    mega_obs::data!("Table I — model configuration statistics\n");
    table.print();
    mega_obs::data!("\nPaper values: GCN 5d^2 / x1 / x2;  GT 14d^2 / x5 / x2.");
    save_json("tab01_model_stats", &rows);
}
