//! Bit-exact backend equivalence check.
//!
//! Trains the same fixed-seed model under two execution backends and prints
//! the loss trajectory as raw `f64` bit patterns. `--backend a,b` selects the
//! pair (default `reference,reference`); the process exits non-zero when the
//! trajectories differ, so CI can assert reference ≡ blocked directly.

use mega_datasets::{zinc, DatasetSpec};
use mega_exec::{backend_by_name, Backend};
use mega_gnn::{EngineChoice, GnnConfig, ModelKind, Trainer, TrainingHistory};
use std::process::ExitCode;
use std::sync::Arc;

fn run(engine: EngineChoice, backend: Arc<dyn Backend>) -> TrainingHistory {
    let ds = zinc(&DatasetSpec {
        train: 64,
        val: 16,
        test: 16,
        seed: 7,
    });
    let cfg = GnnConfig::new(ModelKind::GatedGcn, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(32)
        .with_layers(2)
        .with_heads(4);
    Trainer::new(engine)
        .with_epochs(3)
        .with_batch_size(8)
        .with_backend(backend)
        .run(&ds, cfg)
}

fn print_history(label: &str, hist: &TrainingHistory) {
    for r in &hist.records {
        println!(
            "{label} epoch {} train {:016x} val {:016x}",
            r.epoch,
            r.train_loss.to_bits(),
            r.val_loss.to_bits()
        );
    }
    println!("{label} test {:016x}", hist.test_loss.to_bits());
}

/// Loss trajectory as exact bit patterns, for comparison across backends.
fn bits(hist: &TrainingHistory) -> Vec<u64> {
    let mut v: Vec<u64> = hist
        .records
        .iter()
        .flat_map(|r| [r.train_loss.to_bits(), r.val_loss.to_bits()])
        .collect();
    v.push(hist.test_loss.to_bits());
    v
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut pair = "reference,reference".to_string();
    while let Some(a) = args.next() {
        if a == "--backend" {
            pair = args.next().unwrap_or_default();
        }
    }
    let names: Vec<&str> = pair.split(',').collect();
    let mut trajectories: Vec<(String, Vec<u64>)> = Vec::new();
    for name in &names {
        let Some(backend) = backend_by_name(name) else {
            eprintln!("unknown backend `{name}` (expected reference, blocked, or simd)");
            return ExitCode::FAILURE;
        };
        for engine in [EngineChoice::Baseline, EngineChoice::Mega] {
            let hist = run(engine, backend.clone());
            print_history(engine.label(), &hist);
            trajectories.push((format!("{name}/{}", engine.label()), bits(&hist)));
        }
    }
    // Compare the two backends engine-by-engine (Baseline vs Baseline,
    // Mega vs Mega) when a pair was requested.
    if names.len() == 2 {
        for e in 0..2 {
            let (ref la, ref a) = trajectories[e];
            let (ref lb, ref b) = trajectories[2 + e];
            if a != b {
                eprintln!("MISMATCH: {la} differs from {lb}");
                return ExitCode::FAILURE;
            }
            println!("MATCH: {la} == {lb} (bit-exact)");
        }
    }
    ExitCode::SUCCESS
}
