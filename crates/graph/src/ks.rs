//! Two-sample Kolmogorov–Smirnov test.
//!
//! The paper (§III, Table III) runs a KS test on per-graph degree
//! distributions and reports a similarity `μ(ε)` whose proximity to 1
//! "signifies a high degree of similarity among the distributions". We expose
//! both the classic KS statistic `D` (the supremum distance between empirical
//! CDFs) and the derived similarity `1 - D`.

/// The two-sample KS statistic `D = sup_x |F_a(x) - F_b(x)|`.
///
/// Returns 0.0 when both samples are empty, 1.0 when exactly one is empty.
///
/// # Example
///
/// ```
/// use mega_graph::ks;
///
/// let a = [1.0, 2.0, 3.0];
/// let d = ks::statistic(&a, &a);
/// assert!(d.abs() < 1e-12);
/// ```
pub fn statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let mut xa: Vec<f64> = a.to_vec();
    let mut xb: Vec<f64> = b.to_vec();
    xa.sort_by(|p, q| p.partial_cmp(q).expect("NaN in KS sample"));
    xb.sort_by(|p, q| p.partial_cmp(q).expect("NaN in KS sample"));
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na;
        let fb = j as f64 / nb;
        d = d.max((fa - fb).abs());
    }
    d
}

/// KS similarity `ε = 1 - D`; 1 means the empirical distributions coincide.
pub fn similarity(a: &[f64], b: &[f64]) -> f64 {
    1.0 - statistic(a, b)
}

/// Asymptotic two-sided p-value for the two-sample KS statistic, using the
/// Kolmogorov distribution approximation
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)` with the Smirnov effective
/// sample-size correction. Small p-values reject "same distribution".
pub fn p_value(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let d = statistic(a, b);
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let ne = (na * nb / (na + nb)).sqrt();
    let lambda = (ne + 0.12 + 0.11 / ne) * d;
    let mut sum = 0.0f64;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda.powi(2)).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [2.0, 2.0, 3.0, 4.0];
        assert!(statistic(&a, &a).abs() < 1e-12);
        assert!((similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0];
        let b = [10.0, 11.0];
        assert!((statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_half_overlap() {
        // F_a jumps at 1,2 ; F_b jumps at 2,3. At x in [2,3): F_a=1, F_b=0.5.
        let a = [1.0, 2.0];
        let b = [2.0, 3.0];
        assert!((statistic(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = [1.0, 5.0, 7.0, 9.0];
        let b = [2.0, 5.0, 6.0];
        assert!((statistic(&a, &b) - statistic(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_conventions() {
        assert_eq!(statistic(&[], &[]), 0.0);
        assert_eq!(statistic(&[1.0], &[]), 1.0);
        assert_eq!(p_value(&[], &[1.0]), 1.0);
    }

    #[test]
    fn p_value_monotone_in_distance() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let near: Vec<f64> = (0..50).map(|i| i as f64 + 0.3).collect();
        let far: Vec<f64> = (0..50).map(|i| i as f64 + 30.0).collect();
        assert!(p_value(&a, &near) > p_value(&a, &far));
        assert!(p_value(&a, &far) < 0.01);
    }
}
