//! GPU memory-system simulator and nvprof-style profiler.
//!
//! The paper's evaluation is a *memory-access-pattern* argument measured with
//! `nvprof` on a GeForce GTX 1080: DGL's index-driven gather/scatter kernels
//! issue scattered global-memory transactions, miss the (2 MiB) L2 cache,
//! stall the SMs, and end up dominating GNN training time, while dense
//! `sgemm` hides its memory traffic behind arithmetic. MEGA's banded kernels
//! restore sequential access. Lacking the GPU, this crate reproduces that
//! mechanism from first principles:
//!
//! * [`device`] — device configurations ([`DeviceConfig::gtx_1080`]).
//! * [`cache`] — a sectored, set-associative, LRU L2 cache model.
//! * [`coalesce`] — the warp-level coalescer: 32 lane addresses per warp are
//!   merged into distinct 32-byte sectors; each sector is one transaction.
//! * [`kernel`] — kernel taxonomy (`sgemm`, `dgl` gather/scatter, `cub`
//!   sort, `memcpy`, MEGA banded variants) and per-kernel counters.
//! * [`profiler`] — a device with a bump allocator and `launch_*` methods;
//!   every launch replays its true address stream through the coalescer and
//!   cache and charges cycles to a roofline-style timing model.
//! * [`report`] — nvprof-like tables: per-kernel SM efficiency, memory-stall
//!   percentage, global-load transactions, invocations, time share, and the
//!   paper's invocation-weighted aggregate metric.
//! * [`model`] — the GNN epoch cost model: expands a model configuration
//!   (Table I operator counts) over a batch of graphs into the kernel-launch
//!   sequence of one training epoch, for both the DGL-style baseline and the
//!   MEGA engine.
//!
//! # Example
//!
//! ```
//! use mega_gpu_sim::{DeviceConfig, Profiler};
//!
//! let mut p = Profiler::new(DeviceConfig::gtx_1080());
//! let a = p.alloc(1024 * 4);
//! // A coalesced read of 1024 f32 elements...
//! p.launch_memcpy(a, 1024 * 4);
//! // ...versus a scattered gather of the same volume.
//! let idx: Vec<usize> = (0..1024).map(|i| (i * 7919) % 1024).collect();
//! let b = p.alloc(1024 * 4);
//! p.launch_gather(b, &idx, 1, 1024);
//! let report = p.report();
//! assert!(report.kernels().len() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod device;
pub mod kernel;
pub mod model;
pub mod profiler;
pub mod report;
pub mod sim_backend;

pub use cache::SectoredCache;
pub use device::DeviceConfig;
pub use kernel::{KernelKind, KernelStats};
pub use model::{BatchTopology, EngineKind, EpochCost, GnnCostModel, ModelSpec};
pub use profiler::{DevicePtr, Profiler};
pub use report::{KernelRow, ProfileReport};
pub use sim_backend::SimBackend;
