//! Integration test: [`BufferPool`] telemetry lines up with the observability
//! layer.
//!
//! The pool counts hits and misses twice — once in its own atomics (always)
//! and once as `exec.pool.hits` / `exec.pool.misses` counters in `mega_obs`
//! (only while tracing is enabled). This test drives a scripted
//! acquire/release sequence with a known hit/miss pattern and asserts the two
//! views agree, and that counters stop accumulating once tracing is disabled.
//!
//! `mega_obs` state is process-global, so everything lives in a single `#[test]`
//! to avoid cross-test interference under the parallel test runner.

use mega_exec::BufferPool;

/// Counter value from the current snapshot, 0 when absent.
fn obs_counter(name: &str) -> u64 {
    mega_obs::snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn pool_counters_mirror_obs_counters() {
    mega_obs::reset();
    mega_obs::set_enabled(true);

    let pool = BufferPool::new();

    // Script: three cold acquires (all misses — the pool starts empty) ...
    let a = pool.acquire(64);
    let _b = pool.acquire(64);
    let c = pool.acquire(200);
    assert_eq!(pool.hits(), 0);
    assert_eq!(pool.misses(), 3);

    // ... return two of them ...
    pool.release(a); // parks in class 6 (capacity 64)
    pool.release(c); // parks in class 7 (largest power of two fitting 200+)

    // ... then re-acquire shapes the freelist can serve (hits) and one it
    // cannot (miss: class 6 now empty after the hit drains it).
    let d = pool.acquire(60); // class 6 request <- recycled `a`: hit
    assert_eq!(pool.hits(), 1);
    let _e = pool.acquire(64); // class 6 empty again: miss
    assert_eq!(pool.misses(), 4);

    // The obs counters must tell exactly the same story as the pool's own
    // telemetry accessors.
    assert_eq!(obs_counter("exec.pool.hits"), pool.hits());
    assert_eq!(obs_counter("exec.pool.misses"), pool.misses());
    assert_eq!(obs_counter("exec.pool.hits"), 1);
    assert_eq!(obs_counter("exec.pool.misses"), 4);

    // With tracing disabled the pool keeps counting internally but stops
    // emitting to the obs layer.
    mega_obs::set_enabled(false);
    pool.release(d);
    let _f = pool.acquire(32); // class 5 is empty: internal miss
    let _g = pool.acquire(64); // served by recycled `d`: internal hit
    assert_eq!(pool.hits(), 2);
    assert_eq!(pool.misses(), 5);
    assert_eq!(
        obs_counter("exec.pool.hits"),
        1,
        "no emission while disabled"
    );
    assert_eq!(
        obs_counter("exec.pool.misses"),
        4,
        "no emission while disabled"
    );

    // Re-enabling resumes emission from where the obs counters left off.
    mega_obs::set_enabled(true);
    let _h = pool.acquire(1024); // miss
    assert_eq!(pool.misses(), 6);
    assert_eq!(obs_counter("exec.pool.misses"), 5);

    mega_obs::set_enabled(false);
    mega_obs::reset();
}
