//! Node and path partitioners.

use mega_core::AttentionSchedule;
use mega_graph::{algo, Graph};

/// Hash partitioning: node `v` goes to partition `v mod k`. The classic
/// locality-oblivious baseline.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn hash_partition(g: &Graph, k: usize) -> Vec<usize> {
    assert!(k > 0, "need at least one partition");
    (0..g.node_count()).map(|v| v % k).collect()
}

/// BFS-locality partitioning: nodes are assigned to `k` near-equal chunks in
/// breadth-first discovery order, keeping neighborhoods together — a fairer
/// baseline than hashing.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn bfs_partition(g: &Graph, k: usize) -> Vec<usize> {
    assert!(k > 0, "need at least one partition");
    let n = g.node_count();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let r = algo::bfs(g, start);
        for v in r.order {
            if !std::mem::replace(&mut seen[v], true) || v == start {
                order.push(v);
            }
        }
    }
    // Deduplicate while preserving order (bfs from later starts only visits
    // unseen components, but the start itself is pushed above).
    let mut in_order = vec![false; n];
    order.retain(|&v| !std::mem::replace(&mut in_order[v], true));
    let chunk = n.div_ceil(k).max(1);
    let mut parts = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        parts[v] = (i / chunk).min(k - 1);
    }
    parts
}

/// Splits a path representation into `k` contiguous segments of near-equal
/// length; returns the partition of every path position.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn path_segments(schedule: &AttentionSchedule, k: usize) -> Vec<usize> {
    assert!(k > 0, "need at least one partition");
    let len = schedule.path().len();
    let chunk = len.div_ceil(k).max(1);
    (0..len).map(|i| (i / chunk).min(k - 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_core::{preprocess, MegaConfig};
    use mega_graph::generate;

    #[test]
    fn hash_partition_balanced() {
        let g = generate::cycle(12).unwrap();
        let p = hash_partition(&g, 3);
        for part in 0..3 {
            assert_eq!(p.iter().filter(|&&x| x == part).count(), 4);
        }
    }

    #[test]
    fn bfs_partition_covers_all_nodes() {
        let g = generate::barabasi_albert(
            50,
            2,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
        )
        .unwrap();
        let p = bfs_partition(&g, 5);
        assert_eq!(p.len(), 50);
        assert!(p.iter().all(|&x| x < 5));
        // Near-balanced: each part within chunk bounds.
        for part in 0..5 {
            let c = p.iter().filter(|&&x| x == part).count();
            assert!((1..=10).contains(&c), "part {part} has {c}");
        }
    }

    #[test]
    fn path_segments_are_contiguous() {
        let g = generate::complete(10).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let p = path_segments(&s, 3);
        assert_eq!(p.len(), s.path().len());
        for w in p.windows(2) {
            assert!(
                w[1] == w[0] || w[1] == w[0] + 1,
                "segments must be contiguous"
            );
        }
        assert_eq!(*p.last().unwrap(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let g = generate::cycle(4).unwrap();
        hash_partition(&g, 0);
    }
}
