//! Property-based tests for batching and engine equivalence.

use mega_core::{preprocess, CandidatePolicy, MegaConfig, WindowPolicy};
use mega_datasets::{GraphSample, Target};
use mega_gnn::nn::Binder;
use mega_gnn::{Batch, Gnn, GnnConfig, ModelKind};
use mega_graph::{Graph, GraphBuilder};
use mega_tensor::{ParamStore, Tape};
use proptest::prelude::*;

/// Arbitrary connected-ish sample with categorical features.
fn arb_sample() -> impl Strategy<Value = GraphSample> {
    (3usize..14).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n, 0..n), n..2 * n),
            proptest::collection::vec(0usize..4, n),
            0usize..4,
        )
            .prop_map(move |(pairs, node_features, _)| {
                let mut b = GraphBuilder::undirected(n);
                b.dedup(true);
                // Spanning chain guarantees some edges.
                for v in 1..n {
                    b.edge(v - 1, v).unwrap();
                }
                for (a, c) in pairs {
                    b.edge(a, c).unwrap();
                }
                let graph: Graph = b.build().unwrap();
                let edge_features = vec![0usize; graph.edge_count()];
                GraphSample {
                    node_features,
                    edge_features,
                    target: Target::Regression(1.0),
                    graph,
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Baseline and MEGA batches route identical per-node message multisets
    /// for arbitrary graphs, window sizes and policies.
    #[test]
    fn message_multisets_match(
        samples in proptest::collection::vec(arb_sample(), 1..4),
        window in 1usize..4,
        policy_ix in 0usize..3,
    ) {
        let policy = [
            CandidatePolicy::CorrelateArgmax,
            CandidatePolicy::FirstCandidate,
            CandidatePolicy::Random,
        ][policy_ix];
        let cfg = MegaConfig::default()
            .with_window(WindowPolicy::Fixed(window))
            .with_policy(policy);
        let schedules: Vec<_> = samples
            .iter()
            .map(|s| preprocess(&s.graph, &cfg).unwrap())
            .collect();
        let base = Batch::baseline(&samples);
        let mega = Batch::mega(&samples, &schedules);
        prop_assert_eq!(base.indices.msg_count(), mega.indices.msg_count());

        let collect = |b: &Batch| {
            let mut m: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for i in 0..b.indices.msg_count() {
                let src = b.indices.node_to_work[b.indices.msg_src_work[i]];
                m.entry(b.indices.msg_dst_node[i]).or_default().push(src);
            }
            for v in m.values_mut() {
                v.sort_unstable();
            }
            m
        };
        prop_assert_eq!(collect(&base), collect(&mega));
    }

    /// Forward passes agree between engines for arbitrary small batches.
    #[test]
    fn forward_passes_agree(samples in proptest::collection::vec(arb_sample(), 1..3)) {
        let cfg = GnnConfig::new(ModelKind::GatedGcn, 4, 1, 1)
            .with_hidden(8)
            .with_layers(2)
            .with_seed(3);
        let mut store = ParamStore::new();
        let model = Gnn::new(&mut store, cfg);
        let schedules: Vec<_> = samples
            .iter()
            .map(|s| preprocess(&s.graph, &MegaConfig::default()).unwrap())
            .collect();
        let base = Batch::baseline(&samples);
        let mega = Batch::mega(&samples, &schedules);

        let mut tb = Tape::new();
        let mut bb = Binder::new();
        let pb = model.forward(&mut tb, &mut bb, &store, &base);
        let mut tm = Tape::new();
        let mut bm = Binder::new();
        let pm = model.forward(&mut tm, &mut bm, &store, &mega);
        for (a, b) in tb.value(pb).as_slice().iter().zip(tm.value(pm).as_slice()) {
            prop_assert!((a - b).abs() < 5e-3 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    /// Batch indices are always in range.
    #[test]
    fn batch_indices_in_range(samples in proptest::collection::vec(arb_sample(), 1..4)) {
        let base = Batch::baseline(&samples);
        let idx = &base.indices;
        prop_assert!(idx.msg_src_work.iter().all(|&i| i < idx.work_rows));
        prop_assert!(idx.msg_dst_work.iter().all(|&i| i < idx.work_rows));
        prop_assert!(idx.msg_dst_node.iter().all(|&i| i < idx.n_nodes));
        prop_assert!(base.graph_of_node.iter().all(|&g| g < base.n_graphs()));
    }
}
