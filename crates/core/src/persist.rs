//! Schedule persistence.
//!
//! MEGA's preprocessing is decoupled from training (§III-B: it runs once on
//! the CPU); persisting the [`AttentionSchedule`] lets a training job — or a
//! fleet of distributed workers — load precomputed schedules instead of
//! re-traversing. JSON keeps the artifact inspectable; the types already
//! carry serde implementations.

use crate::error::MegaError;
use crate::schedule::AttentionSchedule;
use std::path::Path;

/// Serializes a schedule to a JSON string.
///
/// # Panics
///
/// Never — schedule types serialize infallibly.
pub fn to_json(schedule: &AttentionSchedule) -> String {
    serde_json::to_string(schedule).expect("schedule serialization is infallible")
}

/// Deserializes a schedule from JSON.
///
/// # Errors
///
/// [`MegaError::InvalidConfig`] when the JSON is malformed or structurally
/// inconsistent.
pub fn from_json(json: &str) -> Result<AttentionSchedule, MegaError> {
    serde_json::from_str(json).map_err(|e| MegaError::InvalidConfig {
        field: "json",
        reason: e.to_string(),
    })
}

/// Writes a schedule to a file.
///
/// # Errors
///
/// [`MegaError::InvalidConfig`] wrapping any I/O failure.
pub fn save<P: AsRef<Path>>(schedule: &AttentionSchedule, path: P) -> Result<(), MegaError> {
    std::fs::write(path.as_ref(), to_json(schedule)).map_err(|e| MegaError::InvalidConfig {
        field: "path",
        reason: format!("cannot write schedule: {e}"),
    })
}

/// Loads a schedule from a file.
///
/// # Errors
///
/// [`MegaError::InvalidConfig`] on I/O or parse failure.
pub fn load<P: AsRef<Path>>(path: P) -> Result<AttentionSchedule, MegaError> {
    let json = std::fs::read_to_string(path.as_ref()).map_err(|e| MegaError::InvalidConfig {
        field: "path",
        reason: format!("cannot read schedule: {e}"),
    })?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{preprocess, MegaConfig};
    use mega_graph::generate;

    fn sample() -> AttentionSchedule {
        let g = generate::complete(8).unwrap();
        preprocess(&g, &MegaConfig::default()).unwrap()
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let s = sample();
        let back = from_json(&to_json(&s)).unwrap();
        assert_eq!(s.gather_index(), back.gather_index());
        assert_eq!(s.band().active_slots(), back.band().active_slots());
        assert_eq!(s.stats(), back.stats());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("mega-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schedule.json");
        let s = sample();
        save(&s, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(s.gather_index(), back.gather_index());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json("{broken").is_err());
        assert!(load("/nonexistent/path/schedule.json").is_err());
    }
}
