//! Reverse-mode autograd tape.
//!
//! A [`Tape`] records a computation as a sequence of nodes; every op method
//! returns a [`Var`] handle. [`Tape::backward`] walks the nodes in reverse,
//! producing a gradient tensor per node. The op set is tailored to GNN
//! training: dense linear algebra, activations, normalizations, losses, and
//! the index-driven graph ops (row gather, scatter-add, segment softmax)
//! that express both the DGL-style baseline and MEGA's banded attention.
//!
//! Tape ops are thin autograd wrappers: the numeric work — forward kernels
//! and the matrix products of the backward pass — dispatches through a
//! [`Backend`] (default [`ReferenceBackend`], bit-identical to the
//! pre-backend tape), and output buffers come from a shared [`BufferPool`]
//! so steady-state training recycles allocations instead of making fresh
//! ones per node. Dropped tapes return their node buffers to the pool.
//!
//! # Planning mode
//!
//! By default the tape executes eagerly: each op method runs its kernel
//! before returning. [`Tape::set_planning`] switches to plan-then-execute:
//! op methods only *record* nodes (shapes are validated immediately, values
//! stay unmaterialized), and at the next flush boundary — a reduction or
//! other value-consuming op, an explicit [`Tape::flush`], or
//! [`Tape::backward`] via the loss op — the pending span first runs through
//! the peephole fusion pass (`plan.rs`; e.g. `matmul` → `add_row` →
//! `relu` collapses into one `linear_relu` node) and then executes. Fused
//! and eager execution are bit-identical, forward and backward; interior
//! nodes of a fused chain never materialize and panic if read.
//!
//! Independently of planning, a [`PackCache`] installed via
//! [`Tape::set_pack_cache`] lets GEMMs against parameters registered with
//! [`Tape::leaf_param`] reuse the backend's packed `b`-operand layout
//! across steps (forward in normal orientation, the `g · wᵀ` gradient GEMM
//! in transposed orientation) instead of re-packing per call. The trainer
//! invalidates the cache whenever the optimizer updates parameters.

use crate::plan;
use crate::tensor::Tensor;
use mega_exec::{
    kernels, Backend, BufferPool, Orientation, PackCache, PackedB, ReferenceBackend, Unary,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) enum Op {
    Leaf,
    MatMul(Var, Var),
    LinearRelu(Var, Var, Var),
    /// Planner-fused `leaky_relu(x · w + bias)` with a positive slope.
    LinearAct(Var, Var, Var, f32),
    /// Planner-fused `k · a + b` (a `scale` folded into an `add`).
    Axpy(Var, Var, f32),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    AddRow(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    LeakyRelu(Var, f32),
    Dropout(Var, Arc<Vec<bool>>, f32),
    Sigmoid(Var),
    Tanh(Var),
    Sum(Var),
    Mean(Var),
    DivEps(Var, Var, f32),
    RowDot(Var, Var),
    MulColBroadcast(Var, Var),
    ConcatCols(Arc<Vec<Var>>),
    GatherRows(Var, Arc<Vec<usize>>),
    ScatterAddRows(Var, Arc<Vec<usize>>),
    ScaleRows(Var, Arc<Vec<f32>>),
    SegmentSoftmax(Var, Arc<Vec<usize>>, usize),
    LayerNorm(Var, Var, Var, f32),
    BatchNorm(Var, Var, Var, f32),
    /// Planner-fused layer norm followed by a sign-preserving activation
    /// (`Relu` or `LeakyRelu` with positive slope).
    LayerNormAct(Var, Var, Var, f32, Unary),
    /// Planner-fused batch norm followed by a sign-preserving activation.
    BatchNormAct(Var, Var, Var, f32, Unary),
    L1Loss(Var, Arc<Tensor>),
    CrossEntropy(Var, Arc<Vec<usize>>),
}

impl Op {
    /// Stable metric-name suffix of the op kind, for the
    /// `tensor.tape.op.<kind>` counters.
    pub(crate) fn kind_name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::MatMul(..) => "matmul",
            Op::LinearRelu(..) => "linear_relu",
            Op::LinearAct(..) => "linear_leaky_relu",
            Op::Axpy(..) => "axpy",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::AddRow(..) => "add_row",
            Op::Scale(..) => "scale",
            Op::Relu(..) => "relu",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Dropout(..) => "dropout",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::Sum(..) => "sum",
            Op::Mean(..) => "mean",
            Op::DivEps(..) => "div_eps",
            Op::RowDot(..) => "row_dot",
            Op::MulColBroadcast(..) => "mul_col_broadcast",
            Op::ConcatCols(..) => "concat_cols",
            Op::GatherRows(..) => "gather_rows",
            Op::ScatterAddRows(..) => "scatter_add_rows",
            Op::ScaleRows(..) => "scale_rows",
            Op::SegmentSoftmax(..) => "segment_softmax",
            Op::LayerNorm(..) => "layer_norm",
            Op::BatchNorm(..) => "batch_norm",
            Op::LayerNormAct(..) => "layer_norm_act",
            Op::BatchNormAct(..) => "batch_norm_act",
            Op::L1Loss(..) => "l1_loss",
            Op::CrossEntropy(..) => "cross_entropy",
        }
    }

    /// Calls `f` with every input [`Var`] of this op, in operand order.
    /// The planner's fusion pass uses this to count consumers.
    pub(crate) fn for_each_input(&self, mut f: impl FnMut(Var)) {
        match self {
            Op::Leaf => {}
            Op::MatMul(a, b)
            | Op::Axpy(a, b, _)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::AddRow(a, b)
            | Op::DivEps(a, b, _)
            | Op::RowDot(a, b)
            | Op::MulColBroadcast(a, b) => {
                f(*a);
                f(*b);
            }
            Op::LinearRelu(x, w, bias) | Op::LinearAct(x, w, bias, _) => {
                f(*x);
                f(*w);
                f(*bias);
            }
            Op::Scale(a, _)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Dropout(a, _, _)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Sum(a)
            | Op::Mean(a)
            | Op::GatherRows(a, _)
            | Op::ScatterAddRows(a, _)
            | Op::ScaleRows(a, _)
            | Op::SegmentSoftmax(a, _, _)
            | Op::L1Loss(a, _)
            | Op::CrossEntropy(a, _) => f(*a),
            Op::ConcatCols(parts) => {
                for &p in parts.iter() {
                    f(p);
                }
            }
            Op::LayerNorm(a, gamma, beta, _)
            | Op::BatchNorm(a, gamma, beta, _)
            | Op::LayerNormAct(a, gamma, beta, _, _)
            | Op::BatchNormAct(a, gamma, beta, _, _) => {
                f(*a);
                f(*gamma);
                f(*beta);
            }
        }
    }
}

/// One tape node. `value` is `None` while the node is pending in planning
/// mode — and forever, if the planner fuses the node away — so the output
/// shape is tracked separately for shape validation and gradient sizing.
pub(crate) struct Node {
    pub(crate) value: Option<Tensor>,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) op: Op,
}

/// Gradients of one backward pass, indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Tensor>,
}

impl Gradients {
    /// The gradient with respect to `v` (zeros when `v` has no influence on
    /// the loss).
    ///
    /// # Panics
    ///
    /// Panics if `v` came from a different tape (index out of range).
    pub fn wrt(&self, v: Var) -> &Tensor {
        &self.grads[v.0]
    }
}

/// `t += s` elementwise — the slice-level twin of [`Tensor::add_assign`],
/// used by the backward pass to fold pooled kernel outputs into gradient
/// accumulators without wrapping them in a temporary tensor.
fn add_slice(t: &mut Tensor, s: &[f32]) {
    debug_assert_eq!(t.as_slice().len(), s.len());
    for (o, &v) in t.as_mut_slice().iter_mut().zip(s) {
        *o += v;
    }
}

/// Reverse-mode autograd tape. Build values with the op methods, then call
/// [`Tape::backward`] on a scalar node.
pub struct Tape {
    nodes: Vec<Node>,
    par: mega_core::Parallelism,
    backend: Arc<dyn Backend>,
    pool: Arc<BufferPool>,
    /// Plan-then-execute mode: op methods defer execution to the next
    /// flush boundary, where the fusion pass runs first.
    planning: bool,
    /// Recorded-but-unexecuted node indices, in recording order.
    pending: Vec<usize>,
    /// Node index → stable parameter key, for [`PackCache`] lookups.
    param_keys: BTreeMap<usize, u64>,
    /// Cross-step cache of packed GEMM `b` operands, shared with the
    /// trainer that invalidates it at optimizer-update boundaries.
    pack_cache: Option<Arc<PackCache>>,
}

impl Default for Tape {
    fn default() -> Self {
        Tape::new()
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        // Recycle every node's buffer; with a shared pool the next tape's
        // forward pass allocates (almost) nothing.
        for node in self.nodes.drain(..) {
            if let Some(value) = node.value {
                self.pool.release(value.into_data());
            }
        }
    }
}

impl Tape {
    /// A fresh, empty tape on the default [`ReferenceBackend`] with a
    /// private buffer pool.
    pub fn new() -> Self {
        Tape::with_exec(Arc::new(ReferenceBackend), Arc::new(BufferPool::new()))
    }

    /// A fresh tape dispatching kernels to `backend` and drawing output
    /// buffers from `pool` (share one pool across tapes to recycle
    /// allocations between batches).
    pub fn with_exec(backend: Arc<dyn Backend>, pool: Arc<BufferPool>) -> Self {
        Tape {
            nodes: Vec::new(),
            par: mega_core::Parallelism::default(),
            backend,
            pool,
            planning: false,
            pending: Vec::new(),
            param_keys: BTreeMap::new(),
            pack_cache: None,
        }
    }

    /// Switches plan-then-execute mode on or off. Turning planning off
    /// flushes any pending ops first so every node is materialized.
    ///
    /// Planning changes *when* ops run (deferred to flush boundaries, after
    /// the fusion pass), never *what* they compute: values and gradients
    /// are bit-identical to eager execution.
    pub fn set_planning(&mut self, on: bool) {
        if !on {
            self.flush();
        }
        self.planning = on;
    }

    /// Whether the tape is in plan-then-execute mode.
    pub fn planning(&self) -> bool {
        self.planning
    }

    /// Installs a shared cross-step cache of packed GEMM `b` operands.
    /// GEMMs whose `b` side is a parameter registered via
    /// [`Tape::leaf_param`] reuse the packed layout through this cache.
    /// The owner must call [`PackCache::invalidate`] whenever parameter
    /// values change (the trainer does so right after each optimizer step).
    pub fn set_pack_cache(&mut self, cache: Arc<PackCache>) {
        self.pack_cache = Some(cache);
    }

    /// Swaps the execution backend. Every backend is bit-compatible with the
    /// reference (enforced by property tests), so this never changes values.
    pub fn set_backend(&mut self, backend: Arc<dyn Backend>) {
        self.backend = backend;
    }

    /// The tape's execution backend.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// Swaps the buffer pool future nodes draw from.
    pub fn set_pool(&mut self, pool: Arc<BufferPool>) {
        self.pool = pool;
    }

    /// Sets the thread budget used by the tape's heavy kernels (currently the
    /// matrix products of [`Tape::matmul`] and its backward pass).
    ///
    /// The parallel kernels partition output rows, so results — forward
    /// values and gradients alike — are bit-identical for every setting.
    pub fn set_parallelism(&mut self, par: mega_core::Parallelism) {
        self.par = par;
    }

    /// The tape's current thread budget.
    pub fn parallelism(&self) -> mega_core::Parallelism {
        self.par
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value held at `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has no materialized value: it is still pending in
    /// planning mode (call [`Tape::flush`]) or the planner fused it away
    /// as the interior of an op chain.
    pub fn value(&self, v: Var) -> &Tensor {
        self.nodes[v.0].value.as_ref().unwrap_or_else(|| {
            panic!(
                "node {} ({}) has no materialized value: it is pending \
                 (call Tape::flush) or was fused away by the planner",
                v.0,
                self.nodes[v.0].op.kind_name()
            )
        })
    }

    /// Output shape of `v`, known even before materialization.
    fn dims(&self, v: Var) -> (usize, usize) {
        let n = &self.nodes[v.0];
        (n.rows, n.cols)
    }

    /// Backward-pass value access: every node the reverse walk touches is
    /// materialized (elided nodes receive no gradient by construction).
    fn node_value(&self, idx: usize) -> &Tensor {
        self.nodes[idx]
            .value
            .as_ref()
            .expect("backward touched an unmaterialized node")
    }

    /// The first node (in recording order) whose value holds a NaN or an
    /// infinity, as `(node index, op kind name)` — `None` when every value
    /// on the tape is finite.
    ///
    /// Recording order is evaluation order, so the returned node is where
    /// non-finiteness *entered* the forward pass: everything downstream is
    /// contaminated by it, everything upstream was still healthy. The
    /// trainer's NaN/Inf sentinel uses this to name the offending op in its
    /// diagnostic dump.
    pub fn first_nonfinite(&self) -> Option<(usize, &'static str)> {
        self.nodes.iter().enumerate().find_map(|(i, n)| {
            let value = n.value.as_ref()?;
            value
                .as_slice()
                .iter()
                .any(|v| !v.is_finite())
                .then(|| (i, n.op.kind_name()))
        })
    }

    fn push_node(&mut self, value: Option<Tensor>, rows: usize, cols: usize, op: Op) -> Var {
        if mega_obs::enabled() {
            mega_obs::counter_add("tensor.tape.ops", 1);
            let mut name = String::with_capacity(32);
            name.push_str("tensor.tape.op.");
            name.push_str(op.kind_name());
            mega_obs::counter_add(&name, 1);
        }
        self.nodes.push(Node {
            value,
            rows,
            cols,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records an already-computed value (leaves and flush-boundary ops).
    fn push_value(&mut self, value: Tensor, op: Op) -> Var {
        let (rows, cols) = value.shape();
        self.push_node(Some(value), rows, cols, op)
    }

    /// Records a backend-dispatched op. Eager tapes execute it on the
    /// spot; planning tapes defer it to the next flush boundary.
    fn record(&mut self, rows: usize, cols: usize, op: Op) -> Var {
        let v = self.push_node(None, rows, cols, op);
        if self.planning {
            if mega_obs::enabled() {
                mega_obs::counter_add("tensor.plan.deferred", 1);
            }
            self.pending.push(v.0);
        } else {
            self.execute_node(v.0);
        }
        v
    }

    /// Materializes every pending op, running the fusion pass first.
    /// A no-op on eager tapes and when nothing is pending.
    pub fn flush(&mut self) {
        self.flush_with_roots(&[]);
    }

    /// Flush variant for value-consuming ops: `roots` are about to be read,
    /// so the fusion pass must not elide them.
    fn flush_with_roots(&mut self, roots: &[Var]) {
        if self.pending.is_empty() {
            return;
        }
        let root_ids: Vec<usize> = roots.iter().map(|v| v.0).collect();
        let (elided, stats) = plan::fuse(&mut self.nodes, &self.pending, &root_ids);
        if mega_obs::enabled() {
            mega_obs::counter_add("tensor.plan.flushes", 1);
            if stats.elided > 0 {
                mega_obs::counter_add("tensor.plan.elided", stats.elided as u64);
            }
        }
        let pending = std::mem::take(&mut self.pending);
        for idx in pending {
            if !elided.contains(&idx) {
                self.execute_node(idx);
            }
        }
    }

    /// Records an input tensor (parameter or constant); gradients are
    /// computed for every leaf reachable from the loss.
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push_value(t, Op::Leaf)
    }

    /// Records a *parameter* leaf with a stable identity `key` (one key per
    /// parameter, reused across tapes/steps). GEMMs that consume the
    /// parameter as their `b` operand route through the installed
    /// [`PackCache`] under this key, reusing the packed layout across steps
    /// until the cache is invalidated.
    pub fn leaf_param(&mut self, t: Tensor, key: u64) -> Var {
        let v = self.leaf(t);
        self.param_keys.insert(v.0, key);
        v
    }

    /// Acquires a pooled buffer sized for an `rows × cols` output.
    fn out_buf(&self, rows: usize, cols: usize) -> Vec<f32> {
        self.pool.acquire(rows * cols)
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let ((n, k), (br, m)) = (self.dims(a), self.dims(b));
        assert_eq!(k, br, "matmul: inner dims {n}x{k} · {br}x{m}");
        self.record(n, m, Op::MatMul(a, b))
    }

    /// Fused dense layer: `relu(x · w + bias)` in one node.
    ///
    /// Forward and backward match the unfused `matmul` → `add_row` → `relu`
    /// chain value-for-value while saving two intermediate tensors and two
    /// memory sweeps; backends may fuse further (see `BlockedBackend`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `bias` is not `1 × w.cols()`.
    pub fn linear_relu(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let ((n, k), (wr, m), (br, bc)) = (self.dims(x), self.dims(w), self.dims(bias));
        assert_eq!(k, wr, "linear_relu: inner dims {n}x{k} · {wr}x{m}");
        assert_eq!(br, 1, "bias must be a single row");
        assert_eq!(bc, m, "bias width mismatch");
        self.record(n, m, Op::LinearRelu(x, w, bias))
    }

    /// Shape-checked recorder for same-shape elementwise binary ops.
    fn elementwise_op(&mut self, a: Var, b: Var, op: Op) -> Var {
        let (x, y) = (self.dims(a), self.dims(b));
        assert_eq!(
            x,
            y,
            "{}: shape mismatch {:?} vs {:?}",
            op.kind_name(),
            x,
            y
        );
        self.record(x.0, x.1, op)
    }

    /// Elementwise sum of same-shape tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.elementwise_op(a, b, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.elementwise_op(a, b, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.elementwise_op(a, b, Op::Mul(a, b))
    }

    /// Adds a `1 × c` bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × a.cols()`.
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let ((r, c), (br, bc)) = (self.dims(a), self.dims(bias));
        assert_eq!(br, 1, "bias must be a single row");
        assert_eq!(bc, c, "bias width mismatch");
        self.record(r, c, Op::AddRow(a, bias))
    }

    /// Multiplies every element by `k`.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let (r, c) = self.dims(a);
        self.record(r, c, Op::Scale(a, k))
    }

    /// Same-shape unary op recorder.
    fn unary_op(&mut self, a: Var, op: Op) -> Var {
        let (r, c) = self.dims(a);
        self.record(r, c, op)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary_op(a, Op::Relu(a))
    }

    /// Leaky rectified linear unit: `x` if positive, else `slope * x`.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        self.unary_op(a, Op::LeakyRelu(a, slope))
    }

    /// Inverted dropout with a precomputed keep-mask: kept elements are
    /// scaled by `1 / keep_prob`, dropped elements become zero. The caller
    /// supplies the mask so training loops control the randomness.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the element count or
    /// `keep_prob` is not in `(0, 1]`.
    pub fn dropout(&mut self, a: Var, mask: Arc<Vec<bool>>, keep_prob: f32) -> Var {
        let (r, c) = self.dims(a);
        assert_eq!(mask.len(), r * c, "one mask bit per element");
        assert!(
            keep_prob > 0.0 && keep_prob <= 1.0,
            "keep_prob must be in (0, 1]"
        );
        self.flush_with_roots(&[a]);
        let inv = 1.0 / keep_prob;
        let mut out = self.value(a).clone();
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            *o = if mask[i] { *o * inv } else { 0.0 };
        }
        self.push_value(out, Op::Dropout(a, mask, keep_prob))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary_op(a, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary_op(a, Op::Tanh(a))
    }

    /// Sum of all elements (scalar `1 × 1`).
    pub fn sum(&mut self, a: Var) -> Var {
        self.flush_with_roots(&[a]);
        let v = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push_value(v, Op::Sum(a))
    }

    /// Mean of all elements (scalar `1 × 1`).
    pub fn mean(&mut self, a: Var) -> Var {
        self.flush_with_roots(&[a]);
        let v = Tensor::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push_value(v, Op::Mean(a))
    }

    /// Elementwise `a / (b + eps)` for same-shape tensors (the paper's gated
    /// aggregation normalizer).
    pub fn div_eps(&mut self, a: Var, b: Var, eps: f32) -> Var {
        self.flush_with_roots(&[a, b]);
        let v = self.value(a).zip_map(self.value(b), |x, y| x / (y + eps));
        self.push_value(v, Op::DivEps(a, b, eps))
    }

    /// Row-wise dot product of same-shape tensors: output is `r × 1` with
    /// `out[i] = Σ_c a[i,c]·b[i,c]` (attention scores).
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.dims(a), self.dims(b), "row_dot shape mismatch");
        self.flush_with_roots(&[a, b]);
        let (x, y) = (self.value(a), self.value(b));
        let mut out = Tensor::zeros(x.rows(), 1);
        for r in 0..x.rows() {
            let s: f32 = x.row(r).iter().zip(y.row(r)).map(|(&p, &q)| p * q).sum();
            out.set(r, 0, s);
        }
        self.push_value(out, Op::RowDot(a, b))
    }

    /// Broadcast-multiplies each row of `a` (`r × c`) by the matching scalar
    /// in `w` (`r × 1`) — applying attention weights to values.
    pub fn mul_col_broadcast(&mut self, a: Var, w: Var) -> Var {
        let ((r, _), (wr, wc)) = (self.dims(a), self.dims(w));
        assert_eq!(wc, 1, "weights must be a column");
        assert_eq!(r, wr, "row count mismatch");
        self.flush_with_roots(&[a, w]);
        let (x, y) = (self.value(a), self.value(w));
        let mut out = x.clone();
        for r in 0..out.rows() {
            let k = y.at(r, 0);
            for o in out.row_mut(r) {
                *o *= k;
            }
        }
        self.push_value(out, Op::MulColBroadcast(a, w))
    }

    /// Horizontally concatenates tensors with equal row counts (multi-head
    /// attention heads → model width).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        self.flush_with_roots(parts);
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut offset = 0usize;
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                let src = t.row(r).to_vec();
                out.row_mut(r)[offset..offset + src.len()].copy_from_slice(&src);
            }
            offset += t.cols();
        }
        self.push_value(out, Op::ConcatCols(Arc::new(parts.to_vec())))
    }

    /// Gathers rows of `a` by `index` (e.g. node features → per-edge source
    /// features, or node features → path positions).
    pub fn gather_rows(&mut self, a: Var, index: Arc<Vec<usize>>) -> Var {
        let (_, c) = self.dims(a);
        let rows = index.len();
        self.record(rows, c, Op::GatherRows(a, index))
    }

    /// Scatter-adds rows of `a` into `out_rows` buckets by `index` (e.g.
    /// per-edge messages → destination nodes, or path positions → nodes).
    pub fn scatter_add_rows(&mut self, a: Var, index: Arc<Vec<usize>>, out_rows: usize) -> Var {
        let (_, c) = self.dims(a);
        self.record(out_rows, c, Op::ScatterAddRows(a, index))
    }

    /// Scales row `i` by `factors[i]` (segment means, appearance averaging).
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != a.rows()`.
    pub fn scale_rows(&mut self, a: Var, factors: Arc<Vec<f32>>) -> Var {
        let (r, c) = self.dims(a);
        assert_eq!(factors.len(), r, "one factor per row required");
        self.record(r, c, Op::ScaleRows(a, factors))
    }

    /// Column-wise softmax within row segments: rows sharing `segments[i]`
    /// form one softmax group per column (attention over a node's incident
    /// edges). `n_segments` bounds the segment ids.
    ///
    /// # Panics
    ///
    /// Panics if `segments.len() != a.rows()` or an id is out of range.
    pub fn segment_softmax(&mut self, a: Var, segments: Arc<Vec<usize>>, n_segments: usize) -> Var {
        let (r, c) = self.dims(a);
        assert_eq!(segments.len(), r, "one segment id per row required");
        self.record(r, c, Op::SegmentSoftmax(a, segments, n_segments))
    }

    /// Shared shape validation of the norm-op family.
    fn norm_dims(&self, kind: &str, a: Var, gamma: Var, beta: Var) -> (usize, usize) {
        let (r, c) = self.dims(a);
        assert_eq!(self.dims(gamma), (1, c), "{kind} gamma shape");
        assert_eq!(self.dims(beta), (1, c), "{kind} beta shape");
        (r, c)
    }

    /// Row-wise layer normalization with learnable `gamma`, `beta` (each
    /// `1 × c`).
    pub fn layer_norm(&mut self, a: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (r, c) = self.norm_dims("layer_norm", a, gamma, beta);
        self.record(r, c, Op::LayerNorm(a, gamma, beta, eps))
    }

    /// Column-wise batch normalization (statistics over rows) with learnable
    /// `gamma`, `beta` (each `1 × c`). Training-mode statistics only.
    pub fn batch_norm(&mut self, a: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (r, c) = self.norm_dims("batch_norm", a, gamma, beta);
        self.record(r, c, Op::BatchNorm(a, gamma, beta, eps))
    }

    /// Mean absolute error against a constant target (scalar output).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn l1_loss(&mut self, pred: Var, target: Tensor) -> Var {
        assert_eq!(self.dims(pred), target.shape(), "l1 target shape mismatch");
        self.flush_with_roots(&[pred]);
        let p = self.value(pred);
        let n = (p.rows() * p.cols()).max(1) as f32;
        let loss = p
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f32>()
            / n;
        self.push_value(
            Tensor::from_vec(1, 1, vec![loss]),
            Op::L1Loss(pred, Arc::new(target)),
        )
    }

    /// Softmax cross-entropy over rows of `logits` against integer class
    /// labels (scalar mean output).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or a label is out of range.
    pub fn cross_entropy(&mut self, logits: Var, labels: Arc<Vec<usize>>) -> Var {
        assert_eq!(
            labels.len(),
            self.dims(logits).0,
            "one label per row required"
        );
        self.flush_with_roots(&[logits]);
        let x = self.value(logits);
        let mut loss = 0.0f32;
        for i in 0..x.rows() {
            let row = x.row(i);
            assert!(labels[i] < x.cols(), "label {} out of range", labels[i]);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let logsum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            loss += logsum - row[labels[i]];
        }
        loss /= x.rows().max(1) as f32;
        self.push_value(
            Tensor::from_vec(1, 1, vec![loss]),
            Op::CrossEntropy(logits, labels),
        )
    }

    /// Looks up (or builds) the cached packed form of parameter `v` as a
    /// GEMM `b` operand. `None` when no cache is installed, `v` is not a
    /// registered parameter, or the backend has no packed representation.
    ///
    /// `Orientation::Transposed` caches the pack of the parameter's
    /// transpose — a cache hit skips both the transpose and the packing of
    /// the backward pass's `g · wᵀ` GEMM.
    fn packed_for(&self, v: Var, orientation: Orientation) -> Option<Arc<PackedB>> {
        let cache = self.pack_cache.as_ref()?;
        if !self.backend.supports_prepack() {
            return None;
        }
        let key = *self.param_keys.get(&v.0)?;
        let t = self.nodes[v.0].value.as_ref()?;
        let (r, c) = t.shape();
        cache.get_or_pack(key, orientation, || match orientation {
            Orientation::Normal => self.backend.prepack(t.as_slice(), r, c),
            Orientation::Transposed => {
                let mut bt = self.pool.acquire(r * c);
                kernels::transpose(t.as_slice(), r, c, &mut bt);
                let packed = self.backend.prepack(&bt, c, r);
                self.pool.release(bt);
                packed
            }
        })
    }

    /// Executes one recorded node, materializing its value. Flush-boundary
    /// ops (losses, reductions, dropout, concat) compute at record time and
    /// never come through here.
    fn execute_node(&mut self, idx: usize) {
        let op = self.nodes[idx].op.clone();
        let (rows, cols) = (self.nodes[idx].rows, self.nodes[idx].cols);
        let value = match &op {
            Op::MatMul(a, b) => {
                let t = mega_obs::timer();
                let (n, k) = self.dims(*a);
                let m = cols;
                let mut out = self.out_buf(n, m);
                if let Some(packed) = self.packed_for(*b, Orientation::Normal) {
                    self.backend.matmul_packed(
                        self.value(*a).as_slice(),
                        &packed,
                        n,
                        &self.par,
                        &mut out,
                    );
                } else {
                    self.backend.matmul(
                        self.value(*a).as_slice(),
                        self.value(*b).as_slice(),
                        n,
                        k,
                        m,
                        &self.par,
                        &mut out,
                    );
                }
                t.observe("tensor.matmul_ns");
                Tensor::from_vec(n, m, out)
            }
            Op::LinearRelu(x, w, bias) => {
                let t = mega_obs::timer();
                let (n, k) = self.dims(*x);
                let m = cols;
                let mut out = self.out_buf(n, m);
                if let Some(packed) = self.packed_for(*w, Orientation::Normal) {
                    self.backend.linear_relu_packed(
                        self.value(*x).as_slice(),
                        &packed,
                        self.value(*bias).as_slice(),
                        n,
                        &self.par,
                        &mut out,
                    );
                } else {
                    self.backend.linear_relu(
                        self.value(*x).as_slice(),
                        self.value(*w).as_slice(),
                        self.value(*bias).as_slice(),
                        n,
                        k,
                        m,
                        &self.par,
                        &mut out,
                    );
                }
                t.observe("tensor.matmul_ns");
                Tensor::from_vec(n, m, out)
            }
            Op::LinearAct(x, w, bias, slope) => {
                let t = mega_obs::timer();
                let (n, k) = self.dims(*x);
                let m = cols;
                let mut out = self.out_buf(n, m);
                if let Some(packed) = self.packed_for(*w, Orientation::Normal) {
                    // Packed GEMM plus the same in-place epilogue the
                    // default unpacked path applies.
                    self.backend.matmul_packed(
                        self.value(*x).as_slice(),
                        &packed,
                        n,
                        &self.par,
                        &mut out,
                    );
                    kernels::bias_leaky_relu_inplace(
                        &mut out,
                        self.value(*bias).as_slice(),
                        *slope,
                        n,
                        m,
                    );
                } else {
                    self.backend.linear_leaky_relu(
                        self.value(*x).as_slice(),
                        self.value(*w).as_slice(),
                        self.value(*bias).as_slice(),
                        *slope,
                        n,
                        k,
                        m,
                        &self.par,
                        &mut out,
                    );
                }
                t.observe("tensor.matmul_ns");
                Tensor::from_vec(n, m, out)
            }
            Op::Axpy(a, b, k) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.axpy(
                    self.value(*a).as_slice(),
                    *k,
                    self.value(*b).as_slice(),
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::Add(a, b) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.add(
                    self.value(*a).as_slice(),
                    self.value(*b).as_slice(),
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::Sub(a, b) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.sub(
                    self.value(*a).as_slice(),
                    self.value(*b).as_slice(),
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::Mul(a, b) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.mul(
                    self.value(*a).as_slice(),
                    self.value(*b).as_slice(),
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::AddRow(a, bias) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.add_bias_rows(
                    self.value(*a).as_slice(),
                    self.value(*bias).as_slice(),
                    rows,
                    cols,
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::Scale(a, k) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.scale(self.value(*a).as_slice(), *k, &mut out);
                Tensor::from_vec(rows, cols, out)
            }
            Op::Relu(a) => self.execute_unary(*a, Unary::Relu, rows, cols),
            Op::LeakyRelu(a, slope) => self.execute_unary(*a, Unary::LeakyRelu(*slope), rows, cols),
            Op::Sigmoid(a) => self.execute_unary(*a, Unary::Sigmoid, rows, cols),
            Op::Tanh(a) => self.execute_unary(*a, Unary::Tanh, rows, cols),
            Op::GatherRows(a, index) => {
                let x = self.value(*a);
                let mut out = self.out_buf(rows, cols);
                self.backend
                    .gather_rows(x.as_slice(), x.rows(), cols, index, &mut out);
                Tensor::from_vec(rows, cols, out)
            }
            Op::ScatterAddRows(a, index) => {
                let x = self.value(*a);
                let mut out = self.out_buf(rows, cols);
                self.backend
                    .scatter_add_rows(x.as_slice(), index, cols, rows, &mut out);
                Tensor::from_vec(rows, cols, out)
            }
            Op::ScaleRows(a, factors) => {
                let mut out = self.out_buf(rows, cols);
                self.backend
                    .scale_rows(self.value(*a).as_slice(), factors, cols, &mut out);
                Tensor::from_vec(rows, cols, out)
            }
            Op::SegmentSoftmax(a, segments, n_segments) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.segment_softmax(
                    self.value(*a).as_slice(),
                    rows,
                    cols,
                    segments,
                    *n_segments,
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::LayerNorm(a, gamma, beta, eps) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.layer_norm(
                    self.value(*a).as_slice(),
                    self.value(*gamma).as_slice(),
                    self.value(*beta).as_slice(),
                    rows,
                    cols,
                    *eps,
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::BatchNorm(a, gamma, beta, eps) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.batch_norm(
                    self.value(*a).as_slice(),
                    self.value(*gamma).as_slice(),
                    self.value(*beta).as_slice(),
                    rows,
                    cols,
                    *eps,
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::LayerNormAct(a, gamma, beta, eps, act) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.layer_norm_act(
                    self.value(*a).as_slice(),
                    self.value(*gamma).as_slice(),
                    self.value(*beta).as_slice(),
                    rows,
                    cols,
                    *eps,
                    *act,
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::BatchNormAct(a, gamma, beta, eps, act) => {
                let mut out = self.out_buf(rows, cols);
                self.backend.batch_norm_act(
                    self.value(*a).as_slice(),
                    self.value(*gamma).as_slice(),
                    self.value(*beta).as_slice(),
                    rows,
                    cols,
                    *eps,
                    *act,
                    &mut out,
                );
                Tensor::from_vec(rows, cols, out)
            }
            Op::Leaf
            | Op::Dropout(..)
            | Op::Sum(..)
            | Op::Mean(..)
            | Op::DivEps(..)
            | Op::RowDot(..)
            | Op::MulColBroadcast(..)
            | Op::ConcatCols(..)
            | Op::L1Loss(..)
            | Op::CrossEntropy(..) => {
                unreachable!("op `{}` materializes at record time", op.kind_name())
            }
        };
        self.nodes[idx].value = Some(value);
    }

    /// Elementwise activation executor shared by the unary ops.
    fn execute_unary(&self, a: Var, unary: Unary, rows: usize, cols: usize) -> Tensor {
        let mut out = self.out_buf(rows, cols);
        self.backend
            .unary(unary, self.value(a).as_slice(), &mut out);
        Tensor::from_vec(rows, cols, out)
    }

    /// Masks an upstream gradient by a sign-preserving activation's output,
    /// replicating the unfused activation backward element for element.
    /// Only `Relu` and positive-slope `LeakyRelu` reach here (the planner
    /// fuses nothing else).
    fn mask_by_output(&self, g: &Tensor, out: &Tensor, act: Unary) -> Tensor {
        match act {
            Unary::Relu => g.zip_map(out, |gg, ov| if ov > 0.0 { gg } else { 0.0 }),
            Unary::LeakyRelu(s) => g.zip_map(out, |gg, ov| if ov > 0.0 { gg } else { gg * s }),
            _ => unreachable!("planner only fuses sign-preserving activations"),
        }
    }

    /// Runs the backward pass from the scalar node `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        let _span = mega_obs::span("tape_backward");
        mega_obs::counter_add("tensor.tape.backward_passes", 1);
        assert!(
            self.pending.is_empty(),
            "backward on a planning tape with pending ops — flush first \
             (loss ops flush automatically)"
        );
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        let mut grads: Vec<Tensor> = self
            .nodes
            .iter()
            .map(|n| Tensor::zeros(n.rows, n.cols))
            .collect();
        grads[loss.0].set(0, 0, 1.0);

        for idx in (0..=loss.0).rev() {
            if grads[idx].as_slice().iter().all(|&g| g == 0.0) {
                continue;
            }
            let g = grads[idx].clone();
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (va, vb) = (self.node_value(a.0), self.node_value(b.0));
                    let (n, k, m) = (va.rows(), va.cols(), vb.cols());
                    // da = g · bᵀ, db = aᵀ · g — both through the backend so
                    // an accelerated GEMM speeds the backward pass too. When
                    // b is a cached parameter, the packed transpose is
                    // reused across steps instead of rebuilt per call.
                    let mut da = self.pool.acquire(n * k);
                    if let Some(packed) = self.packed_for(*b, Orientation::Transposed) {
                        self.backend
                            .matmul_packed(g.as_slice(), &packed, n, &self.par, &mut da);
                    } else {
                        let mut bt = self.pool.acquire(k * m);
                        kernels::transpose(vb.as_slice(), k, m, &mut bt);
                        self.backend
                            .matmul(g.as_slice(), &bt, n, m, k, &self.par, &mut da);
                        self.pool.release(bt);
                    }
                    add_slice(&mut grads[a.0], &da);
                    self.pool.release(da);
                    let mut at = self.pool.acquire(n * k);
                    kernels::transpose(va.as_slice(), n, k, &mut at);
                    let mut db = self.pool.acquire(k * m);
                    self.backend
                        .matmul(&at, g.as_slice(), k, n, m, &self.par, &mut db);
                    add_slice(&mut grads[b.0], &db);
                    self.pool.release(at);
                    self.pool.release(db);
                }
                Op::LinearRelu(x, w, bias) | Op::LinearAct(x, w, bias, _) => {
                    let slope = match &self.nodes[idx].op {
                        Op::LinearAct(_, _, _, s) => Some(*s),
                        _ => None,
                    };
                    let (vx, vw) = (self.node_value(x.0), self.node_value(w.0));
                    let out = self.node_value(idx);
                    let (n, k, m) = (vx.rows(), vx.cols(), vw.cols());
                    // Mask the upstream gradient by the activation: the kept
                    // pre-activations are exactly the positive outputs (both
                    // activations preserve sign — leaky slopes are positive).
                    let mut gm = self.pool.acquire(n * m);
                    match slope {
                        None => {
                            for ((o, &gv), &ov) in
                                gm.iter_mut().zip(g.as_slice()).zip(out.as_slice())
                            {
                                *o = if ov > 0.0 { gv } else { 0.0 };
                            }
                        }
                        Some(s) => {
                            for ((o, &gv), &ov) in
                                gm.iter_mut().zip(g.as_slice()).zip(out.as_slice())
                            {
                                *o = if ov > 0.0 { gv } else { gv * s };
                            }
                        }
                    }
                    // dbias = column sums of gm, folded row-major as the
                    // unfused AddRow backward does.
                    let mut db = self.pool.acquire(m);
                    for r in 0..n {
                        for c in 0..m {
                            db[c] += gm[r * m + c];
                        }
                    }
                    add_slice(&mut grads[bias.0], &db);
                    self.pool.release(db);
                    // dx = gm · wᵀ, dw = xᵀ · gm — the MatMul backward on the
                    // masked gradient. dx reuses the cached packed transpose
                    // of a parameter weight when available.
                    let mut dx = self.pool.acquire(n * k);
                    if let Some(packed) = self.packed_for(*w, Orientation::Transposed) {
                        self.backend
                            .matmul_packed(&gm, &packed, n, &self.par, &mut dx);
                    } else {
                        let mut wt = self.pool.acquire(k * m);
                        kernels::transpose(vw.as_slice(), k, m, &mut wt);
                        self.backend.matmul(&gm, &wt, n, m, k, &self.par, &mut dx);
                        self.pool.release(wt);
                    }
                    add_slice(&mut grads[x.0], &dx);
                    self.pool.release(dx);
                    let mut xt = self.pool.acquire(n * k);
                    kernels::transpose(vx.as_slice(), n, k, &mut xt);
                    let mut dw = self.pool.acquire(k * m);
                    self.backend.matmul(&xt, &gm, k, n, m, &self.par, &mut dw);
                    add_slice(&mut grads[w.0], &dw);
                    self.pool.release(xt);
                    self.pool.release(dw);
                    self.pool.release(gm);
                }
                Op::Axpy(a, b, k) => {
                    // Matches the unfused scale→add reverse order: the add
                    // side first, then the scaled side.
                    grads[b.0].add_assign(&g);
                    let da = g.scale(*k);
                    grads[a.0].add_assign(&da);
                }
                Op::Add(a, b) => {
                    grads[a.0].add_assign(&g);
                    grads[b.0].add_assign(&g);
                }
                Op::Sub(a, b) => {
                    grads[a.0].add_assign(&g);
                    let neg = g.scale(-1.0);
                    grads[b.0].add_assign(&neg);
                }
                Op::Mul(a, b) => {
                    let da = g.mul(self.node_value(b.0));
                    let db = g.mul(self.node_value(a.0));
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::AddRow(a, bias) => {
                    grads[a.0].add_assign(&g);
                    let mut db = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            db.set(0, c, db.at(0, c) + g.at(r, c));
                        }
                    }
                    grads[bias.0].add_assign(&db);
                }
                Op::Scale(a, k) => {
                    let da = g.scale(*k);
                    grads[a.0].add_assign(&da);
                }
                Op::Relu(a) => {
                    let da =
                        g.zip_map(self.node_value(a.0), |gg, x| if x > 0.0 { gg } else { 0.0 });
                    grads[a.0].add_assign(&da);
                }
                Op::LeakyRelu(a, slope) => {
                    let da = g.zip_map(
                        self.node_value(a.0),
                        |gg, x| {
                            if x > 0.0 {
                                gg
                            } else {
                                gg * slope
                            }
                        },
                    );
                    grads[a.0].add_assign(&da);
                }
                Op::Dropout(a, mask, keep_prob) => {
                    let inv = 1.0 / keep_prob;
                    let mut da = g.clone();
                    for (i, o) in da.as_mut_slice().iter_mut().enumerate() {
                        *o = if mask[i] { *o * inv } else { 0.0 };
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::Sigmoid(a) => {
                    let y = self.node_value(idx);
                    let da = g.zip_map(y, |gg, s| gg * s * (1.0 - s));
                    grads[a.0].add_assign(&da);
                }
                Op::Tanh(a) => {
                    let y = self.node_value(idx);
                    let da = g.zip_map(y, |gg, t| gg * (1.0 - t * t));
                    grads[a.0].add_assign(&da);
                }
                Op::Sum(a) => {
                    let (r, c) = self.dims(*a);
                    let da = Tensor::full(r, c, g.at(0, 0));
                    grads[a.0].add_assign(&da);
                }
                Op::Mean(a) => {
                    let (r, c) = self.dims(*a);
                    let n = (r * c).max(1) as f32;
                    let da = Tensor::full(r, c, g.at(0, 0) / n);
                    grads[a.0].add_assign(&da);
                }
                Op::DivEps(a, b, eps) => {
                    let (va, vb) = (self.node_value(a.0), self.node_value(b.0));
                    let da = g.zip_map(vb, |gg, y| gg / (y + eps));
                    let mut db = Tensor::zeros(vb.rows(), vb.cols());
                    for i in 0..db.as_slice().len() {
                        let y = vb.as_slice()[i] + eps;
                        db.as_mut_slice()[i] = -g.as_slice()[i] * va.as_slice()[i] / (y * y);
                    }
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::RowDot(a, b) => {
                    let (va, vb) = (self.node_value(a.0), self.node_value(b.0));
                    let mut da = Tensor::zeros(va.rows(), va.cols());
                    let mut db = Tensor::zeros(vb.rows(), vb.cols());
                    for r in 0..va.rows() {
                        let gr = g.at(r, 0);
                        for c in 0..va.cols() {
                            da.set(r, c, gr * vb.at(r, c));
                            db.set(r, c, gr * va.at(r, c));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::MulColBroadcast(a, w) => {
                    let (va, vw) = (self.node_value(a.0), self.node_value(w.0));
                    let mut da = Tensor::zeros(va.rows(), va.cols());
                    let mut dw = Tensor::zeros(vw.rows(), 1);
                    for r in 0..va.rows() {
                        let k = vw.at(r, 0);
                        let mut acc = 0.0f32;
                        for c in 0..va.cols() {
                            da.set(r, c, g.at(r, c) * k);
                            acc += g.at(r, c) * va.at(r, c);
                        }
                        dw.set(r, 0, acc);
                    }
                    grads[a.0].add_assign(&da);
                    grads[w.0].add_assign(&dw);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0usize;
                    for &p in parts.iter() {
                        let w = self.dims(p).1;
                        let mut dp = Tensor::zeros(g.rows(), w);
                        for r in 0..g.rows() {
                            for c in 0..w {
                                dp.set(r, c, g.at(r, offset + c));
                            }
                        }
                        grads[p.0].add_assign(&dp);
                        offset += w;
                    }
                }
                Op::GatherRows(a, index) => {
                    let da = g.scatter_add_rows(index, self.dims(*a).0);
                    grads[a.0].add_assign(&da);
                }
                Op::ScatterAddRows(a, index) => {
                    let da = g.gather_rows(index);
                    grads[a.0].add_assign(&da);
                }
                Op::ScaleRows(a, factors) => {
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        let k = factors[r];
                        for v in da.row_mut(r) {
                            *v *= k;
                        }
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::SegmentSoftmax(a, segments, n_segments) => {
                    let p = self.node_value(idx);
                    let (r, c) = p.shape();
                    // dx = p ⊙ (g - Σ_seg (g ⊙ p)) per column.
                    let mut dots = vec![0.0f32; n_segments * c];
                    for i in 0..r {
                        let s = segments[i];
                        for j in 0..c {
                            dots[s * c + j] += g.at(i, j) * p.at(i, j);
                        }
                    }
                    let mut da = Tensor::zeros(r, c);
                    for i in 0..r {
                        let s = segments[i];
                        for j in 0..c {
                            da.set(i, j, p.at(i, j) * (g.at(i, j) - dots[s * c + j]));
                        }
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::LayerNorm(a, gamma, beta, eps) | Op::LayerNormAct(a, gamma, beta, eps, _) => {
                    // For the fused variant, first mask the upstream
                    // gradient by the activation exactly as the unfused
                    // activation backward would (output sign == norm-output
                    // sign because the fused activations preserve sign).
                    let ge = match &self.nodes[idx].op {
                        Op::LayerNormAct(_, _, _, _, act) => {
                            self.mask_by_output(&g, self.node_value(idx), *act)
                        }
                        _ => g.clone(),
                    };
                    let x = self.node_value(a.0);
                    let gm = self.node_value(gamma.0);
                    let (r, c) = x.shape();
                    let cn = c as f32;
                    let mut da = Tensor::zeros(r, c);
                    let mut dgamma = Tensor::zeros(1, c);
                    let mut dbeta = Tensor::zeros(1, c);
                    for i in 0..r {
                        let row = x.row(i);
                        let mean = row.iter().sum::<f32>() / cn;
                        let var = row.iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / cn;
                        let inv = 1.0 / (var + eps).sqrt();
                        let xhat: Vec<f32> = row.iter().map(|&v| (v - mean) * inv).collect();
                        let dxhat: Vec<f32> = (0..c).map(|j| ge.at(i, j) * gm.at(0, j)).collect();
                        let mean_dxhat = dxhat.iter().sum::<f32>() / cn;
                        let mean_dxhat_xhat =
                            dxhat.iter().zip(&xhat).map(|(&d, &h)| d * h).sum::<f32>() / cn;
                        for j in 0..c {
                            da.set(
                                i,
                                j,
                                inv * (dxhat[j] - mean_dxhat - xhat[j] * mean_dxhat_xhat),
                            );
                            dgamma.set(0, j, dgamma.at(0, j) + ge.at(i, j) * xhat[j]);
                            dbeta.set(0, j, dbeta.at(0, j) + ge.at(i, j));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[gamma.0].add_assign(&dgamma);
                    grads[beta.0].add_assign(&dbeta);
                }
                Op::BatchNorm(a, gamma, beta, eps) | Op::BatchNormAct(a, gamma, beta, eps, _) => {
                    let ge = match &self.nodes[idx].op {
                        Op::BatchNormAct(_, _, _, _, act) => {
                            self.mask_by_output(&g, self.node_value(idx), *act)
                        }
                        _ => g.clone(),
                    };
                    let x = self.node_value(a.0);
                    let gm = self.node_value(gamma.0);
                    let (r, c) = x.shape();
                    let rn = r.max(1) as f32;
                    let mut da = Tensor::zeros(r, c);
                    let mut dgamma = Tensor::zeros(1, c);
                    let mut dbeta = Tensor::zeros(1, c);
                    for j in 0..c {
                        let mut mean = 0.0f32;
                        for i in 0..r {
                            mean += x.at(i, j);
                        }
                        mean /= rn;
                        let mut var = 0.0f32;
                        for i in 0..r {
                            var += (x.at(i, j) - mean).powi(2);
                        }
                        var /= rn;
                        let inv = 1.0 / (var + eps).sqrt();
                        let xhat: Vec<f32> = (0..r).map(|i| (x.at(i, j) - mean) * inv).collect();
                        let dxhat: Vec<f32> = (0..r).map(|i| ge.at(i, j) * gm.at(0, j)).collect();
                        let mean_dxhat = dxhat.iter().sum::<f32>() / rn;
                        let mean_dxhat_xhat =
                            dxhat.iter().zip(&xhat).map(|(&d, &h)| d * h).sum::<f32>() / rn;
                        for i in 0..r {
                            da.set(
                                i,
                                j,
                                inv * (dxhat[i] - mean_dxhat - xhat[i] * mean_dxhat_xhat),
                            );
                            dgamma.set(0, j, dgamma.at(0, j) + ge.at(i, j) * xhat[i]);
                            dbeta.set(0, j, dbeta.at(0, j) + ge.at(i, j));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[gamma.0].add_assign(&dgamma);
                    grads[beta.0].add_assign(&dbeta);
                }
                Op::L1Loss(pred, target) => {
                    let p = self.node_value(pred.0);
                    let n = (p.rows() * p.cols()).max(1) as f32;
                    let scale = g.at(0, 0) / n;
                    let dp = p.zip_map(target, |a, b| {
                        if a > b {
                            scale
                        } else if a < b {
                            -scale
                        } else {
                            0.0
                        }
                    });
                    grads[pred.0].add_assign(&dp);
                }
                Op::CrossEntropy(logits, labels) => {
                    let x = self.node_value(logits.0);
                    let (r, c) = x.shape();
                    let scale = g.at(0, 0) / r.max(1) as f32;
                    let mut dx = Tensor::zeros(r, c);
                    for i in 0..r {
                        let row = x.row(i);
                        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                        let sum: f32 = row.iter().map(|&v| (v - max).exp()).sum();
                        for (j, &logit) in row.iter().enumerate() {
                            let p = (logit - max).exp() / sum;
                            let y = if labels[i] == j { 1.0 } else { 0.0 };
                            dx.set(i, j, scale * (p - y));
                        }
                    }
                    grads[logits.0].add_assign(&dx);
                }
            }
        }
        Gradients { grads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference gradient check of a scalar function of one
    /// leaf tensor.
    fn check_grad<F>(input: Tensor, f: F, tol: f32)
    where
        F: Fn(&mut Tape, Var) -> Var,
    {
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = f(&mut tape, x);
        let analytic = tape.backward(loss).wrt(x).clone();

        let h = 1e-3f32;
        for i in 0..input.as_slice().len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += h;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let lp = f(&mut tp, xp);
            let fp = tp.value(lp).at(0, 0);

            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= h;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let lm = f(&mut tm, xm);
            let fm = tm.value(lm).at(0, 0);

            let numeric = (fp - fm) / (2.0 * h);
            let got = analytic.as_slice()[i];
            assert!(
                (numeric - got).abs() < tol,
                "element {i}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    fn sample(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Deterministic pseudo-random values in (-1, 1), away from relu kinks.
        let mut v = Vec::with_capacity(rows * cols);
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        for _ in 0..rows * cols {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let x = ((state >> 8) as f32 / (1u32 << 24) as f32) * 1.6 - 0.8;
            v.push(if x.abs() < 0.05 { x + 0.1 } else { x });
        }
        Tensor::from_vec(rows, cols, v)
    }

    #[test]
    fn grad_matmul() {
        check_grad(
            sample(3, 4, 1),
            |t, x| {
                let w = t.leaf(sample(4, 2, 2));
                let y = t.matmul(x, w);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_linear_relu() {
        check_grad(
            sample(3, 4, 28),
            |t, x| {
                let w = t.leaf(sample(4, 2, 29));
                let b = t.leaf(sample(1, 2, 31));
                let y = t.linear_relu(x, w, b);
                t.sum(y)
            },
            2e-2,
        );
        // Weight and bias gradients via the weight as the probed leaf.
        check_grad(
            sample(4, 2, 32),
            |t, w| {
                let x = t.leaf(sample(3, 4, 33));
                let b = t.leaf(sample(1, 2, 34));
                let y = t.linear_relu(x, w, b);
                t.sum(y)
            },
            2e-2,
        );
    }

    #[test]
    fn linear_relu_matches_unfused_chain() {
        let x = sample(5, 7, 40);
        let w = sample(7, 3, 41);
        let b = sample(1, 3, 42);

        let mut fused = Tape::new();
        let (fx, fw, fb) = (
            fused.leaf(x.clone()),
            fused.leaf(w.clone()),
            fused.leaf(b.clone()),
        );
        let fy = fused.linear_relu(fx, fw, fb);
        let floss = fused.sum(fy);
        let fg = fused.backward(floss);

        let mut unfused = Tape::new();
        let (ux, uw, ub) = (unfused.leaf(x), unfused.leaf(w), unfused.leaf(b));
        let um = unfused.matmul(ux, uw);
        let ua = unfused.add_row(um, ub);
        let uy = unfused.relu(ua);
        let uloss = unfused.sum(uy);
        let ug = unfused.backward(uloss);

        for (a, c) in fused
            .value(fy)
            .as_slice()
            .iter()
            .zip(unfused.value(uy).as_slice())
        {
            assert_eq!(a.to_bits(), c.to_bits());
        }
        for (v_f, v_u) in [(fx, ux), (fw, uw), (fb, ub)] {
            for (a, c) in fg.wrt(v_f).as_slice().iter().zip(ug.wrt(v_u).as_slice()) {
                assert_eq!(a.to_bits(), c.to_bits());
            }
        }
    }

    #[test]
    fn shared_pool_recycles_node_buffers() {
        use mega_exec::{BufferPool, ReferenceBackend};
        let pool = Arc::new(BufferPool::new());
        for _ in 0..3 {
            let mut tape = Tape::with_exec(Arc::new(ReferenceBackend), pool.clone());
            let a = tape.leaf(sample(8, 8, 50));
            let b = tape.leaf(sample(8, 8, 51));
            let c = tape.matmul(a, b);
            let loss = tape.sum(c);
            let _ = tape.backward(loss);
        }
        // Later tapes must have drawn buffers recycled from earlier drops.
        assert!(pool.hits() > 0, "pool never recycled a buffer");
    }

    #[test]
    fn grad_elementwise_chain() {
        check_grad(
            sample(2, 3, 3),
            |t, x| {
                let y = t.mul(x, x);
                let z = t.scale(y, 0.5);
                t.mean(z)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        check_grad(
            sample(2, 3, 4),
            |t, x| {
                let y = t.sigmoid(x);
                t.sum(y)
            },
            1e-2,
        );
        check_grad(
            sample(2, 3, 5),
            |t, x| {
                let y = t.tanh(x);
                t.sum(y)
            },
            1e-2,
        );
        check_grad(
            sample(2, 3, 6),
            |t, x| {
                let y = t.relu(x);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_add_row_bias() {
        check_grad(
            sample(1, 3, 7),
            |t, bias| {
                let a = t.leaf(sample(4, 3, 8));
                let y = t.add_row(a, bias);
                let z = t.mul(y, y);
                t.sum(z)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_div_eps() {
        check_grad(
            sample(2, 2, 9),
            |t, x| {
                let d = t.leaf(Tensor::full(2, 2, 2.0));
                let y = t.div_eps(x, d, 1e-3);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_row_dot_and_broadcast() {
        check_grad(
            sample(3, 4, 10),
            |t, x| {
                let other = t.leaf(sample(3, 4, 11));
                let w = t.row_dot(x, other);
                let y = t.mul_col_broadcast(other, w);
                t.sum(y)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        let idx = Arc::new(vec![0usize, 2, 2, 1]);
        check_grad(
            sample(3, 2, 12),
            move |t, x| {
                let g = t.gather_rows(x, idx.clone());
                let sq = t.mul(g, g);
                let s = t.scatter_add_rows(sq, Arc::new(vec![0, 0, 1, 1]), 2);
                t.sum(s)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_segment_softmax() {
        let segs = Arc::new(vec![0usize, 0, 1, 1, 1]);
        check_grad(
            sample(5, 2, 13),
            move |t, x| {
                let p = t.segment_softmax(x, segs.clone(), 2);
                let w = t.leaf(sample(5, 2, 14));
                let y = t.mul(p, w);
                t.sum(y)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        check_grad(
            sample(3, 4, 15),
            |t, x| {
                let gamma = t.leaf(Tensor::full(1, 4, 1.2));
                let beta = t.leaf(Tensor::full(1, 4, 0.1));
                let y = t.layer_norm(x, gamma, beta, 1e-5);
                let w = t.leaf(sample(3, 4, 16));
                let z = t.mul(y, w);
                t.sum(z)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_batch_norm() {
        check_grad(
            sample(4, 3, 17),
            |t, x| {
                let gamma = t.leaf(Tensor::full(1, 3, 0.9));
                let beta = t.leaf(Tensor::full(1, 3, -0.2));
                let y = t.batch_norm(x, gamma, beta, 1e-5);
                let w = t.leaf(sample(4, 3, 18));
                let z = t.mul(y, w);
                t.sum(z)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_leaky_relu() {
        check_grad(
            sample(2, 3, 27),
            |t, x| {
                let y = t.leaky_relu(x, 0.2);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn dropout_forward_and_grad() {
        let mask = Arc::new(vec![true, false, true, true]);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_rows(&[&[2.0, 2.0], &[2.0, 2.0]]));
        let y = tape.dropout(x, mask.clone(), 0.5);
        assert_eq!(tape.value(y).as_slice(), &[4.0, 0.0, 4.0, 4.0]);
        let loss = tape.sum(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.wrt(x).as_slice(), &[2.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "one mask bit per element")]
    fn dropout_mask_length_checked() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(2, 2));
        tape.dropout(x, Arc::new(vec![true]), 0.5);
    }

    #[test]
    fn grad_losses() {
        let target = sample(3, 1, 19);
        check_grad(
            sample(3, 1, 20),
            move |t, x| t.l1_loss(x, target.clone()),
            1e-2,
        );
        let labels = Arc::new(vec![0usize, 2, 1]);
        check_grad(
            sample(3, 3, 21),
            move |t, x| t.cross_entropy(x, labels.clone()),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_cols() {
        check_grad(
            sample(2, 2, 22),
            |t, x| {
                let other = t.leaf(sample(2, 3, 23));
                let y = t.concat_cols(&[x, other]);
                let w = t.leaf(sample(2, 5, 24));
                let z = t.mul(y, w);
                t.sum(z)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_scale_rows_and_sub() {
        let f = Arc::new(vec![0.5f32, 2.0, -1.0]);
        check_grad(
            sample(3, 2, 25),
            move |t, x| {
                let y = t.scale_rows(x, f.clone());
                let o = t.leaf(sample(3, 2, 26));
                let d = t.sub(y, o);
                let sq = t.mul(d, d);
                t.mean(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn unused_leaf_gets_zero_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(2, 2, 1.0));
        let unused = tape.leaf(Tensor::full(3, 1, 5.0));
        let loss = tape.sum(x);
        let grads = tape.backward(loss);
        assert!(grads.wrt(unused).as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn grad_accumulates_over_shared_use() {
        // loss = sum(x + x) -> dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(2, 2, 1.0));
        let y = tape.add(x, x);
        let loss = tape.sum(y);
        let grads = tape.backward(loss);
        assert!(grads
            .wrt(x)
            .as_slice()
            .iter()
            .all(|&g| (g - 2.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(2, 2));
        tape.backward(x);
    }

    #[test]
    fn first_nonfinite_names_the_entry_point() {
        let mut tape = Tape::new();
        let healthy = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(tape.first_nonfinite(), None);
        // Inf enters through a scale; everything downstream is contaminated
        // but the scan must name the first offender in recording order.
        let blown = tape.scale(healthy, f32::INFINITY);
        let _downstream = tape.relu(blown);
        let (idx, kind) = tape.first_nonfinite().expect("inf on tape");
        assert_eq!(idx, 1);
        assert_eq!(kind, "scale");
        // NaN is caught too (inf - inf inside an add of opposing infs).
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 1, vec![f32::NAN]));
        let (idx, kind) = tape.first_nonfinite().expect("nan on tape");
        assert_eq!((idx, kind), (0, "leaf"));
        let _ = x;
    }

    /// Asserts two tensors are bitwise identical.
    fn assert_bits(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn planner_fuses_linear_chain_bit_identical() {
        let x = sample(5, 7, 60);
        let w = sample(7, 3, 61);
        let b = sample(1, 3, 62);

        let mut eager = Tape::new();
        let (ex, ew, eb) = (
            eager.leaf(x.clone()),
            eager.leaf(w.clone()),
            eager.leaf(b.clone()),
        );
        let em = eager.matmul(ex, ew);
        let ea = eager.add_row(em, eb);
        let ey = eager.relu(ea);
        let eloss = eager.sum(ey);
        let eg = eager.backward(eloss);

        let mut planned = Tape::new();
        planned.set_planning(true);
        let (px, pw, pb) = (
            planned.leaf(x.clone()),
            planned.leaf(w.clone()),
            planned.leaf(b.clone()),
        );
        let pm = planned.matmul(px, pw);
        let pa = planned.add_row(pm, pb);
        let py = planned.relu(pa);
        let ploss = planned.sum(py); // flush boundary: fusion runs here
        let pg = planned.backward(ploss);

        assert_bits(planned.value(py), eager.value(ey));
        assert_bits(planned.value(ploss), eager.value(eloss));
        for (pv, ev) in [(px, ex), (pw, ew), (pb, eb)] {
            assert_bits(pg.wrt(pv), eg.wrt(ev));
        }
        // The interior nodes were fused away and never materialized.
        assert!(planned.nodes[pm.0].value.is_none());
        assert!(planned.nodes[pa.0].value.is_none());
        // The same chain with a leaky tail fuses too (positive slope).
        let mut eager = Tape::new();
        let (ex, ew, eb) = (
            eager.leaf(x.clone()),
            eager.leaf(w.clone()),
            eager.leaf(b.clone()),
        );
        let em = eager.matmul(ex, ew);
        let ea = eager.add_row(em, eb);
        let ey = eager.leaky_relu(ea, 0.2);
        let eloss = eager.sum(ey);
        let eg = eager.backward(eloss);
        let mut planned = Tape::new();
        planned.set_planning(true);
        let (px, pw, pb) = (planned.leaf(x), planned.leaf(w), planned.leaf(b));
        let pm = planned.matmul(px, pw);
        let pa = planned.add_row(pm, pb);
        let py = planned.leaky_relu(pa, 0.2);
        let ploss = planned.sum(py);
        let pg = planned.backward(ploss);
        assert_bits(planned.value(py), eager.value(ey));
        assert!(planned.nodes[pm.0].value.is_none());
        assert!(planned.nodes[pa.0].value.is_none());
        for (pv, ev) in [(px, ex), (pw, ew), (pb, eb)] {
            assert_bits(pg.wrt(pv), eg.wrt(ev));
        }
    }

    #[test]
    fn planner_fuses_axpy_and_norm_activations() {
        // scale → add (both operand orders), layer_norm → leaky_relu,
        // batch_norm → relu: planned values and gradients must be bitwise
        // equal to the eager unfused chain.
        let x = sample(4, 6, 70);
        let o = sample(4, 6, 71);
        for scale_on_left in [true, false] {
            let run = |planning: bool| {
                let mut t = Tape::new();
                t.set_planning(planning);
                let (vx, vo) = (t.leaf(x.clone()), t.leaf(o.clone()));
                let s = t.scale(vx, 0.75);
                let y = if scale_on_left {
                    t.add(s, vo)
                } else {
                    t.add(vo, s)
                };
                let loss = t.mean(y);
                let g = t.backward(loss);
                let elided = t.nodes[s.0].value.is_none();
                (
                    t.value(y).clone(),
                    g.wrt(vx).clone(),
                    g.wrt(vo).clone(),
                    elided,
                )
            };
            let (ey, egx, ego, _) = run(false);
            let (py, pgx, pgo, elided) = run(true);
            assert!(elided, "scale not fused into axpy");
            assert_bits(&py, &ey);
            assert_bits(&pgx, &egx);
            assert_bits(&pgo, &ego);
        }

        for batch in [false, true] {
            let run = |planning: bool| {
                let mut t = Tape::new();
                t.set_planning(planning);
                let vx = t.leaf(x.clone());
                let gamma = t.leaf(Tensor::full(1, 6, 1.1));
                let beta = t.leaf(Tensor::full(1, 6, -0.3));
                let n = if batch {
                    t.batch_norm(vx, gamma, beta, 1e-5)
                } else {
                    t.layer_norm(vx, gamma, beta, 1e-5)
                };
                let y = if batch {
                    t.relu(n)
                } else {
                    t.leaky_relu(n, 0.1)
                };
                let loss = t.sum(y);
                let g = t.backward(loss);
                let elided = t.nodes[n.0].value.is_none();
                (
                    t.value(y).clone(),
                    g.wrt(vx).clone(),
                    g.wrt(gamma).clone(),
                    g.wrt(beta).clone(),
                    elided,
                )
            };
            let (ey, egx, egg, egb, _) = run(false);
            let (py, pgx, pgg, pgb, elided) = run(true);
            assert!(elided, "norm not fused into norm-activation");
            assert_bits(&py, &ey);
            assert_bits(&pgx, &egx);
            assert_bits(&pgg, &egg);
            assert_bits(&pgb, &egb);
        }
    }

    #[test]
    #[should_panic(expected = "fused away")]
    fn fused_interior_node_panics_on_read() {
        let mut t = Tape::new();
        t.set_planning(true);
        let x = t.leaf(sample(3, 4, 80));
        let w = t.leaf(sample(4, 2, 81));
        let b = t.leaf(sample(1, 2, 82));
        let m = t.matmul(x, w);
        let a = t.add_row(m, b);
        let y = t.relu(a);
        let _loss = t.sum(y);
        let _ = t.value(m); // interior of the fused chain: never materialized
    }

    #[test]
    fn planner_keeps_shared_and_rooted_intermediates() {
        // An intermediate consumed twice must not be elided.
        let mut t = Tape::new();
        t.set_planning(true);
        let x = t.leaf(sample(3, 3, 83));
        let s = t.scale(x, 2.0);
        let y = t.add(s, s); // s has two consumers: no axpy fusion
        let loss = t.sum(y);
        assert!(t.nodes[s.0].value.is_some());
        let _ = t.backward(loss);

        // An intermediate a flush consumer is about to read (a root) must
        // not be elided either, even with a single recorded consumer.
        let mut t = Tape::new();
        t.set_planning(true);
        let x = t.leaf(sample(3, 3, 84));
        let o = t.leaf(sample(3, 3, 85));
        let s = t.scale(x, 0.5);
        let _y = t.add(s, o);
        let _probe = t.sum(s); // flushes with s as a root
        assert!(t.nodes[s.0].value.is_some());
    }

    #[test]
    fn disabling_planning_flushes_pending_ops() {
        let mut t = Tape::new();
        t.set_planning(true);
        let x = t.leaf(sample(2, 2, 86));
        let y = t.relu(x);
        assert!(t.nodes[y.0].value.is_none());
        t.set_planning(false);
        assert!(t.nodes[y.0].value.is_some());
        assert!(!t.planning());
    }

    #[test]
    fn pack_cache_packs_each_weight_once_per_step() {
        use mega_exec::{BlockedBackend, PackCache};
        let x = sample(9, 16, 90);
        let w = sample(16, 5, 91);
        let cache = Arc::new(PackCache::default());
        let pool = Arc::new(BufferPool::new());

        let step = |cache: &Arc<PackCache>, pool: &Arc<BufferPool>| {
            let mut t = Tape::with_exec(Arc::new(BlockedBackend), pool.clone());
            t.set_pack_cache(cache.clone());
            let vx = t.leaf(x.clone());
            let vw = t.leaf_param(w.clone(), 7);
            let y = t.matmul(vx, vw);
            let loss = t.sum(y);
            let _ = t.backward(loss);
        };

        // First step packs w exactly once per orientation (forward normal,
        // backward transposed): two misses, no hits.
        step(&cache, &pool);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        // Re-running without an optimizer update re-packs nothing.
        step(&cache, &pool);
        step(&cache, &pool);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 4);
        // An optimizer update invalidates; the next step packs once again.
        cache.invalidate();
        step(&cache, &pool);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.invalidations(), 1);
    }

    #[test]
    fn pack_cache_matches_uncached_bits() {
        use mega_exec::{BlockedBackend, PackCache};
        let x = sample(6, 8, 92);
        let w = sample(8, 4, 93);
        let b = sample(1, 4, 94);

        let run = |cached: bool| {
            let mut t = Tape::with_exec(Arc::new(BlockedBackend), Arc::new(BufferPool::new()));
            if cached {
                t.set_pack_cache(Arc::new(PackCache::default()));
            }
            let vx = t.leaf(x.clone());
            let vw = t.leaf_param(w.clone(), 1);
            let vb = t.leaf(b.clone());
            let y = t.linear_relu(vx, vw, vb);
            let loss = t.sum(y);
            let g = t.backward(loss);
            (
                t.value(y).clone(),
                g.wrt(vx).clone(),
                g.wrt(vw).clone(),
                g.wrt(vb).clone(),
            )
        };
        let (uy, ugx, ugw, ugb) = run(false);
        let (cy, cgx, cgw, cgb) = run(true);
        assert_bits(&cy, &uy);
        assert_bits(&cgx, &ugx);
        assert_bits(&cgw, &ugw);
        assert_bits(&cgb, &ugb);
    }

    #[test]
    fn segment_softmax_rows_sum_to_one_per_segment() {
        let mut tape = Tape::new();
        let x = tape.leaf(sample(6, 2, 30));
        let segs = Arc::new(vec![0usize, 1, 0, 1, 2, 2]);
        let p = tape.segment_softmax(x, segs.clone(), 3);
        let v = tape.value(p);
        for seg in 0..3 {
            for col in 0..2 {
                let s: f32 = (0..6)
                    .filter(|&i| segs[i] == seg)
                    .map(|i| v.at(i, col))
                    .sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }
}
