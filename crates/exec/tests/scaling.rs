//! Wall-clock equivalence-and-scaling gate for the intra-op threaded GEMM
//! and the band engine (CI job `thread-scaling`).
//!
//! Two halves, mirroring the two promises the threading work makes:
//!
//! 1. **Bit-identity** — threads = {1, 4} (pinned past the host-core clamp,
//!    so the fan-out really runs) produce bit-identical results to the
//!    serial kernel over a shapes × backends grid, for both the plain
//!    matmul and the fused `linear_relu` epilogue.
//! 2. **Scaling ratios** — wall-clock gates stated as *ratios between two
//!    runs on the same machine*, so they are machine-speed invariant:
//!    a slow box scales both numerator and denominator. On a multi-core
//!    host the threaded 512×512×512 GEMM must strictly beat serial and the
//!    band engine at `threads = 4` must not lose to `threads = 1`; on a
//!    single-core host (where `Parallelism` clamps the worker count and
//!    both configs run the same serial code) the gates degrade to
//!    "within noise tolerance" — which is itself the regression test for
//!    the clamp: before it, 4 requested threads on one core cost 1.7×.
//!
//! Timing uses the min over several repetitions: the minimum is the run
//! least disturbed by scheduler noise, and ratios of minima are the most
//! stable statistic a shared CI box offers. `Instant` is used directly —
//! integration tests are exempt from the `obs-routing` lint, and a timing
//! gate is exactly the case where the raw clock is the right tool.

use mega_core::band::BandMask;
use mega_core::config::{MegaConfig, WindowPolicy};
use mega_core::parallel::{host_threads, Parallelism};
use mega_core::traversal::traverse;
use mega_exec::kernels;
use mega_exec::{Backend, BlockedBackend, ReferenceBackend, SimdBackend};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Noise tolerance for "must not be slower" gates: two runs of the same
/// work on a quiet box agree within a few percent; 25% headroom keeps the
/// gate meaningful (the regression this guards against was 1.7×) without
/// flaking on a busy one.
const NOISE_TOLERANCE: f64 = 1.25;

fn sample(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.2) {
                0.0
            } else {
                rng.gen_range(-1.0f32..1.0)
            }
        })
        .collect()
}

/// Every backend under test, with a label for assert messages.
fn backends() -> Vec<(&'static str, Box<dyn Backend>)> {
    vec![
        ("reference", Box::new(ReferenceBackend)),
        ("blocked", Box::new(BlockedBackend)),
        ("simd-auto", Box::new(SimdBackend::new())),
        (
            "simd-portable-4",
            Box::new(SimdBackend::with_portable_lanes(4)),
        ),
    ]
}

/// Median-free min-of-`reps` wall-clock of `f` in seconds.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn threaded_gemm_bit_identical_to_serial_across_backends() {
    // Shapes straddling the tile sizes and the parallel flop cutoff
    // (1 << 17 multiply-adds): the first two stay serial, the rest fan out
    // when pinned past one worker.
    for &(n, k, m) in &[
        (3usize, 5usize, 4usize),
        (33, 17, 40),
        (64, 64, 64),
        (127, 33, 65),
        (200, 96, 50),
    ] {
        let a = sample(n * k, (n * 1000 + k) as u64);
        let b = sample(k * m, (k * 1000 + m) as u64);
        let mut serial = vec![0.0f32; n * m];
        kernels::matmul(&a, &b, n, k, m, &mut serial);
        for (name, backend) in backends() {
            for threads in [1usize, 4] {
                let par = Parallelism::pinned(threads);
                let mut got = vec![0.0f32; n * m];
                backend.matmul(&a, &b, n, k, m, &par, &mut got);
                for (i, (g, s)) in got.iter().zip(&serial).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        s.to_bits(),
                        "{name} {n}x{k}x{m} threads={threads} element {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn threaded_linear_relu_bit_identical_to_serial_epilogue() {
    let (n, k, m) = (120usize, 96usize, 70usize);
    let x = sample(n * k, 11);
    let w = sample(k * m, 12);
    let bias = sample(m, 13);
    let mut serial = vec![0.0f32; n * m];
    kernels::matmul(&x, &w, n, k, m, &mut serial);
    kernels::bias_relu_inplace(&mut serial, &bias, n, m);
    for (name, backend) in backends() {
        for threads in [1usize, 4] {
            let par = Parallelism::pinned(threads);
            let mut got = vec![0.0f32; n * m];
            backend.linear_relu(&x, &w, &bias, n, k, m, &par, &mut got);
            for (g, s) in got.iter().zip(&serial) {
                assert_eq!(g.to_bits(), s.to_bits(), "{name} threads={threads}");
            }
        }
    }
}

#[test]
fn threaded_gemm_beats_serial_at_512() {
    let (n, k, m) = (512usize, 512usize, 512usize);
    let a = sample(n * k, 21);
    let b = sample(k * m, 22);
    let serial = Parallelism::with_threads(1);
    let threaded = Parallelism::with_threads(4);
    for (name, backend) in [
        ("blocked", Box::new(BlockedBackend) as Box<dyn Backend>),
        ("simd", Box::new(SimdBackend::new())),
    ] {
        let mut out = vec![0.0f32; n * m];
        let t1 = time_min(3, || {
            out.iter_mut().for_each(|v| *v = 0.0);
            backend.matmul(&a, &b, n, k, m, &serial, &mut out);
        });
        let t4 = time_min(3, || {
            out.iter_mut().for_each(|v| *v = 0.0);
            backend.matmul(&a, &b, n, k, m, &threaded, &mut out);
        });
        let ratio = t4 / t1;
        if host_threads() >= 2 {
            assert!(
                ratio < 1.0,
                "{name}: threads=4 GEMM must strictly beat serial at \
                 512x512x512 on a {}-core host: serial {:.1} ms, threaded \
                 {:.1} ms (ratio {ratio:.2})",
                host_threads(),
                t1 * 1e3,
                t4 * 1e3,
            );
        } else {
            // Single core: the clamp routes both configs through the same
            // serial code, so the only thing to gate is that requesting
            // threads costs nothing.
            assert!(
                ratio <= NOISE_TOLERANCE,
                "{name}: threads=4 must not be slower than serial on a \
                 single-core host: serial {:.1} ms, threaded {:.1} ms \
                 (ratio {ratio:.2})",
                t1 * 1e3,
                t4 * 1e3,
            );
        }
    }
}

#[test]
fn band_engine_threads_4_not_slower_than_1() {
    // Large enough that per-call fixed costs (plan build, spawn) are small
    // against the kernel work — the regime the 1 → 4 thread regression
    // lived in.
    let g = generate::erdos_renyi(4000, 0.002, &mut StdRng::seed_from_u64(99)).unwrap();
    let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(8));
    let band = BandMask::from_traversal(&traverse(&g, &cfg).unwrap());
    let dim = 32;
    let x = sample(band.len() * dim, 31);
    let edges = band
        .active_slots()
        .iter()
        .map(|s| s.edge)
        .max()
        .map_or(0, |e| e + 1);
    let weights = sample(edges, 32);
    let d_out = sample(band.len() * dim, 33);

    let mut times = [0.0f64; 2];
    for (slot, threads) in [(0usize, 1usize), (1, 4)] {
        let par = Parallelism::with_threads(threads);
        times[slot] = time_min(3, || {
            let fwd = kernels::banded_aggregate(&band, &x, dim, &weights, &par);
            let dw = kernels::banded_weight_grad(&band, &x, &d_out, dim, edges, &par);
            std::hint::black_box((fwd, dw));
        });
    }
    let ratio = times[1] / times[0];
    assert!(
        ratio <= NOISE_TOLERANCE,
        "band engine: threads=4 must not be slower than threads=1 \
         (L={}, ω={}, dim={dim}, {}-core host): t1 {:.2} ms, t4 {:.2} ms \
         (ratio {ratio:.2})",
        band.len(),
        band.window(),
        host_threads(),
        times[0] * 1e3,
        times[1] * 1e3,
    );
}

#[test]
fn oversubscription_is_clamped_not_paid_for() {
    // Requesting absurd thread counts must cost the same as requesting the
    // host's own width — the clamp, measured. (Pre-clamp, 16 workers on a
    // small host slowed the band engine well past NOISE_TOLERANCE.)
    let g = generate::erdos_renyi(2000, 0.004, &mut StdRng::seed_from_u64(7)).unwrap();
    let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(6));
    let band = BandMask::from_traversal(&traverse(&g, &cfg).unwrap());
    let dim = 16;
    let x = sample(band.len() * dim, 41);
    let edges = band
        .active_slots()
        .iter()
        .map(|s| s.edge)
        .max()
        .map_or(0, |e| e + 1);
    let weights = sample(edges, 42);

    let sane = Parallelism::with_threads(host_threads());
    let absurd = Parallelism::with_threads(host_threads() * 16);
    assert_eq!(absurd.effective_threads(), host_threads());
    let t_sane = time_min(3, || {
        std::hint::black_box(kernels::banded_aggregate(&band, &x, dim, &weights, &sane));
    });
    let t_absurd = time_min(3, || {
        std::hint::black_box(kernels::banded_aggregate(&band, &x, dim, &weights, &absurd));
    });
    let ratio = t_absurd / t_sane;
    assert!(
        ratio <= NOISE_TOLERANCE,
        "requesting {}x the host's cores must be free after clamping: \
         sane {:.2} ms, oversubscribed {:.2} ms (ratio {ratio:.2})",
        16,
        t_sane * 1e3,
        t_absurd * 1e3,
    );
}
