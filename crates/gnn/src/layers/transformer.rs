//! Graph Transformer layer (Dwivedi & Bresson; the paper's "GT").
//!
//! Multi-head attention with edge features. Per head `k` and message
//! `(j → i)` with edge state `e_ji`:
//!
//! ```text
//! ŵ_ji = (Q_k·h_i) ⊙ (K_k·h_j) ⊙ (E_k·e_ji) / √d_h     (implicit attention)
//! α_ji = softmax_i( Σ_dims ŵ_ji )                       (per destination node)
//! agg_i = Σ_j α_ji · (V_k·h_j)
//! h' = LN(h + O_h(concat_k agg));   h'' = LN(h' + FFN_h(h'))
//! e' = LN(e + O_e(concat_k ŵ));     e'' = LN(e' + FFN_e(e'))
//! ```
//!
//! Parameter volume: W_Q, W_K, W_V, W_E (4·d²) + O_h, O_e (2·d²) + two-layer
//! FFNs on nodes and edges (4·d² each) = the paper's 14·d² (Table I).

use crate::batch::EngineIndices;
use crate::nn::{Binder, Linear, Mlp, NormParams};
use mega_tensor::{ParamStore, Tape, Tensor, Var};
use rand::Rng;

/// Parameters of one Graph Transformer layer.
#[derive(Debug, Clone)]
pub struct GraphTransformerLayer {
    heads: usize,
    head_dim: usize,
    q: Vec<Linear>,
    k: Vec<Linear>,
    v: Vec<Linear>,
    e: Vec<Linear>,
    o_h: Linear,
    o_e: Linear,
    ffn_h: Mlp,
    ffn_e: Mlp,
    ln_h1: NormParams,
    ln_h2: NormParams,
    ln_e1: NormParams,
    ln_e2: NormParams,
}

impl GraphTransformerLayer {
    /// Registers layer parameters of width `d` with `heads` attention heads.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            heads > 0 && d.is_multiple_of(heads),
            "heads {heads} must divide width {d}"
        );
        let hd = d / heads;
        let mut mk = |what: &str, rng: &mut R| -> Vec<Linear> {
            (0..heads)
                .map(|h| Linear::new(store, &format!("{name}.{what}{h}"), d, hd, rng))
                .collect()
        };
        let q = mk("Q", rng);
        let k = mk("K", rng);
        let v = mk("V", rng);
        let e = mk("E", rng);
        GraphTransformerLayer {
            heads,
            head_dim: hd,
            q,
            k,
            v,
            e,
            o_h: Linear::new(store, &format!("{name}.Oh"), d, d, rng),
            o_e: Linear::new(store, &format!("{name}.Oe"), d, d, rng),
            ffn_h: Mlp::new(store, &format!("{name}.ffn_h"), d, 2 * d, d, rng),
            ffn_e: Mlp::new(store, &format!("{name}.ffn_e"), d, 2 * d, d, rng),
            ln_h1: NormParams::new(store, &format!("{name}.ln_h1"), d),
            ln_h2: NormParams::new(store, &format!("{name}.ln_h2"), d),
            ln_e1: NormParams::new(store, &format!("{name}.ln_e1"), d),
            ln_e2: NormParams::new(store, &format!("{name}.ln_e2"), d),
        }
    }

    /// Applies the layer.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        idx: &EngineIndices,
        h: Var,
        e: Var,
    ) -> (Var, Var) {
        let n = idx.n_nodes;
        let m = idx.msg_count();
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let h_work = tape.gather_rows(h, idx.node_to_work.clone());
        let ones = tape.leaf(Tensor::full(m, self.head_dim, 1.0));

        let mut aggs = Vec::with_capacity(self.heads);
        let mut whats = Vec::with_capacity(self.heads);
        for hd in 0..self.heads {
            let qk = self.q[hd].forward(tape, binder, store, h_work);
            let kk = self.k[hd].forward(tape, binder, store, h_work);
            let vk = self.v[hd].forward(tape, binder, store, h_work);
            let ek = self.e[hd].forward(tape, binder, store, e);

            let q_dst = tape.gather_rows(qk, idx.msg_dst_work.clone());
            let k_src = tape.gather_rows(kk, idx.msg_src_work.clone());
            let v_src = tape.gather_rows(vk, idx.msg_src_work.clone());

            let qk_prod = tape.mul(q_dst, k_src);
            let qke = tape.mul(qk_prod, ek);
            let what = tape.scale(qke, scale);
            let score = tape.row_dot(what, ones);
            let attn = tape.segment_softmax(score, idx.msg_dst_node.clone(), n);
            let weighted = tape.mul_col_broadcast(v_src, attn);
            let agg = tape.scatter_add_rows(weighted, idx.msg_dst_node.clone(), n);
            aggs.push(agg);
            whats.push(what);
        }

        // Node stream: attention output, residual + LN, FFN, residual + LN.
        let h_agg = tape.concat_cols(&aggs);
        let h_attn = self.o_h.forward(tape, binder, store, h_agg);
        let h_res = tape.add(h, h_attn);
        let h1 = self.ln_h1.layer_norm(tape, binder, store, h_res);
        let h_ffn = self.ffn_h.forward(tape, binder, store, h1);
        let h_res2 = tape.add(h1, h_ffn);
        let h2 = self.ln_h2.layer_norm(tape, binder, store, h_res2);

        // Edge stream: implicit-attention features, residual + LN, FFN.
        let e_what = tape.concat_cols(&whats);
        let e_attn = self.o_e.forward(tape, binder, store, e_what);
        let e_res = tape.add(e, e_attn);
        let e1 = self.ln_e1.layer_norm(tape, binder, store, e_res);
        let e_ffn = self.ffn_e.forward(tape, binder, store, e1);
        let e_res2 = tape.add(e1, e_ffn);
        let e2 = self.ln_e2.layer_norm(tape, binder, store, e_res2);
        (h2, e2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use mega_datasets::{zinc, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_gradients() {
        let samples: Vec<_> = zinc(&DatasetSpec::tiny(3))
            .train
            .into_iter()
            .take(2)
            .collect();
        let batch = Batch::baseline(&samples);
        let d = 8;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GraphTransformerLayer::new(&mut store, "t0", d, 2, &mut rng);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        // Varied inputs: with constant rows the attention softmax gradient is
        // exactly zero by symmetry.
        let varied = |rows: usize, seed: u32| {
            let data: Vec<f32> = (0..rows * d)
                .map(|i| {
                    (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) % 1000) as f32
                        / 1000.0
                        - 0.5
                })
                .collect();
            Tensor::from_vec(rows, d, data)
        };
        let h = tape.leaf(varied(batch.indices.n_nodes, 1));
        let e = tape.leaf(varied(batch.indices.msg_count(), 2));
        let (h2, e2) = layer.forward(&mut tape, &mut binder, &store, &batch.indices, h, e);
        assert_eq!(tape.value(h2).shape(), (batch.indices.n_nodes, d));
        assert_eq!(tape.value(e2).shape(), (batch.indices.msg_count(), d));
        assert!(!tape.value(h2).has_non_finite());

        let loss = tape.mean(h2);
        let grads = tape.backward(loss);
        binder.apply(&mut store, &grads);
        let q0 = store.id_of("t0.Q0.w").unwrap();
        assert!(
            store.grad(q0).norm() > 0.0,
            "gradient must reach Q projection"
        );
    }

    #[test]
    fn parameter_volume_is_14_d_squared() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let d = 16;
        let _ = GraphTransformerLayer::new(&mut store, "t", d, 4, &mut rng);
        // Weight matrices: Q,K,V,E (4·d²) + Oh,Oe (2·d²) + FFNs (8·d²).
        let weights = 14 * d * d;
        let biases = 4 * d // per-head groups sum to d each for Q,K,V,E
            + 2 * d // Oh, Oe
            + 2 * (2 * d + d) // FFN hidden + out biases, ×2 streams
            + 8 * d; // four LayerNorm gamma/beta pairs
        assert_eq!(store.scalar_count(), weights + biases);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn heads_must_divide_width() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = GraphTransformerLayer::new(&mut store, "t", 10, 3, &mut rng);
    }
}
