//! Gated Graph ConvNet layer (Bresson & Laurent; the paper's "GCN").
//!
//! Per directed message `(j → i)` with edge state `e_ji`:
//!
//! ```text
//! ê_ji = A·h_j + B·h_i + C·e_ji                  (edge pre-activation)
//! e'_ji = e_ji + relu(BN(ê_ji))                  (edge residual update)
//! η_ji = σ(ê_ji)                                 (gate)
//! ĥ_i  = U·h_i + Σ_j η_ji ⊙ (V·h_j) / (Σ_j η_ji + ε)
//! h'_i = h_i + relu(BN(ĥ_i))                     (node residual update)
//! ```
//!
//! Five d×d projections (A, B, C, U, V): the paper's 5·d² parameter volume
//! (Table I).

use crate::batch::EngineIndices;
use crate::nn::{Binder, Linear, NormParams};
use mega_tensor::{ParamStore, Tape, Var};
use rand::Rng;

/// Parameters of one GatedGCN layer.
#[derive(Debug, Clone)]
pub struct GatedGcnLayer {
    a: Linear,
    b: Linear,
    c: Linear,
    u: Linear,
    v: Linear,
    bn_e: NormParams,
    bn_h: NormParams,
}

impl GatedGcnLayer {
    /// Registers layer parameters of width `d` under `name`.
    pub fn new<R: Rng>(store: &mut ParamStore, name: &str, d: usize, rng: &mut R) -> Self {
        GatedGcnLayer {
            a: Linear::new(store, &format!("{name}.A"), d, d, rng),
            b: Linear::new(store, &format!("{name}.B"), d, d, rng),
            c: Linear::new(store, &format!("{name}.C"), d, d, rng),
            u: Linear::new(store, &format!("{name}.U"), d, d, rng),
            v: Linear::new(store, &format!("{name}.V"), d, d, rng),
            bn_e: NormParams::new(store, &format!("{name}.bn_e"), d),
            bn_h: NormParams::new(store, &format!("{name}.bn_h"), d),
        }
    }

    /// Applies the layer.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        idx: &EngineIndices,
        h: Var,
        e: Var,
    ) -> (Var, Var) {
        let n = idx.n_nodes;
        // Work-row view of node states (path-ordered for MEGA).
        let h_work = tape.gather_rows(h, idx.node_to_work.clone());
        let h_src = tape.gather_rows(h_work, idx.msg_src_work.clone());
        let h_dst = tape.gather_rows(h_work, idx.msg_dst_work.clone());

        // Edge pre-activation and residual update.
        let ah = self.a.forward(tape, binder, store, h_src);
        let bh = self.b.forward(tape, binder, store, h_dst);
        let ce = self.c.forward(tape, binder, store, e);
        let sum = tape.add(ah, bh);
        let e_hat = tape.add(sum, ce);
        let e_norm = self.bn_e.batch_norm(tape, binder, store, e_hat);
        let e_act = tape.relu(e_norm);
        let e_out = tape.add(e, e_act);

        // Gated aggregation keyed by destination node.
        let sigma = tape.sigmoid(e_hat);
        let vh = self.v.forward(tape, binder, store, h_src);
        let gated = tape.mul(sigma, vh);
        let num = tape.scatter_add_rows(gated, idx.msg_dst_node.clone(), n);
        let den = tape.scatter_add_rows(sigma, idx.msg_dst_node.clone(), n);
        let agg = tape.div_eps(num, den, 1e-6);

        // Node update with residual.
        let uh = self.u.forward(tape, binder, store, h);
        let h_hat = tape.add(uh, agg);
        let h_norm = self.bn_h.batch_norm(tape, binder, store, h_hat);
        let h_act = tape.relu(h_norm);
        let h_out = tape.add(h, h_act);
        (h_out, e_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use mega_datasets::{zinc, DatasetSpec};
    use mega_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_gradients() {
        let samples: Vec<_> = zinc(&DatasetSpec::tiny(1))
            .train
            .into_iter()
            .take(2)
            .collect();
        let batch = Batch::baseline(&samples);
        let d = 8;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GatedGcnLayer::new(&mut store, "l0", d, &mut rng);
        // 5 projections (w+b) + 2 norms (gamma+beta) = 14 tensors.
        assert_eq!(store.len(), 14);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let h = tape.leaf(Tensor::full(batch.indices.n_nodes, d, 0.1));
        let e = tape.leaf(Tensor::full(batch.indices.msg_count(), d, 0.1));
        let (h2, e2) = layer.forward(&mut tape, &mut binder, &store, &batch.indices, h, e);
        assert_eq!(tape.value(h2).shape(), (batch.indices.n_nodes, d));
        assert_eq!(tape.value(e2).shape(), (batch.indices.msg_count(), d));
        assert!(!tape.value(h2).has_non_finite());

        let loss = tape.mean(h2);
        let grads = tape.backward(loss);
        binder.apply(&mut store, &grads);
        let a_w = store.id_of("l0.A.w").unwrap();
        assert!(
            store.grad(a_w).norm() > 0.0,
            "gradient must reach projection A"
        );
    }

    #[test]
    fn parameter_volume_is_5_d_squared() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let d = 16;
        let _ = GatedGcnLayer::new(&mut store, "l", d, &mut rng);
        // Weights dominate: 5·d² plus bias/norm vectors.
        let weights = 5 * d * d;
        let extras = 5 * d + 4 * d; // biases + gammas/betas
        assert_eq!(store.scalar_count(), weights + extras);
    }
}
