//! Kernel taxonomy and per-kernel counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The GPU kernels appearing in the paper's profiles (Figs. 4–6, 9, 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KernelKind {
    /// Dense matrix multiply (cuBLAS `sgemm`) — neural ops.
    Sgemm,
    /// DGL-style index-driven gather (edge/vertex aggregation reads).
    DglGather,
    /// DGL-style index-driven scatter (message writes with atomics).
    DglScatter,
    /// `cub` radix sort used to order embeddings by index.
    CubSort,
    /// Host↔device or device↔device copies.
    Memcpy,
    /// MEGA banded gather along the path (sequential reads).
    MegaBandGather,
    /// MEGA scatter of path positions back to nodes (near-sequential writes).
    MegaBandScatter,
    /// MEGA banded weight gradient: the backward-pass twin of the band
    /// gather, reading both the activations and the upstream gradient along
    /// the band and writing one scalar per edge.
    MegaBandWgrad,
    /// Elementwise neural ops (activations, norms) — minor, included for
    /// completeness of time shares.
    Elementwise,
}

impl KernelKind {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Sgemm => "sgemm",
            KernelKind::DglGather => "dgl-gather",
            KernelKind::DglScatter => "dgl-scatter",
            KernelKind::CubSort => "cub",
            KernelKind::Memcpy => "memcpy",
            KernelKind::MegaBandGather => "mega-band",
            KernelKind::MegaBandScatter => "mega-scatter",
            KernelKind::MegaBandWgrad => "mega-wgrad",
            KernelKind::Elementwise => "eltwise",
        }
    }

    /// Whether this kernel belongs to graph operations (vs neural ops).
    pub fn is_graph_op(&self) -> bool {
        matches!(
            self,
            KernelKind::DglGather
                | KernelKind::DglScatter
                | KernelKind::CubSort
                | KernelKind::MegaBandGather
                | KernelKind::MegaBandScatter
                | KernelKind::MegaBandWgrad
        )
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters accumulated for one kernel kind across launches.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of launches.
    pub invocations: u64,
    /// Global-memory transactions issued (32-byte sectors).
    pub load_transactions: u64,
    /// Transactions served by L2.
    pub l2_hits: u64,
    /// Transactions served by DRAM.
    pub l2_misses: u64,
    /// FP32 operations retired.
    pub flops: u64,
    /// Non-flop instructions retired (copies, address math).
    pub instructions: u64,
    /// Total cycles charged.
    pub cycles: u64,
    /// Cycles the SMs sat exposed to memory latency/bandwidth.
    pub stall_cycles: u64,
    /// Sum over launches of the per-launch workload-balance factor in
    /// `(0, 1]` (1 = perfectly balanced); divide by `invocations` for the
    /// mean.
    pub balance_sum: f64,
}

impl KernelStats {
    /// SM efficiency in `[0, 1]`: issue-slot utilization — the fraction of
    /// cycles spent retiring instructions rather than stalled, derated by the
    /// mean workload-balance factor.
    pub fn sm_efficiency(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let busy = (self.cycles - self.stall_cycles) as f64 / self.cycles as f64;
        busy * self.mean_balance()
    }

    /// Fraction of cycles stalled on memory.
    pub fn stall_pct(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stall_cycles as f64 / self.cycles as f64
    }

    /// Mean workload-balance factor across launches.
    pub fn mean_balance(&self) -> f64 {
        if self.invocations == 0 {
            1.0
        } else {
            self.balance_sum / self.invocations as f64
        }
    }

    /// L2 hit rate over this kernel's transactions.
    pub fn l2_hit_rate(&self) -> f64 {
        let t = self.l2_hits + self.l2_misses;
        if t == 0 {
            1.0
        } else {
            self.l2_hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_classes() {
        assert_eq!(KernelKind::Sgemm.label(), "sgemm");
        assert!(!KernelKind::Sgemm.is_graph_op());
        assert!(KernelKind::DglGather.is_graph_op());
        assert!(KernelKind::MegaBandGather.is_graph_op());
        assert!(KernelKind::MegaBandWgrad.is_graph_op());
        assert_eq!(KernelKind::MegaBandWgrad.label(), "mega-wgrad");
        assert!(!KernelKind::Memcpy.is_graph_op());
        assert_eq!(format!("{}", KernelKind::CubSort), "cub");
    }

    #[test]
    fn derived_metrics() {
        let s = KernelStats {
            invocations: 2,
            load_transactions: 100,
            l2_hits: 80,
            l2_misses: 20,
            flops: 0,
            instructions: 100,
            cycles: 1000,
            stall_cycles: 400,
            balance_sum: 1.6,
        };
        assert!((s.sm_efficiency() - 0.6 * 0.8).abs() < 1e-12);
        assert!((s.stall_pct() - 0.4).abs() < 1e-12);
        assert!((s.l2_hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let s = KernelStats::default();
        assert_eq!(s.sm_efficiency(), 0.0);
        assert_eq!(s.stall_pct(), 0.0);
        assert_eq!(s.l2_hit_rate(), 1.0);
        assert_eq!(s.mean_balance(), 1.0);
    }
}
