//! Distributed communication: path-segment partitioning vs edge-cut.
//!
//! Run with: `cargo run --release --example distributed_partition`
//!
//! The paper's §IV-B6 analysis: partitioning MEGA's path into contiguous
//! segments turns distributed aggregation into a chain of `k - 1` halo
//! exchanges (O(k)), while edge-cut partitions of the same graph approach
//! all-to-all communication.

use mega::core::{preprocess, MegaConfig};
use mega::dist::{bfs_partition, edge_cut_volume, hash_partition, path_partition_volume};
use mega::graph::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let g = generate::barabasi_albert(1000, 3, &mut rng)?;
    let schedule = preprocess(&g, &MegaConfig::default())?;
    println!(
        "graph: n={} m={} | path length {} (expansion {:.2}x, window {})",
        g.node_count(),
        g.edge_count(),
        schedule.path().len(),
        schedule.path().expansion_factor(),
        schedule.path().window(),
    );

    println!(
        "\n{:>4}  {:>18}  {:>18}  {:>22}",
        "k", "hash cut (pairs/vol)", "bfs cut (pairs/vol)", "path segs (pairs/vol/rep)"
    );
    for k in [2usize, 4, 8, 16, 32] {
        let hash = edge_cut_volume(&g, &hash_partition(&g, k), k);
        let bfs = edge_cut_volume(&g, &bfs_partition(&g, k), k);
        let path = path_partition_volume(&schedule, k);
        println!(
            "{k:>4}  {:>10}/{:<8}  {:>10}/{:<8}  {:>8}/{:<6}/{:<6}",
            hash.comm_pairs,
            hash.volume_rows,
            bfs.comm_pairs,
            bfs.volume_rows,
            path.comm_pairs,
            path.volume_rows,
            path.replica_rows,
        );
    }
    println!("\npath pairs are always k-1 (a chain); edge-cut pairs grow toward k(k-1)/2.");
    Ok(())
}
