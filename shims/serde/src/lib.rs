//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal reflection-style serialization layer: [`Serialize`] lowers a value
//! to a JSON-shaped [`Value`] tree, [`Deserialize`] rebuilds it. The derive
//! macros (re-exported from the sibling `serde_derive` shim) generate
//! field-by-field impls for plain structs and enums — the only shapes this
//! workspace uses. Enum encoding mirrors serde's external tagging: unit
//! variants as strings, data variants as single-key objects.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (covers `usize` exactly, including `usize::MAX`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered key/value list (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric view (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

/// Deserialization/serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in an object, with a type name for diagnostics.
///
/// # Errors
///
/// Returns [`Error`] naming the missing field.
pub fn field<'v>(obj: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field `{name}` for {ty}")))
}

/// Lowers a value to a [`Value`] tree.
pub trait Serialize {
    /// Produces the document tree for `self`.
    fn serialize(&self) -> Value;
}

/// Rebuilds a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match the expected shape.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN), // serde_json writes non-finite floats as null
            _ => v.as_f64().ok_or_else(|| Error::new("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                Ok(($($t::deserialize(
                    a.get($n).ok_or_else(|| Error::new("tuple too short"))?
                )?,)+))
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            usize::deserialize(&usize::MAX.serialize()).unwrap(),
            usize::MAX
        );
        assert_eq!(i64::deserialize(&(-42i64).serialize()).unwrap(), -42);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(String::deserialize(&"hi".serialize()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        let t = (1usize, "x".to_string());
        assert_eq!(<(usize, String)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert!(field(&obj, "a", "T").is_ok());
        let err = field(&obj, "b", "T").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
