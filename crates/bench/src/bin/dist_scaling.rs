//! §IV-B6 extension: distributed-training scaling, modeled AND measured.
//!
//! Two strictly separated sections:
//!
//! - **Modeled** — the analytic 10 GbE cluster projection, as before:
//!   simulated single-device epoch cost combined with the
//!   communication-volume model. Edge-cut partitioning saturates as its
//!   near-all-to-all message count grows, while MEGA's path partition
//!   (k − 1 chain exchanges) keeps scaling. These numbers are predictions
//!   of a hypothetical cluster, not measurements.
//! - **Measured** — actual wall clock of the in-process halo-exchange
//!   executor (`ThreadExecutor`) running the band engine over path
//!   segments, per worker count, median of several repetitions. Every
//!   timed run is first asserted bit-identical to the serial oracle, so
//!   the timings cover exactly the execution the equivalence gate proves
//!   correct. Thread workers share one memory bus, so measured speedups
//!   are NOT comparable to the modeled network curves — that is the point
//!   of the split.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::{preprocess, MegaConfig};
use mega_dist::{
    bfs_partition, edge_cut_volume, epoch_scaling, path_partition_volume, run_serial, BandJob,
    ClusterConfig, DistExecutor, ThreadExecutor,
};
use mega_gpu_sim::{BatchTopology, DeviceConfig, EngineKind, GnnCostModel, ModelSpec};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ModeledRow {
    partitions: usize,
    cut_speedup: f64,
    path_speedup: f64,
    cut_comm_seconds: f64,
    path_comm_seconds: f64,
}

#[derive(Serialize)]
struct MeasuredRow {
    workers: usize,
    median_ms: f64,
    measured_speedup: f64,
    bit_identical: bool,
}

#[derive(Serialize)]
struct Output {
    /// Analytic 10 GbE projection — predictions, never wall clock.
    modeled: Vec<ModeledRow>,
    /// In-process thread-executor wall clock — measurements, never model.
    measured: Vec<MeasuredRow>,
}

/// Deterministic pseudo-input bits for the measured leg.
fn mix(i: usize) -> f32 {
    let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(17);
    ((h >> 32) as f32 / u32::MAX as f32) - 0.5
}

/// Median wall clock of `reps` executor runs, plus the bit-identity verdict
/// against the serial oracle.
fn measure(job: &BandJob<'_>, workers: usize, reps: usize) -> MeasuredRow {
    let exec = ThreadExecutor::new(workers);
    let oracle = run_serial(job);
    let run = exec.run(job);
    let bit_identical = oracle
        .x
        .iter()
        .zip(&run.x)
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && oracle
            .dw
            .iter()
            .zip(&run.dw)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        bit_identical,
        "workers={workers} diverged from the serial oracle; refusing to time a wrong run"
    );
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(exec.run(job));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    MeasuredRow {
        workers,
        median_ms: samples[samples.len() / 2],
        measured_speedup: f64::NAN, // filled in against workers=1
        bit_identical,
    }
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(21);
    let g = generate::barabasi_albert(4000, 3, &mut rng).unwrap();
    let schedule = preprocess(&g, &MegaConfig::default()).unwrap();

    // ------------------------------------------------------------ modeled
    // Single-device epoch cost of a GT over this graph (one big batch,
    // 20 steps per epoch).
    let spec = ModelSpec::graph_transformer(64, 2);
    let topo = BatchTopology::from_graphs_with_schedules(
        std::slice::from_ref(&g),
        std::slice::from_ref(&schedule),
    );
    let single = GnnCostModel::new(DeviceConfig::gtx_1080(), spec.clone(), EngineKind::Mega)
        .epoch_cost(&topo, 20);
    let rounds = spec.layers * 2 * 20; // layers × fwd/bwd × steps
    let cluster = ClusterConfig::ten_gbe();
    mega_obs::data!(
        "graph: n={} m={} | single-device epoch {:.2} ms | 10GbE cluster\n",
        g.node_count(),
        g.edge_count(),
        single.epoch_seconds * 1e3
    );

    let mut table = TableWriter::new(&[
        "k",
        "cut speedup",
        "path speedup",
        "cut comm(ms)",
        "path comm(ms)",
    ]);
    let mut modeled = Vec::new();
    for &k in &[2usize, 4, 8, 16, 32, 64] {
        let cut = edge_cut_volume(&g, &bfs_partition(&g, k), k);
        let path = path_partition_volume(&schedule, k);
        let cut_point = epoch_scaling(single.epoch_seconds, &cut, rounds, 64, &cluster);
        let path_point = epoch_scaling(single.epoch_seconds, &path, rounds, 64, &cluster);
        table.row(&[
            k.to_string(),
            format!("{:.2}x", cut_point.speedup),
            format!("{:.2}x", path_point.speedup),
            fmt(cut_point.comm_seconds * 1e3, 2),
            fmt(path_point.comm_seconds * 1e3, 2),
        ]);
        modeled.push(ModeledRow {
            partitions: k,
            cut_speedup: cut_point.speedup,
            path_speedup: path_point.speedup,
            cut_comm_seconds: cut_point.comm_seconds,
            path_comm_seconds: path_point.comm_seconds,
        });
    }
    mega_obs::data!("MODELED (10GbE projection) — BFS edge-cut vs MEGA path partition\n");
    table.print();
    mega_obs::data!(
        "\nExpected: path-partition speedup keeps rising with k (O(k) chain exchanges);\n\
         the edge-cut curve flattens as its communicating-pair count explodes.\n"
    );

    // ----------------------------------------------------------- measured
    // Wall clock of the real halo-exchange executor on this machine.
    let band = schedule.band();
    let edges = schedule.working_graph().edge_count();
    let dim = 32usize;
    let x0: Vec<f32> = (0..band.len() * dim).map(mix).collect();
    let weights: Vec<f32> = (0..edges).map(|e| mix(e + band.len() * dim)).collect();
    let job = BandJob {
        band,
        x0: &x0,
        dim,
        weights: &weights,
        edge_count: edges,
        steps: 8,
        damping: 0.8,
    };
    let mut measured: Vec<MeasuredRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&k| measure(&job, k, 7))
        .collect();
    let base_ms = measured[0].median_ms;
    for row in &mut measured {
        row.measured_speedup = base_ms / row.median_ms;
    }
    let mut table = TableWriter::new(&["workers", "median(ms)", "speedup", "bit-identical"]);
    for row in &measured {
        table.row(&[
            row.workers.to_string(),
            fmt(row.median_ms, 3),
            format!("{:.2}x", row.measured_speedup),
            row.bit_identical.to_string(),
        ]);
    }
    mega_obs::data!(
        "MEASURED (thread executor wall clock, {} band rows x dim {}, {} steps, median of 7)\n",
        band.len(),
        dim,
        job.steps
    );
    table.print();
    mega_obs::data!(
        "\nMeasured rows time the in-process halo executor on one shared memory bus;\n\
         they validate the execution path, not the 10GbE projection above."
    );

    save_json("dist_scaling", &Output { modeled, measured });
}
