//! The diagonal band mask (paper §III-C, Fig. 7).
//!
//! After reordering, attention runs along a width-ω band around the diagonal
//! of the `L × L` path adjacency matrix. The [`BandMask`] records, for every
//! in-band position pair `(i, i+k)` with `1 ≤ k ≤ ω`, whether that pair
//! carries a *real original edge* — and if so which one. Each original edge
//! claims exactly one slot (its first in-band occurrence), so masked banded
//! aggregation reproduces exact 1-hop neighbor sums while touching only
//! sequential memory. Virtual edges and repeated occurrences are masked out,
//! and, mirroring the paper's symmetry argument, the slot at `(i, j)` serves
//! both directions of the edge.

use crate::traversal::Traversal;
use mega_graph::{DenseAdjacency, Graph};
use serde::{Deserialize, Serialize};

/// One active band slot: positions `(lo, hi)` carry original edge `edge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandSlot {
    /// Lower path position.
    pub lo: usize,
    /// Higher path position (`lo < hi ≤ lo + ω`).
    pub hi: usize,
    /// Edge id in the working graph's edge list.
    pub edge: usize,
}

/// The width-ω diagonal mask over a path of length `L`.
///
/// # Example
///
/// ```
/// use mega_core::{traverse, BandMask, MegaConfig};
/// use mega_graph::generate;
///
/// # fn main() -> Result<(), mega_core::MegaError> {
/// let g = generate::cycle(8).unwrap();
/// let t = traverse(&g, &MegaConfig::default())?;
/// let band = BandMask::from_traversal(&t);
/// assert_eq!(band.covered_edge_count(), 8); // full coverage by default
/// assert!((band.coverage() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandMask {
    len: usize,
    window: usize,
    working_edges: usize,
    /// `slot[i * window + (k - 1)]` = edge id carried by pair `(i, i + k)`,
    /// or `usize::MAX` when inactive.
    slots: Vec<usize>,
    active: Vec<BandSlot>,
}

const INACTIVE: usize = usize::MAX;

impl BandMask {
    /// Builds the mask by greedily claiming, for each original edge, its
    /// first in-band occurrence along the path (scanning positions in
    /// ascending order, offsets 1..=ω).
    pub fn from_traversal(t: &Traversal) -> Self {
        Self::build(&t.working_graph, &t.path, t.window)
    }

    /// Builds a mask for an arbitrary `(graph, path, window)` triple. The
    /// path entries must be valid node ids of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or a path entry is out of range.
    pub fn build(g: &Graph, path: &[usize], window: usize) -> Self {
        assert!(window >= 1, "window must be >= 1");
        let len = path.len();
        // mega-lint: allow(unordered-collection, reason = "(src,dst)->eid lookup only; slot order follows the path")
        let mut edge_of = std::collections::HashMap::with_capacity(g.edge_count());
        for (eid, (s, d)) in g.edges().enumerate() {
            edge_of.insert((s.min(d), s.max(d)), eid);
        }
        let mut claimed = vec![false; g.edge_count()];
        let mut slots = vec![INACTIVE; len * window];
        let mut active = Vec::new();
        for i in 0..len {
            let u = path[i];
            assert!(u < g.node_count(), "path node {u} out of range");
            for k in 1..=window {
                let j = i + k;
                if j >= len {
                    break;
                }
                let v = path[j];
                if u == v {
                    continue;
                }
                if let Some(&eid) = edge_of.get(&(u.min(v), u.max(v))) {
                    if !claimed[eid] {
                        claimed[eid] = true;
                        slots[i * window + (k - 1)] = eid;
                        active.push(BandSlot {
                            lo: i,
                            hi: j,
                            edge: eid,
                        });
                    }
                }
            }
        }
        BandMask {
            len,
            window,
            working_edges: g.edge_count(),
            slots,
            active,
        }
    }

    /// Path length `L`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Band half-width ω.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The edge id carried by pair `(i, i + k)`, if that slot is active.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than the window.
    pub fn slot(&self, i: usize, k: usize) -> Option<usize> {
        assert!(
            k >= 1 && k <= self.window,
            "offset {k} outside 1..={}",
            self.window
        );
        if i + k >= self.len {
            return None;
        }
        match self.slots[i * self.window + (k - 1)] {
            INACTIVE => None,
            e => Some(e),
        }
    }

    /// All active slots in claim order (ascending `lo`, then offset).
    pub fn active_slots(&self) -> &[BandSlot] {
        &self.active
    }

    /// Number of original edges owning a band slot.
    pub fn covered_edge_count(&self) -> usize {
        self.active.len()
    }

    /// Fraction of working-graph edges covered.
    pub fn coverage(&self) -> f64 {
        if self.working_edges == 0 {
            1.0
        } else {
            self.active.len() as f64 / self.working_edges as f64
        }
    }

    /// Density of the band: active slots over total in-band slots. High
    /// density means little wasted compute in the dense banded kernel.
    pub fn density(&self) -> f64 {
        let total: usize = (0..self.len)
            .map(|i| self.window.min(self.len - 1 - i))
            .sum();
        if total == 0 {
            return 0.0;
        }
        self.active.len() as f64 / total as f64
    }

    /// Materializes the `L × L` path adjacency matrix restricted to active
    /// band slots (symmetric). Bandwidth is ≤ ω by construction — this is the
    /// diagonal picture of Fig. 7.
    pub fn to_dense(&self) -> DenseAdjacency {
        let mut adj = DenseAdjacency::zeros(self.len);
        for s in &self.active {
            adj.set(s.lo, s.hi, true);
            adj.set(s.hi, s.lo, true);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MegaConfig, WindowPolicy};
    use crate::traversal::traverse;
    use mega_graph::generate;

    fn band_for(g: &Graph, w: usize) -> (Traversal, BandMask) {
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(w));
        let t = traverse(g, &cfg).unwrap();
        let b = BandMask::from_traversal(&t);
        (t, b)
    }

    #[test]
    fn each_edge_claims_exactly_one_slot() {
        let g = generate::complete(7).unwrap();
        let (_, b) = band_for(&g, 3);
        // mega-lint: allow(unordered-collection, reason = "test-only duplicate detector; never iterated")
        let mut seen = std::collections::HashSet::new();
        for s in b.active_slots() {
            assert!(seen.insert(s.edge), "edge {} claimed twice", s.edge);
        }
        assert_eq!(seen.len(), g.edge_count());
    }

    #[test]
    fn band_count_matches_traversal_count() {
        for n in [6usize, 10, 15] {
            let g = generate::erdos_renyi(
                n,
                0.3,
                &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(n as u64),
            )
            .unwrap();
            for w in [1usize, 2, 4] {
                let (t, b) = band_for(&g, w);
                assert_eq!(t.covered_edges, b.covered_edge_count());
            }
        }
    }

    #[test]
    fn slots_stay_inside_band() {
        let g = generate::complete(8).unwrap();
        let (_, b) = band_for(&g, 2);
        for s in b.active_slots() {
            assert!(s.hi > s.lo && s.hi - s.lo <= 2);
        }
        assert!(b.to_dense().bandwidth() <= 2);
    }

    #[test]
    fn slot_lookup_agrees_with_active_list() {
        let g = generate::cycle(9).unwrap();
        let (_, b) = band_for(&g, 2);
        for s in b.active_slots() {
            assert_eq!(b.slot(s.lo, s.hi - s.lo), Some(s.edge));
        }
        // Out-of-path slot is None.
        assert_eq!(b.slot(b.len() - 1, 1), None);
    }

    #[test]
    fn dense_band_is_symmetric() {
        let g = generate::complete(6).unwrap();
        let (_, b) = band_for(&g, 2);
        assert!(b.to_dense().is_symmetric());
    }

    #[test]
    fn density_in_unit_interval() {
        let g = generate::complete(10).unwrap();
        let (_, b) = band_for(&g, 3);
        let d = b.density();
        assert!(d > 0.0 && d <= 1.0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn slot_offset_zero_panics() {
        let g = generate::cycle(5).unwrap();
        let (_, b) = band_for(&g, 1);
        let _ = b.slot(0, 0);
    }
}
