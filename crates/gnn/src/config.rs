//! Model and engine configuration.

use serde::{Deserialize, Serialize};

/// Which GNN architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Gated Graph ConvNet (paper "GCN").
    GatedGcn,
    /// Graph Transformer (paper "GT").
    GraphTransformer,
    /// Graph Attention Network (Veličković et al.) — an extension beyond the
    /// paper's evaluated pair.
    Gat,
}

impl ModelKind {
    /// The label the paper uses.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::GatedGcn => "GCN",
            ModelKind::GraphTransformer => "GT",
            ModelKind::Gat => "GAT",
        }
    }
}

/// Which execution engine routes graph attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineChoice {
    /// Conventional scatter/gather over adjacency slots (the DGL baseline).
    Baseline,
    /// Banded attention over the MEGA path representation.
    Mega,
}

impl EngineChoice {
    /// The label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            EngineChoice::Baseline => "DGL",
            EngineChoice::Mega => "Mega",
        }
    }
}

/// Hyperparameters of a model instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnConfig {
    /// Architecture.
    pub kind: ModelKind,
    /// Hidden width `d`.
    pub hidden_dim: usize,
    /// Stacked attention layers.
    pub layers: usize,
    /// Attention heads (Graph Transformer only; must divide `hidden_dim`).
    pub heads: usize,
    /// Node-feature vocabulary size.
    pub node_vocab: usize,
    /// Edge-feature vocabulary size.
    pub edge_vocab: usize,
    /// Output dimension (1 for regression, class count for classification).
    pub out_dim: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl GnnConfig {
    /// A reasonable default configuration for an architecture and dataset
    /// vocabularies.
    pub fn new(kind: ModelKind, node_vocab: usize, edge_vocab: usize, out_dim: usize) -> Self {
        GnnConfig {
            kind,
            hidden_dim: 32,
            layers: 3,
            heads: 4,
            node_vocab,
            edge_vocab,
            out_dim,
            seed: 1,
        }
    }

    /// Sets the hidden width.
    pub fn with_hidden(mut self, d: usize) -> Self {
        self.hidden_dim = d;
        self
    }

    /// Sets the layer count.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Sets the head count.
    pub fn with_heads(mut self, heads: usize) -> Self {
        self.heads = heads;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates divisibility and non-zero dimensions.
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations — configuration errors are programmer
    /// errors in this workspace.
    pub fn assert_valid(&self) {
        assert!(self.hidden_dim > 0 && self.layers > 0 && self.out_dim > 0);
        assert!(self.node_vocab > 0 && self.edge_vocab > 0);
        if matches!(self.kind, ModelKind::GraphTransformer | ModelKind::Gat) {
            assert!(
                self.heads > 0 && self.hidden_dim.is_multiple_of(self.heads),
                "heads {} must divide hidden_dim {}",
                self.heads,
                self.hidden_dim
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ModelKind::GatedGcn.label(), "GCN");
        assert_eq!(ModelKind::GraphTransformer.label(), "GT");
        assert_eq!(EngineChoice::Baseline.label(), "DGL");
        assert_eq!(EngineChoice::Mega.label(), "Mega");
    }

    #[test]
    fn builder_chain_and_validation() {
        let cfg = GnnConfig::new(ModelKind::GraphTransformer, 8, 4, 1)
            .with_hidden(64)
            .with_layers(2)
            .with_heads(8)
            .with_seed(9);
        cfg.assert_valid();
        assert_eq!(cfg.hidden_dim, 64);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_heads_panics() {
        GnnConfig::new(ModelKind::GraphTransformer, 8, 4, 1)
            .with_hidden(30)
            .with_heads(4)
            .assert_valid();
    }
}
