//! Distributed execution and communication analysis over path segments
//! (§IV-B6).
//!
//! The paper argues that conventional distributed GNN training partitions the
//! *graph*, paying edge-cut communication that requires expensive all-to-all
//! exchanges, while partitioning MEGA's *path* into contiguous segments needs
//! only a halo exchange between adjacent segments — `O(k)` communications for
//! `k` partitions, at the cost of replicating revisited nodes.
//!
//! * [`partition`] — node partitioners (hash and BFS-locality) and the path
//!   segment partitioner.
//! * [`comm`] — communication accounting: cut edges, communicating partition
//!   pairs, replica synchronization volume.
//! * [`exec`] — the claim, *executed*: a thread-per-segment band engine with
//!   double-buffered ±ω halo exchange, bit-identical to the serial oracle
//!   for every worker count.
//! * [`train`] — a distributed trainer: per-sample gradient shards fanned
//!   out over workers, all-reduced in a fixed ascending-shard order so the
//!   loss trajectory is bit-identical for any worker count.
//! * [`scaling`] — the modeled cluster scaling curves (see
//!   `bench/dist_scaling` for the modeled/measured split).
//!
//! # Example
//!
//! ```
//! use mega_core::{preprocess, MegaConfig};
//! use mega_dist::{comm, partition};
//! use mega_graph::generate;
//!
//! # fn main() -> Result<(), mega_core::MegaError> {
//! let g = generate::complete(24).unwrap();
//! let s = preprocess(&g, &MegaConfig::default())?;
//! let k = 4;
//! let node_parts = partition::hash_partition(&g, k);
//! let cut = comm::edge_cut_volume(&g, &node_parts, k);
//! let path = comm::path_partition_volume(&s, k);
//! // MEGA's communicating pairs form a chain: k - 1.
//! assert_eq!(path.comm_pairs, k - 1);
//! assert!(path.comm_pairs <= cut.comm_pairs);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod exec;
pub mod partition;
pub mod scaling;
pub mod train;

pub use comm::{edge_cut_volume, path_partition_volume, CommStats};
pub use exec::{
    run_serial, run_with_plan, BandJob, BandRun, DistExecutor, SegmentPlan, ThreadExecutor,
};
pub use partition::{bfs_partition, hash_partition, path_segments};
pub use scaling::{epoch_scaling, ClusterConfig, ScalingPoint};
pub use train::DistTrainer;
