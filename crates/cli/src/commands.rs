//! CLI command implementations.

use crate::args::Args;
use mega_core::{preprocess as mega_preprocess, MegaConfig, WindowPolicy};
use mega_datasets::{aqsol, csl, cycles, zinc, Dataset, DatasetSpec, Task};
use mega_gnn::{EngineChoice, GnnConfig, ModelKind, Trainer};
use mega_graph::{io, Direction};
use mega_obs::{data, info};
use mega_wl::{global_similarity, path_similarity};
use std::fs::File;
use std::io::BufReader;

/// Whether `--trace-out` / `--metrics-out` ask for instrumented output.
fn wants_obs(args: &Args) -> bool {
    args.get("trace-out").is_some() || args.get("metrics-out").is_some()
}

/// Writes the Chrome-trace and/or deterministic metrics files requested by
/// `--trace-out` / `--metrics-out` from the current observability registry.
fn write_obs_outputs(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, mega_obs::trace_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        info!("[trace written to {path}]");
    }
    if let Some(path) = args.get("metrics-out") {
        let snap = mega_obs::snapshot();
        std::fs::write(path, snap.to_json(true))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        info!("[metrics written to {path}]");
    }
    Ok(())
}

fn dataset_by_name(name: &str, spec: &DatasetSpec) -> Result<Dataset, String> {
    match name {
        "zinc" => Ok(zinc(spec)),
        "aqsol" => Ok(aqsol(spec)),
        "csl" => Ok(csl(spec)),
        "cycles" => Ok(cycles(spec)),
        other => Err(format!("unknown dataset `{other}` (zinc|aqsol|csl|cycles)")),
    }
}

fn model_by_name(name: &str) -> Result<ModelKind, String> {
    match name {
        "gcn" => Ok(ModelKind::GatedGcn),
        "gt" => Ok(ModelKind::GraphTransformer),
        "gat" => Ok(ModelKind::Gat),
        other => Err(format!("unknown model `{other}` (gcn|gt|gat)")),
    }
}

fn engine_by_name(name: &str) -> Result<EngineChoice, String> {
    match name {
        "dgl" | "baseline" => Ok(EngineChoice::Baseline),
        "mega" => Ok(EngineChoice::Mega),
        other => Err(format!("unknown engine `{other}` (dgl|mega)")),
    }
}

/// `mega demo` — preprocess the paper's Fig. 3a graph and print the path.
pub fn demo() -> Result<(), String> {
    let g = mega_graph::GraphBuilder::undirected(7)
        .edges([
            (0, 1),
            (0, 5),
            (1, 2),
            (1, 5),
            (2, 3),
            (2, 6),
            (3, 6),
            (3, 4),
            (4, 6),
            (5, 6),
        ])
        .map_err(|e| e.to_string())?
        .build()
        .map_err(|e| e.to_string())?;
    let s = mega_preprocess(&g, &MegaConfig::default()).map_err(|e| e.to_string())?;
    let stats = s.stats();
    data!("demo graph: {} nodes, {} edges", stats.nodes, stats.edges);
    data!("path: {:?}", s.gather_index());
    data!(
        "window {} | revisits {} | virtual edges {} | coverage {:.0}% | expansion {:.2}x",
        stats.window,
        stats.revisits,
        stats.virtual_edges,
        stats.coverage * 100.0,
        stats.expansion
    );
    for hops in 1..=3 {
        data!(
            "{hops}-hop similarity: path {:.3} vs global attention {:.3}",
            path_similarity(&g, &s, hops),
            global_similarity(&g, hops)
        );
    }
    Ok(())
}

/// `mega preprocess <file>` — preprocess a user graph.
pub fn preprocess(args: &Args) -> Result<(), String> {
    let path = args
        .positional()
        .first()
        .ok_or("preprocess needs an edge-list file argument")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let g = io::read_edge_list(BufReader::new(file), Direction::Undirected)
        .map_err(|e| e.to_string())?;

    let mut cfg = MegaConfig::default();
    if let Some(w) = args.get("window") {
        let w: usize = w.parse().map_err(|_| format!("invalid --window {w}"))?;
        cfg = cfg.with_window(WindowPolicy::Fixed(w));
    }
    cfg = cfg.with_coverage(args.get_or("coverage", 1.0f64)?);
    cfg = cfg.with_edge_drop(args.get_or("drop", 0.0f64)?);

    let s = mega_preprocess(&g, &cfg).map_err(|e| e.to_string())?;
    let stats = s.stats();
    if args.has_flag("json") {
        data!(
            "{}",
            serde_json::to_string_pretty(&stats).expect("stats serialize infallibly")
        );
    } else {
        data!("graph: {} nodes, {} edges", stats.nodes, stats.edges);
        data!(
            "path length {} (expansion {:.2}x) | window {} | revisits {} | virtual {}",
            stats.path_len,
            stats.expansion,
            stats.window,
            stats.revisits,
            stats.virtual_edges
        );
        data!(
            "band: coverage {:.1}% | density {:.3}",
            stats.coverage * 100.0,
            stats.band_density
        );
    }
    Ok(())
}

/// `mega stats` — Table II/III rows for the synthetic datasets.
pub fn stats(args: &Args) -> Result<(), String> {
    let which = args.get("dataset").unwrap_or("all");
    let spec = DatasetSpec::small(2024);
    let names: Vec<&str> = match which {
        "all" => vec!["zinc", "aqsol", "csl", "cycles"],
        one => vec![one],
    };
    data!(
        "{:<8} {:>7} {:>9} {:>9} {:>11} {:>10} {:>8}",
        "dataset",
        "nodes",
        "edges(2m)",
        "sparsity",
        "mu(sig(d))",
        "sig(dmax)",
        "mu(eps)"
    );
    for name in names {
        let ds = dataset_by_name(name, &spec)?;
        let st = ds.stats(128);
        data!(
            "{:<8} {:>7.1} {:>9.1} {:>9.3} {:>11.4} {:>10.4} {:>8.2}",
            ds.name,
            st.mean_nodes,
            2.0 * st.mean_edges,
            st.mean_sparsity,
            st.mean_degree_std,
            st.std_max_degree,
            st.mean_ks_similarity
        );
    }
    Ok(())
}

/// `mega train` — train one model/engine combination and print the history.
pub fn train(args: &Args) -> Result<(), String> {
    let spec = DatasetSpec {
        train: 256,
        val: 64,
        test: 64,
        seed: 7,
    };
    let ds = dataset_by_name(args.get("dataset").unwrap_or("zinc"), &spec)?;
    let kind = model_by_name(args.get("model").unwrap_or("gcn"))?;
    let engine = engine_by_name(args.get("engine").unwrap_or("mega"))?;
    let out = match ds.task {
        Task::Regression => 1,
        Task::Classification { classes } => classes,
    };
    let cfg = GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, out)
        .with_hidden(args.get_or("hidden", 32usize)?)
        .with_layers(args.get_or("layers", 2usize)?)
        .with_heads(4);
    // --threads 0 = auto (RAYON_NUM_THREADS, then hardware); parallel paths
    // are bit-deterministic, so the history is identical for every value.
    let threads = args.get_or("threads", 1usize)?;
    // Backends are bit-identical too: `sim` decorates another backend's
    // kernels with the simulated-GPU profiler and reports the launches
    // afterwards — `sim` alone wraps the reference loops, `sim:simd` (or
    // `sim:blocked`) wraps the named backend so simulated profiling sees
    // the same launch shapes the accelerated run executes.
    let backend_name = args.get("backend").unwrap_or("reference");
    let mut sim: Option<std::sync::Arc<mega_gpu_sim::SimBackend>> = None;
    let unknown = |name: &str| {
        format!(
            "unknown backend `{name}` (reference | blocked | simd | sim | sim:<inner> | \
             profiled | profiled:<inner>)"
        )
    };
    let backend: std::sync::Arc<dyn mega_exec::Backend> = match backend_name {
        name if name == "sim" || name.starts_with("sim:") => {
            let inner_name = name.strip_prefix("sim:").unwrap_or("reference");
            let inner = mega_exec::backend_by_name(inner_name).ok_or_else(|| unknown(name))?;
            let s = std::sync::Arc::new(mega_gpu_sim::SimBackend::new(
                inner,
                mega_gpu_sim::DeviceConfig::gtx_1080(),
            ));
            sim = Some(s.clone());
            s
        }
        // `profiled` decorates another backend with per-kernel
        // FLOP/byte/time attribution (surfaced by `mega report`).
        name if name.starts_with("profiled:") => {
            let inner_name = name.strip_prefix("profiled:").unwrap_or("reference");
            let inner = mega_exec::backend_by_name(inner_name).ok_or_else(|| unknown(name))?;
            std::sync::Arc::new(mega_exec::ProfiledBackend::new(inner))
        }
        name => mega_exec::backend_by_name(name).ok_or_else(|| unknown(name))?,
    };
    // The planner (op fusion + cross-step pack caching) is on by default
    // and bit-identical to the unfused path; `--no-plan` selects the eager
    // oracle (e.g. to A/B the planner's wall clock or counters).
    let plan = !args.has_flag("no-plan");
    let trainer = Trainer::new(engine)
        .with_epochs(args.get_or("epochs", 5usize)?)
        .with_batch_size(args.get_or("batch", 32usize)?)
        .with_lr(args.get_or("lr", 5e-3f32)?)
        .with_parallelism(mega_core::Parallelism::with_threads(threads))
        .with_backend(backend)
        .with_plan(plan);
    // Passing --workers (any N >= 1, including 1) routes the run through the
    // distributed trainer, which shards each optimizer step sample-per-shard
    // and all-reduces gradients in a fixed order — the trajectory is
    // bit-identical for every worker count. Omitting the flag keeps the plain
    // whole-batch trainer; its batch-norm sees whole-batch statistics, so it
    // follows a different (equally deterministic) trajectory.
    let workers = match args.get("workers") {
        Some(_) => Some(args.get_or("workers", 1usize)?),
        None => None,
    };
    if workers == Some(0) {
        return Err("--workers must be at least 1".into());
    }
    info!(
        "training {} on {} with the {} engine ({} threads, {} backend, planner {}, {} trainer)...",
        kind.label(),
        ds.name,
        engine.label(),
        mega_core::Parallelism::with_threads(threads).effective_threads(),
        backend_name,
        if plan { "on" } else { "off" },
        match workers {
            Some(k) => format!("distributed x{k}"),
            None => "serial".to_string(),
        }
    );
    let instrument = wants_obs(args);
    if instrument {
        mega_obs::reset();
        mega_obs::set_enabled(true);
    }
    let hist = match workers {
        Some(k) => mega_dist::DistTrainer::new(trainer, k).run(&ds, cfg),
        None => trainer.run(&ds, cfg),
    };
    if instrument {
        mega_obs::set_enabled(false);
    }
    if let Some(sim) = &sim {
        data!("\n=== simulated kernel launches (--backend sim, GTX 1080) ===");
        data!("{}", sim.report());
        data!(
            "simulated backend time: {:.3} ms",
            sim.elapsed_seconds() * 1e3
        );
    }
    data!(
        "simulated GPU epoch: {:.3} ms",
        hist.epoch_sim_seconds * 1e3
    );
    data!(
        "{:>5} {:>12} {:>10} {:>10} {:>12}",
        "epoch",
        "train-loss",
        "val-loss",
        "metric",
        "sim-clock(s)"
    );
    for r in &hist.records {
        data!(
            "{:>5} {:>12.4} {:>10.4} {:>10.4} {:>12.4}",
            r.epoch,
            r.train_loss,
            r.val_loss,
            r.val_metric,
            r.sim_seconds
        );
    }
    write_obs_outputs(args)
}

/// `mega profile` — instrumented training run plus simulated GTX 1080
/// kernel tables, for both engines.
///
/// Trains `--epochs` epochs under full observability, bridges the
/// simulated-GPU kernel statistics into the same registry
/// (`gpusim.dgl.*` / `gpusim.mega.*`), and prints a span tree showing
/// where host time went. `--trace-out` / `--metrics-out` export the run.
pub fn profile(args: &Args) -> Result<(), String> {
    let spec = DatasetSpec {
        train: 64,
        val: 8,
        test: 8,
        seed: 9,
    };
    let ds = dataset_by_name(args.get("dataset").unwrap_or("zinc"), &spec)?;
    let kind = model_by_name(args.get("model").unwrap_or("gt"))?;
    let batch = args.get_or("batch", 64usize)?;
    let hidden = args.get_or("hidden", 64usize)?;
    let epochs = args.get_or("epochs", 2usize)?;
    let threads = args.get_or("threads", 1usize)?;
    let out = match ds.task {
        Task::Regression => 1,
        Task::Classification { classes } => classes,
    };

    mega_obs::reset();
    mega_obs::set_enabled(true);
    for engine in [EngineChoice::Baseline, EngineChoice::Mega] {
        // One span per engine so the tree separates the two runs.
        let (engine_span, gpusim_prefix) = match engine {
            EngineChoice::Baseline => ("engine_dgl", "gpusim.dgl"),
            EngineChoice::Mega => ("engine_mega", "gpusim.mega"),
        };
        let _span = mega_obs::span(engine_span);

        // Simulated-GPU kernel profile of one training step.
        let cost = mega_bench_profile(&ds, kind, engine, batch, hidden)?;
        cost.report.export_obs(gpusim_prefix);
        data!(
            "\n=== {} engine — one epoch ({} steps) ===",
            engine.label(),
            cost.steps
        );
        data!("{}", cost.report);
        data!("simulated epoch: {:.3} ms", cost.epoch_seconds * 1e3);

        // Instrumented host-side training.
        let cfg = GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, out)
            .with_hidden(hidden)
            .with_layers(2)
            .with_heads(4);
        let trainer = Trainer::new(engine)
            .with_epochs(epochs)
            .with_batch_size(batch)
            .with_parallelism(mega_core::Parallelism::with_threads(threads));
        let hist = trainer.run(&ds, cfg);
        data!(
            "trained {epochs} epochs: final train-loss {:.4} | host phases/epoch \
             (assemble {:.1}ms, forward {:.1}ms, backward {:.1}ms, opt {:.1}ms, eval {:.1}ms)",
            hist.records.last().map_or(f64::NAN, |r| r.train_loss),
            mean_phase(&hist, |p| p.assemble) * 1e3,
            mean_phase(&hist, |p| p.forward) * 1e3,
            mean_phase(&hist, |p| p.backward) * 1e3,
            mean_phase(&hist, |p| p.optimizer) * 1e3,
            mean_phase(&hist, |p| p.evaluate) * 1e3,
        );
    }
    mega_obs::set_enabled(false);

    let snap = mega_obs::snapshot();
    data!("\n=== span tree (host wall clock) ===");
    data!("{}", snap.render_span_tree());
    write_obs_outputs(args)
}

/// Mean of one [`mega_gnn::PhaseSeconds`] field over a run's epochs.
fn mean_phase<F: Fn(&mega_gnn::PhaseSeconds) -> f64>(
    hist: &mega_gnn::TrainingHistory,
    f: F,
) -> f64 {
    if hist.records.is_empty() {
        return 0.0;
    }
    hist.records.iter().map(|r| f(&r.phases)).sum::<f64>() / hist.records.len() as f64
}

fn mega_bench_profile(
    ds: &Dataset,
    kind: ModelKind,
    engine: EngineChoice,
    batch: usize,
    hidden: usize,
) -> Result<mega_gpu_sim::EpochCost, String> {
    let samples = &ds.train[..ds.train.len().min(batch)];
    let schedules: Option<Vec<_>> = match engine {
        EngineChoice::Mega => Some(
            samples
                .iter()
                .map(|s| {
                    mega_preprocess(&s.graph, &MegaConfig::default()).map_err(|e| e.to_string())
                })
                .collect::<Result<_, _>>()?,
        ),
        EngineChoice::Baseline => None,
    };
    let cfg = GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(hidden)
        .with_layers(2)
        .with_heads(4);
    let steps = ds.train.len().div_ceil(batch).max(1);
    Ok(mega_gnn::cost::epoch_cost(
        &cfg,
        engine,
        samples,
        schedules.as_deref(),
        steps,
    ))
}
