//! Distributed training-time scaling model.
//!
//! Combines per-partition compute (the single-device epoch cost divided
//! across workers) with the communication costs of §IV-B6: per aggregation
//! round, every communicating partition pair exchanges one message (paying
//! network latency) and the boundary embedding rows transit the network
//! (paying bandwidth). Edge-cut partitions approach all-to-all message
//! counts, so their scaling saturates; MEGA's path partition keeps a chain
//! of `k − 1` exchanges and continues to scale.

use crate::comm::CommStats;

/// Interconnect parameters of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Per-link network bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl ClusterConfig {
    /// A 10 GbE-class cluster: 1.25 GB/s links, 50 µs messages.
    pub fn ten_gbe() -> Self {
        ClusterConfig {
            bandwidth: 1.25e9,
            latency: 50e-6,
        }
    }

    /// An NVLink-class fabric: 50 GB/s links, 5 µs messages.
    pub fn nvlink() -> Self {
        ClusterConfig {
            bandwidth: 50e9,
            latency: 5e-6,
        }
    }
}

/// Predicted per-epoch wall clock of one distributed configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Worker count.
    pub partitions: usize,
    /// Compute share of the epoch (perfectly divided across workers).
    pub compute_seconds: f64,
    /// Communication share of the epoch.
    pub comm_seconds: f64,
    /// Total epoch seconds.
    pub total_seconds: f64,
    /// Speedup over the single-worker epoch.
    pub speedup: f64,
}

/// Predicts the distributed epoch time.
///
/// `single_epoch_seconds` is the one-device epoch cost (e.g. from the GPU
/// simulator); `comm` the per-round communication stats of the chosen
/// partitioning; `rounds` the aggregation rounds per epoch (layers × passes ×
/// steps); `feat_dim` the embedding width.
///
/// # Panics
///
/// Panics if `comm.partitions == 0`.
pub fn epoch_scaling(
    single_epoch_seconds: f64,
    comm: &CommStats,
    rounds: usize,
    feat_dim: usize,
    cluster: &ClusterConfig,
) -> ScalingPoint {
    let k = comm.partitions;
    assert!(k > 0, "need at least one partition");
    let compute = single_epoch_seconds / k as f64;
    // Per round: every communicating pair exchanges one message (latency,
    // pairs serialized per worker pair but overlapped across pairs up to the
    // worker count), plus the boundary rows transit at link bandwidth.
    let bytes = (comm.volume_rows * feat_dim * 4) as f64;
    let per_round = bytes / (cluster.bandwidth * k as f64)
        + cluster.latency * (comm.comm_pairs as f64 / k as f64).ceil();
    let comm_seconds = per_round * rounds as f64;
    let total = compute + comm_seconds;
    ScalingPoint {
        partitions: k,
        compute_seconds: compute,
        comm_seconds,
        total_seconds: total,
        speedup: single_epoch_seconds / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{edge_cut_volume, path_partition_volume};
    use crate::partition::hash_partition;
    use mega_core::{preprocess, MegaConfig};
    use mega_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(k: usize) -> (CommStats, CommStats) {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generate::barabasi_albert(800, 3, &mut rng).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let cut = edge_cut_volume(&g, &hash_partition(&g, k), k);
        let path = path_partition_volume(&s, k);
        (cut, path)
    }

    #[test]
    fn single_worker_is_identity() {
        let (cut, _) = stats(1);
        let p = epoch_scaling(2.0, &cut, 10, 64, &ClusterConfig::ten_gbe());
        assert!((p.total_seconds - 2.0).abs() < 1e-9);
        assert!((p.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_partition_scales_better_at_high_k() {
        let cluster = ClusterConfig::ten_gbe();
        let (cut, path) = stats(32);
        let cut_point = epoch_scaling(2.0, &cut, 200, 64, &cluster);
        let path_point = epoch_scaling(2.0, &path, 200, 64, &cluster);
        assert!(
            path_point.speedup > cut_point.speedup,
            "path {} vs cut {}",
            path_point.speedup,
            cut_point.speedup
        );
    }

    #[test]
    fn speedup_is_bounded_by_k() {
        let cluster = ClusterConfig::nvlink();
        for k in [2usize, 8, 32] {
            let (_, path) = stats(k);
            let p = epoch_scaling(5.0, &path, 50, 64, &cluster);
            assert!(p.speedup <= k as f64 + 1e-9);
            assert!(p.speedup > 1.0, "k={k} gained nothing: {}", p.speedup);
        }
    }

    #[test]
    fn faster_network_helps() {
        let (cut, _) = stats(16);
        let slow = epoch_scaling(1.0, &cut, 100, 64, &ClusterConfig::ten_gbe());
        let fast = epoch_scaling(1.0, &cut, 100, 64, &ClusterConfig::nvlink());
        assert!(fast.total_seconds < slow.total_seconds);
    }
}
