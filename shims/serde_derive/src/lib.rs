//! Derive macros for the offline `serde` shim.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the item
//! shapes this workspace uses: non-generic structs with named fields, tuple
//! structs, unit structs, and enums whose variants are unit, tuple, or
//! struct-like. The parser walks the raw `TokenStream` directly (no `syn`,
//! no `quote` — the build environment is offline), and the generated code
//! targets the shim's `Value` tree.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Skips attribute groups (`#[...]` and `#![...]`) at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if i < tokens.len() {
                    if let TokenTree::Punct(p2) = &tokens[i] {
                        if p2.as_char() == '!' {
                            i += 1;
                        }
                    }
                }
                // The bracketed attribute body.
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                } else {
                    panic!("serde shim derive: malformed attribute");
                }
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
    }
    i
}

/// Counts top-level comma-separated entries in a delimited group.
fn count_entries(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add an entry.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Parses `name: Type, ...` field lists from a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, found {other}"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_entries(g),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde shim derive: expected enum body, found {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0usize;
            while j < body_tokens.len() {
                j = skip_attrs(&body_tokens, j);
                if j >= body_tokens.len() {
                    break;
                }
                let vname = match &body_tokens[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde shim derive: expected variant name, found {other}"),
                };
                j += 1;
                let kind = match body_tokens.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        VariantKind::Tuple(count_entries(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        VariantKind::Struct(parse_named_fields(g))
                    }
                    _ => VariantKind::Unit,
                };
                if matches!(body_tokens.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    j += 1;
                }
                variants.push(Variant { name: vname, kind });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let parts: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", parts.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ {expr} }}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|k| format!("__f{k}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::serialize(__f0)".to_string()
                            } else {
                                let parts: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", parts.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), {payload})]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::serialize({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    };
    body.parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(::serde::field(__obj, {f:?}, {name:?})?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 let __obj = __v.as_object().ok_or_else(|| ::serde::Error::new(concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
            } else {
                let parts: Vec<String> = (0..*arity)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::deserialize(__a.get({k}).ok_or_else(|| ::serde::Error::new(\"tuple too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let __a = __v.as_array().ok_or_else(|| ::serde::Error::new(\"expected array\"))?;\n\
                     Ok({name}({}))",
                    parts.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{expr}\n}}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(_: &::serde::Value) -> Result<Self, ::serde::Error> {{ Ok({name}) }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => Some(if *arity == 1 {
                            format!(
                                "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::deserialize(__payload)?)),\n"
                            )
                        } else {
                            let parts: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::deserialize(__a.get({k}).ok_or_else(|| ::serde::Error::new(\"variant tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                 let __a = __payload.as_array().ok_or_else(|| ::serde::Error::new(\"expected array payload\"))?;\n\
                                 return Ok({name}::{vn}({}));\n}}\n",
                                parts.join(", ")
                            )
                        }),
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(::serde::field(__fobj, {f:?}, {name:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __fobj = __payload.as_object().ok_or_else(|| ::serde::Error::new(\"expected object payload\"))?;\n\
                                 return Ok({name}::{vn} {{ {} }});\n}}\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => {{\n\
                 match __s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 Err(::serde::Error::new(format!(concat!(\"unknown variant `{{}}` for \", {name:?}), __s)))\n\
                 }}\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __payload) = &__o[0];\n\
                 match __tag.as_str() {{\n{data_arms}_ => {{}}\n}}\n\
                 Err(::serde::Error::new(format!(concat!(\"unknown variant `{{}}` for \", {name:?}), __tag)))\n\
                 }}\n\
                 _ => Err(::serde::Error::new(concat!(\"expected enum encoding for \", {name:?}))),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    };
    body.parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}
