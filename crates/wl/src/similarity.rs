//! Similarity scores between aggregation structures (paper Fig. 8).

use crate::labels::refine_pair;
use crate::receptive::{jaccard, khop_sets, path_khop_sets};
use mega_core::AttentionSchedule;
use mega_graph::Graph;
use std::collections::BTreeMap;

/// Mean Jaccard similarity between each node's true k-hop receptive field in
/// `g` and its receptive field under MEGA's path representation. Equals 1.0
/// at `hops = 1` with full edge coverage ("the path representation
/// consistently ensures identity in 1-hop aggregation"), and degrades
/// gracefully as `hops` grows.
///
/// # Example
///
/// ```
/// use mega_core::{preprocess, MegaConfig};
/// use mega_graph::generate;
/// use mega_wl::path_similarity;
///
/// # fn main() -> Result<(), mega_core::MegaError> {
/// let g = generate::complete(8).unwrap();
/// let s = preprocess(&g, &MegaConfig::default())?;
/// let one_hop = path_similarity(&g, &s, 1);
/// assert!((one_hop - 1.0).abs() < 1e-12);
/// let three_hop = path_similarity(&g, &s, 3);
/// assert!(three_hop <= 1.0 + 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn path_similarity(g: &Graph, schedule: &AttentionSchedule, hops: usize) -> f64 {
    let truth = khop_sets(g, hops);
    let approx = path_khop_sets(schedule, hops);
    mean_jaccard(&truth, &approx)
}

/// Like [`path_similarity`], but with node appearances merged after every
/// hop (the flow model of the trained banded engine). With full edge
/// coverage this is 1.0 at every hop.
pub fn path_similarity_merged(g: &Graph, schedule: &AttentionSchedule, hops: usize) -> f64 {
    let truth = khop_sets(g, hops);
    let approx = crate::receptive::path_khop_sets_merged(schedule, hops);
    mean_jaccard(&truth, &approx)
}

/// Mean Jaccard similarity between each node's true k-hop receptive field and
/// the *global attention* field (every node attends to every node, the "full
/// labels set" of Fig. 8). Low on sparse graphs, approaching 1 as density or
/// hop count makes k-balls cover the graph.
pub fn global_similarity(g: &Graph, hops: usize) -> f64 {
    let truth = khop_sets(g, hops);
    let all: std::collections::BTreeSet<usize> = (0..g.node_count()).collect();
    if truth.is_empty() {
        return 1.0;
    }
    truth.iter().map(|t| jaccard(t, &all)).sum::<f64>() / truth.len() as f64
}

fn mean_jaccard(
    a: &[std::collections::BTreeSet<usize>],
    b: &[std::collections::BTreeSet<usize>],
) -> f64 {
    assert_eq!(a.len(), b.len(), "receptive field vectors must align");
    if a.is_empty() {
        return 1.0;
    }
    a.iter().zip(b).map(|(x, y)| jaccard(x, y)).sum::<f64>() / a.len() as f64
}

/// Normalized WL subtree-kernel similarity between two graphs: the histogram
/// intersection of their refined color multisets, averaged over rounds and
/// normalized by node count. 1.0 for WL-indistinguishable graphs of equal
/// size.
pub fn subtree_similarity(a: &Graph, b: &Graph, iterations: usize) -> f64 {
    let (ha, hb) = refine_pair(a, b, iterations);
    let rounds = iterations + 1;
    let mut total = 0.0;
    for k in 0..rounds {
        let ma = histogram(&ha.rounds[k]);
        let mb = histogram(&hb.rounds[k]);
        let inter: usize = ma
            .iter()
            .map(|(color, &ca)| ca.min(mb.get(color).copied().unwrap_or(0)))
            .sum();
        let denom = ha.rounds[k].len().max(hb.rounds[k].len()).max(1);
        total += inter as f64 / denom as f64;
    }
    total / rounds as f64
}

fn histogram(colors: &[u64]) -> BTreeMap<u64, usize> {
    let mut h = BTreeMap::new();
    for &c in colors {
        *h.entry(c).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_core::{preprocess, MegaConfig, WindowPolicy};
    use mega_graph::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_similarity_is_one_at_one_hop() {
        for seed in 0..3u64 {
            let g = generate::erdos_renyi(25, 0.15, &mut StdRng::seed_from_u64(seed)).unwrap();
            let s = preprocess(&g, &MegaConfig::default()).unwrap();
            assert!(
                (path_similarity(&g, &s, 1) - 1.0).abs() < 1e-12,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn path_similarity_monotone_decreasing_in_hops() {
        let g = generate::barabasi_albert(40, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let s1 = path_similarity(&g, &s, 1);
        let s3 = path_similarity(&g, &s, 3);
        assert!(s1 >= s3 - 1e-12);
        assert!(s3 > 0.1, "multi-hop similarity collapsed: {s3}");
    }

    #[test]
    fn merged_flow_is_exact_at_every_hop() {
        let g = generate::barabasi_albert(40, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        for hops in 1..=4 {
            assert!(
                (path_similarity_merged(&g, &s, hops) - 1.0).abs() < 1e-12,
                "hops {hops}"
            );
        }
    }

    #[test]
    fn path_beats_global_on_sparse_graphs() {
        // The headline claim of Fig. 8.
        let g = generate::erdos_renyi(60, 0.05, &mut StdRng::seed_from_u64(3)).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        for hops in 1..=2 {
            assert!(
                path_similarity(&g, &s, hops) > global_similarity(&g, hops),
                "hops {hops}"
            );
        }
    }

    #[test]
    fn global_similarity_grows_with_hops() {
        let g = generate::cycle(16).unwrap();
        assert!(global_similarity(&g, 3) > global_similarity(&g, 1));
    }

    #[test]
    fn global_similarity_is_one_on_complete_graph() {
        let g = generate::complete(10).unwrap();
        assert!((global_similarity(&g, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subtree_similarity_self_is_one() {
        let g = generate::barabasi_albert(20, 2, &mut StdRng::seed_from_u64(11)).unwrap();
        assert!((subtree_similarity(&g, &g, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subtree_similarity_detects_difference() {
        let star = generate::star(10).unwrap();
        let path = generate::path(10).unwrap();
        let s = subtree_similarity(&star, &path, 3);
        assert!(s < 0.8, "expected structural difference, got {s}");
    }

    #[test]
    fn larger_window_preserves_no_less_one_hop() {
        let g = generate::complete(9).unwrap();
        for w in [1usize, 2, 4] {
            let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(w));
            let s = preprocess(&g, &cfg).unwrap();
            assert!(
                (path_similarity(&g, &s, 1) - 1.0).abs() < 1e-12,
                "window {w}"
            );
        }
    }
}
