//! End-to-end integration tests spanning the whole workspace:
//! datasets → preprocessing → both GNN engines → training → simulated timing.

use mega::core::{preprocess, MegaConfig, WindowPolicy};
use mega::datasets::{aqsol, csl, cycles, zinc, Dataset, DatasetSpec, Task};
use mega::gnn::nn::Binder;
use mega::gnn::{Batch, EngineChoice, Gnn, GnnConfig, ModelKind, Trainer};
use mega::tensor::{ParamStore, Tape};

fn tiny(seed: u64) -> DatasetSpec {
    DatasetSpec::tiny(seed)
}

fn config_for(ds: &Dataset, kind: ModelKind) -> GnnConfig {
    let out = match ds.task {
        Task::Regression => 1,
        Task::Classification { classes } => classes,
    };
    GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, out)
        .with_hidden(16)
        .with_layers(2)
        .with_heads(2)
        .with_seed(11)
}

/// Every dataset × model × engine combination trains without NaNs and
/// produces finite, improving losses.
#[test]
fn all_combinations_train() {
    let datasets = [
        zinc(&tiny(1)),
        aqsol(&tiny(2)),
        csl(&tiny(3)),
        cycles(&tiny(4)),
    ];
    for ds in &datasets {
        for kind in [
            ModelKind::GatedGcn,
            ModelKind::GraphTransformer,
            ModelKind::Gat,
        ] {
            for engine in [EngineChoice::Baseline, EngineChoice::Mega] {
                let hist = Trainer::new(engine)
                    .with_epochs(2)
                    .with_batch_size(8)
                    .run(ds, config_for(ds, kind));
                assert_eq!(hist.records.len(), 2);
                for r in &hist.records {
                    assert!(
                        r.train_loss.is_finite() && r.val_loss.is_finite(),
                        "{} {} {:?}: non-finite loss",
                        ds.name,
                        kind.label(),
                        engine
                    );
                }
                assert!(hist.epoch_sim_seconds > 0.0);
            }
        }
    }
}

/// The paper's central correctness claim: with full coverage, the MEGA
/// engine's forward pass equals the baseline's on every dataset and model.
#[test]
fn engines_agree_on_every_dataset() {
    let datasets = [
        zinc(&tiny(5)),
        aqsol(&tiny(6)),
        csl(&tiny(7)),
        cycles(&tiny(8)),
    ];
    for ds in &datasets {
        for kind in [
            ModelKind::GatedGcn,
            ModelKind::GraphTransformer,
            ModelKind::Gat,
        ] {
            let cfg = config_for(ds, kind);
            let mut store = ParamStore::new();
            let model = Gnn::new(&mut store, cfg);
            let samples = &ds.train[..6];
            let schedules: Vec<_> = samples
                .iter()
                .map(|s| preprocess(&s.graph, &MegaConfig::default()).unwrap())
                .collect();
            let base = Batch::baseline(samples);
            let mega = Batch::mega(samples, &schedules);

            let mut tb = Tape::new();
            let mut bb = Binder::new();
            let pb = model.forward(&mut tb, &mut bb, &store, &base);
            let mut tm = Tape::new();
            let mut bm = Binder::new();
            let pm = model.forward(&mut tm, &mut bm, &store, &mega);

            let vb = tb.value(pb);
            let vm = tm.value(pm);
            for (a, b) in vb.as_slice().iter().zip(vm.as_slice()) {
                assert!(
                    (a - b).abs() < 5e-3 * (1.0 + a.abs()),
                    "{} {}: baseline {a} vs mega {b}",
                    ds.name,
                    kind.label()
                );
            }
        }
    }
}

/// MEGA's simulated epoch is cheaper than the baseline's for every dataset.
#[test]
fn mega_epoch_is_cheaper_everywhere() {
    let datasets = [
        zinc(&tiny(9)),
        aqsol(&tiny(10)),
        csl(&tiny(11)),
        cycles(&tiny(12)),
    ];
    for ds in &datasets {
        let cfg = config_for(ds, ModelKind::GraphTransformer)
            .with_hidden(64)
            .with_heads(4);
        let base = Trainer::new(EngineChoice::Baseline)
            .with_epochs(1)
            .with_batch_size(16)
            .run(ds, cfg.clone());
        let mega = Trainer::new(EngineChoice::Mega)
            .with_epochs(1)
            .with_batch_size(16)
            .run(ds, cfg);
        assert!(
            mega.epoch_sim_seconds < base.epoch_sim_seconds,
            "{}: mega {} vs baseline {}",
            ds.name,
            mega.epoch_sim_seconds,
            base.epoch_sim_seconds
        );
    }
}

/// Edge dropping shortens the simulated epoch further (the Fig. 15 setup).
#[test]
fn edge_dropping_compounds_the_speedup() {
    let ds = aqsol(&tiny(13));
    let cfg = config_for(&ds, ModelKind::GraphTransformer);
    let full = Trainer::new(EngineChoice::Mega)
        .with_epochs(1)
        .with_batch_size(8)
        .run(&ds, cfg.clone());
    let dropped = Trainer::new(EngineChoice::Mega)
        .with_epochs(1)
        .with_batch_size(8)
        .with_mega_config(MegaConfig::default().with_edge_drop(0.3))
        .run(&ds, cfg);
    assert!(dropped.epoch_sim_seconds < full.epoch_sim_seconds);
}

/// Preprocessing honors custom window policies end to end.
#[test]
fn window_policy_reaches_training() {
    let ds = zinc(&tiny(14));
    let cfg = config_for(&ds, ModelKind::GatedGcn);
    for w in [1usize, 4] {
        let hist = Trainer::new(EngineChoice::Mega)
            .with_epochs(1)
            .with_batch_size(8)
            .with_mega_config(MegaConfig::default().with_window(WindowPolicy::Fixed(w)))
            .run(&ds, cfg.clone());
        assert!(hist.records[0].train_loss.is_finite(), "window {w}");
    }
}
