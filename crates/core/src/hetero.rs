//! Heterogeneous-graph multi-path scheduling (the paper's future-work
//! direction, §IV-B8): "for heterogeneous graph scenarios, MEGA can arrange
//! multiple paths to cover distinct node types, subsequently merging
//! hierarchically" (cf. HAN).
//!
//! A [`HeteroGraph`] is a graph whose nodes carry a type id. Preprocessing
//! builds one path per node type over that type's induced subgraph, plus one
//! *cross path* over the remaining inter-type edges. Every original edge is
//! covered by exactly one of the schedules, so a hierarchical aggregation —
//! intra-type banded attention first, cross-type second — sees each edge
//! once, exactly like the homogeneous schedule.

use crate::config::MegaConfig;
use crate::error::MegaError;
use crate::schedule::AttentionSchedule;
use crate::traversal::traverse;
use mega_graph::{EdgeList, Graph};

/// A graph with typed nodes.
#[derive(Debug, Clone)]
pub struct HeteroGraph {
    graph: Graph,
    node_types: Vec<usize>,
    type_count: usize,
}

impl HeteroGraph {
    /// Wraps a graph with per-node type ids in `0..type_count`.
    ///
    /// # Errors
    ///
    /// Returns [`MegaError::InvalidConfig`] if the type vector length differs
    /// from the node count or a type id is out of range.
    pub fn new(graph: Graph, node_types: Vec<usize>, type_count: usize) -> Result<Self, MegaError> {
        if node_types.len() != graph.node_count() {
            return Err(MegaError::InvalidConfig {
                field: "node_types",
                reason: format!(
                    "expected {} type ids, got {}",
                    graph.node_count(),
                    node_types.len()
                ),
            });
        }
        if let Some(&bad) = node_types.iter().find(|&&t| t >= type_count) {
            return Err(MegaError::InvalidConfig {
                field: "node_types",
                reason: format!("type id {bad} out of range 0..{type_count}"),
            });
        }
        Ok(HeteroGraph {
            graph,
            node_types,
            type_count,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Per-node type ids.
    pub fn node_types(&self) -> &[usize] {
        &self.node_types
    }

    /// Number of node types.
    pub fn type_count(&self) -> usize {
        self.type_count
    }

    /// Number of edges whose endpoints share a type.
    pub fn intra_edge_count(&self) -> usize {
        self.graph
            .edges()
            .filter(|&(a, b)| self.node_types[a] == self.node_types[b])
            .count()
    }

    /// Number of edges crossing types.
    pub fn cross_edge_count(&self) -> usize {
        self.graph.edge_count() - self.intra_edge_count()
    }
}

/// One per-type schedule with its local→global node mapping.
#[derive(Debug, Clone)]
pub struct TypedSchedule {
    /// The node type this schedule covers.
    pub node_type: usize,
    /// Schedule over the induced subgraph (local node ids).
    pub schedule: AttentionSchedule,
    /// `local_to_global[local]` is the original node id.
    pub local_to_global: Vec<usize>,
}

/// The hierarchical multi-path preprocessing artifact.
#[derive(Debug, Clone)]
pub struct MultiPathSchedule {
    /// Intra-type schedules, one per node type with at least one node.
    pub per_type: Vec<TypedSchedule>,
    /// Schedule over the cross-type edges (global node ids), present when
    /// any cross edges exist.
    pub cross: Option<AttentionSchedule>,
}

impl MultiPathSchedule {
    /// Total edges covered across all schedules.
    pub fn covered_edge_count(&self) -> usize {
        let intra: usize = self
            .per_type
            .iter()
            .map(|t| t.schedule.band().covered_edge_count())
            .sum();
        intra
            + self
                .cross
                .as_ref()
                .map_or(0, |c| c.band().covered_edge_count())
    }

    /// Total path positions across all schedules.
    pub fn total_path_len(&self) -> usize {
        let intra: usize = self.per_type.iter().map(|t| t.schedule.path().len()).sum();
        intra + self.cross.as_ref().map_or(0, |c| c.path().len())
    }
}

/// Builds the multi-path schedule: one traversal per node type over the
/// induced subgraph, plus one over the cross-type edges.
///
/// # Errors
///
/// Propagates configuration and traversal errors.
pub fn preprocess_hetero(
    h: &HeteroGraph,
    config: &MegaConfig,
) -> Result<MultiPathSchedule, MegaError> {
    config.validate()?;
    let g = h.graph();
    let mut per_type = Vec::new();
    for t in 0..h.type_count() {
        let local_to_global: Vec<usize> = (0..g.node_count())
            .filter(|&v| h.node_types[v] == t)
            .collect();
        if local_to_global.is_empty() {
            continue;
        }
        let mut global_to_local = vec![usize::MAX; g.node_count()];
        for (l, &v) in local_to_global.iter().enumerate() {
            global_to_local[v] = l;
        }
        let mut pairs = Vec::new();
        for (a, b) in g.edges() {
            if h.node_types[a] == t && h.node_types[b] == t {
                pairs.push((global_to_local[a], global_to_local[b]));
            }
        }
        let coo = EdgeList::from_pairs(local_to_global.len(), pairs)?;
        let sub = Graph::from_edge_list(coo, g.direction())?;
        let traversal = traverse(&sub, config)?;
        per_type.push(TypedSchedule {
            node_type: t,
            schedule: AttentionSchedule::from_traversal(&sub, traversal),
            local_to_global,
        });
    }

    let cross_pairs: Vec<(usize, usize)> = g
        .edges()
        .filter(|&(a, b)| h.node_types[a] != h.node_types[b])
        .collect();
    let cross = if cross_pairs.is_empty() {
        None
    } else {
        let coo = EdgeList::from_pairs(g.node_count(), cross_pairs)?;
        let cross_graph = Graph::from_edge_list(coo, g.direction())?;
        let traversal = traverse(&cross_graph, config)?;
        Some(AttentionSchedule::from_traversal(&cross_graph, traversal))
    };

    Ok(MultiPathSchedule { per_type, cross })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::GraphBuilder;

    /// A bipartite-ish hetero graph: types {0, 1}, intra edges within each
    /// type plus cross edges between them.
    fn sample() -> HeteroGraph {
        let g = GraphBuilder::undirected(6)
            .edges([
                (0, 1), // type 0 intra
                (1, 2), // type 0 intra
                (3, 4), // type 1 intra
                (4, 5), // type 1 intra
                (0, 3), // cross
                (2, 5), // cross
            ])
            .unwrap()
            .build()
            .unwrap();
        HeteroGraph::new(g, vec![0, 0, 0, 1, 1, 1], 2).unwrap()
    }

    #[test]
    fn validates_type_vector() {
        let g = GraphBuilder::undirected(2)
            .edges([(0, 1)])
            .unwrap()
            .build()
            .unwrap();
        assert!(HeteroGraph::new(g.clone(), vec![0], 1).is_err());
        assert!(HeteroGraph::new(g.clone(), vec![0, 3], 2).is_err());
        assert!(HeteroGraph::new(g, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn edge_classification() {
        let h = sample();
        assert_eq!(h.intra_edge_count(), 4);
        assert_eq!(h.cross_edge_count(), 2);
    }

    #[test]
    fn every_edge_covered_exactly_once() {
        let h = sample();
        let mp = preprocess_hetero(&h, &MegaConfig::default()).unwrap();
        assert_eq!(mp.covered_edge_count(), h.graph().edge_count());
        assert_eq!(mp.per_type.len(), 2);
        assert!(mp.cross.is_some());
    }

    #[test]
    fn per_type_schedules_map_back_to_global_nodes() {
        let h = sample();
        let mp = preprocess_hetero(&h, &MegaConfig::default()).unwrap();
        for ts in &mp.per_type {
            for &pos_node in ts.schedule.gather_index() {
                let global = ts.local_to_global[pos_node];
                assert_eq!(h.node_types()[global], ts.node_type);
            }
        }
    }

    #[test]
    fn single_type_degenerates_to_homogeneous() {
        let g = mega_graph::generate::cycle(8).unwrap();
        let h = HeteroGraph::new(g.clone(), vec![0; 8], 1).unwrap();
        let mp = preprocess_hetero(&h, &MegaConfig::default()).unwrap();
        assert_eq!(mp.per_type.len(), 1);
        assert!(mp.cross.is_none());
        assert_eq!(mp.covered_edge_count(), 8);
        // Matches the homogeneous preprocessing coverage.
        let homo = crate::preprocess(&g, &MegaConfig::default()).unwrap();
        assert_eq!(mp.covered_edge_count(), homo.band().covered_edge_count());
    }

    #[test]
    fn empty_type_is_skipped() {
        let g = GraphBuilder::undirected(3)
            .edges([(0, 1), (1, 2)])
            .unwrap()
            .build()
            .unwrap();
        let h = HeteroGraph::new(g, vec![0, 0, 0], 3).unwrap();
        let mp = preprocess_hetero(&h, &MegaConfig::default()).unwrap();
        assert_eq!(mp.per_type.len(), 1);
        assert_eq!(mp.total_path_len(), mp.per_type[0].schedule.path().len());
    }
}
