// `span-coverage` fixture: opener, runs-under, calls-opener, uncovered.
pub fn opener(n: usize) -> usize {
    let _g = mega_obs::span("opener");
    inner(n)
}

pub fn inner(n: usize) -> usize {
    n + 1
}

pub fn wrapper(n: usize) -> usize {
    opener(n)
}

pub fn uncovered(n: usize) -> usize {
    n * 2
}

// mega-lint: allow(span-coverage, reason = "O(1) accessor; nothing to attribute")
pub fn tiny() -> usize {
    0
}
