//! Distributed partitioning and communication-volume analysis (§IV-B6).
//!
//! The paper argues that conventional distributed GNN training partitions the
//! *graph*, paying edge-cut communication that requires expensive all-to-all
//! exchanges, while partitioning MEGA's *path* into contiguous segments needs
//! only a halo exchange between adjacent segments — `O(k)` communications for
//! `k` partitions, at the cost of replicating revisited nodes.
//!
//! * [`partition`] — node partitioners (hash and BFS-locality) and the path
//!   segment partitioner.
//! * [`comm`] — communication accounting: cut edges, communicating partition
//!   pairs, replica synchronization volume.
//!
//! # Example
//!
//! ```
//! use mega_core::{preprocess, MegaConfig};
//! use mega_dist::{comm, partition};
//! use mega_graph::generate;
//!
//! # fn main() -> Result<(), mega_core::MegaError> {
//! let g = generate::complete(24).unwrap();
//! let s = preprocess(&g, &MegaConfig::default())?;
//! let k = 4;
//! let node_parts = partition::hash_partition(&g, k);
//! let cut = comm::edge_cut_volume(&g, &node_parts, k);
//! let path = comm::path_partition_volume(&s, k);
//! // MEGA's communicating pairs form a chain: k - 1.
//! assert_eq!(path.comm_pairs, k - 1);
//! assert!(path.comm_pairs <= cut.comm_pairs);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod partition;
pub mod scaling;

pub use comm::{edge_cut_volume, path_partition_volume, CommStats};
pub use partition::{bfs_partition, hash_partition, path_segments};
pub use scaling::{epoch_scaling, ClusterConfig, ScalingPoint};
