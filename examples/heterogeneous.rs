//! Heterogeneous multi-path preprocessing (the paper's §IV-B8 future-work
//! direction, HAN-style).
//!
//! Run with: `cargo run --example heterogeneous`
//!
//! Builds a two-type graph (think users/items), preprocesses one path per
//! node type plus a cross-type path, and shows that the union of schedules
//! covers every edge exactly once — the hierarchical-merge invariant.

use mega::core::{preprocess_hetero, HeteroGraph, MegaConfig};
use mega::graph::GraphBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small bipartite-flavored graph: nodes 0-4 are "users" (type 0) with
    // social edges, nodes 5-9 are "items" (type 1) with similarity edges,
    // and cross edges are interactions.
    let g = GraphBuilder::undirected(10)
        .edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0), // user-user ring
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9), // item-item chain
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9), // user-item interactions
            (0, 7),
            (2, 9), // extra interactions
        ])?
        .build()?;
    let types = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
    let h = HeteroGraph::new(g, types, 2)?;
    println!(
        "hetero graph: {} nodes, {} edges ({} intra-type, {} cross-type)",
        h.graph().node_count(),
        h.graph().edge_count(),
        h.intra_edge_count(),
        h.cross_edge_count()
    );

    let mp = preprocess_hetero(&h, &MegaConfig::default())?;
    println!("\nper-type paths:");
    for ts in &mp.per_type {
        let global: Vec<usize> = ts
            .schedule
            .gather_index()
            .iter()
            .map(|&l| ts.local_to_global[l])
            .collect();
        println!(
            "  type {}: path {:?} ({} band slots)",
            ts.node_type,
            global,
            ts.schedule.band().covered_edge_count()
        );
    }
    if let Some(cross) = &mp.cross {
        println!(
            "  cross: path {:?} ({} band slots)",
            cross.gather_index(),
            cross.band().covered_edge_count()
        );
    }
    println!(
        "\ncoverage: {} of {} edges owned by exactly one schedule — hierarchical \
         aggregation (intra first, cross second) sees each edge once.",
        mp.covered_edge_count(),
        h.graph().edge_count()
    );
    Ok(())
}
