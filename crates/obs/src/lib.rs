//! `mega-obs` — unified tracing and metrics for the MEGA reproduction.
//!
//! The paper's whole argument is a profiling argument: Figs. 4–6 attribute
//! DGL's slowdown to memory-stalled graph kernels and MEGA's win to banded,
//! sequential access. This crate gives the reproduction first-class
//! instrumentation of its own hot paths so that claim stays measurable:
//!
//! * **Spans** — RAII scoped timers ([`span`]) with thread-aware nesting.
//!   Each thread keeps its own span stack; a span's *path* is the
//!   `/`-joined chain of the enclosing spans on its thread (work fanned out
//!   to pool workers therefore roots at the worker, by design).
//! * **Counters and gauges** — monotonically accumulated `u64` counters
//!   ([`counter_add`]) and last-write-wins `f64` gauges ([`gauge_set`]).
//! * **Histograms** — fixed log-scale buckets with p50/p90/p99
//!   ([`record_value`] for deterministic quantities such as chunk sizes,
//!   [`record_time_ns`] for wall-clock samples).
//! * **Snapshot** — [`snapshot`] aggregates everything into a [`Snapshot`]
//!   whose [`Snapshot::to_json`] has a *deterministic* mode: counters,
//!   gauges, value-histograms, and span/timing **counts** only — bit-identical
//!   across identical runs — while wall-clock totals and percentiles are
//!   reserved for the full mode and the Chrome trace.
//! * **Chrome trace** — [`trace_json`] emits every completed span in the
//!   Chrome `chrome://tracing` / Perfetto JSON array format.
//! * **Reporting** — [`report`] provides the `--quiet`/`MEGA_LOG`-gated
//!   [`data!`]/[`info!`]/[`debug!`]/[`error!`] macros the CLI and benchmark
//!   binaries print through.
//!
//! # Cost model
//!
//! Everything is gated on one process-global [`AtomicBool`]: with
//! instrumentation disabled (the default) every entry point is a single
//! relaxed load and a branch — a few nanoseconds — so instrumented code can
//! stay instrumented. The enabled path takes a mutex on a global registry;
//! it is meant for profiling runs, not for the steady-state hot loop.
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod report;

pub use hist::Histogram;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// A completed span, as stored in the registry.
#[derive(Debug, Clone)]
struct SpanRecord {
    /// Full `/`-joined path, ending in this span's name.
    path: String,
    /// Small sequential id of the recording thread.
    tid: u64,
    /// Start offset from the process-wide epoch, in nanoseconds.
    start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    dur_ns: u64,
}

/// One sample of a counter track, as stored in the registry and emitted as
/// a Chrome-trace `ph: "C"` counter event.
#[derive(Debug, Clone)]
struct CounterSample {
    name: String,
    tid: u64,
    ts_ns: u64,
    value: f64,
}

/// Spans retained in the flight-recorder ring (most recent last).
const FLIGHT_CAPACITY: usize = 128;

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    values: BTreeMap<String, Histogram>,
    timings: BTreeMap<String, Histogram>,
    spans: Vec<SpanRecord>,
    /// Timestamped counter-track samples ([`trace_counter`]); trace-only —
    /// they carry wall-clock timestamps, so they never enter deterministic
    /// snapshots.
    counter_tracks: Vec<CounterSample>,
    /// Bounded ring of the most recent completed spans — the black box the
    /// NaN/Inf sentinel dumps when training aborts. Unlike `spans` (which
    /// grows for the whole run), this stays at [`FLIGHT_CAPACITY`] entries.
    flight: std::collections::VecDeque<SpanRecord>,
    /// Total enabled-path API calls — used by `benches/obs_overhead.rs` to
    /// bound the disabled-path overhead of an instrumented workload.
    api_calls: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

/// Turns instrumentation on or off, process-wide. Off by default.
pub fn set_enabled(on: bool) {
    epoch(); // Pin the trace epoch no later than the first enable.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently enabled. This is the few-nanosecond
/// check every entry point performs first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded metrics and spans (thread-local span stacks of
/// in-flight spans are untouched; such spans record into the new state).
pub fn reset() {
    let mut r = registry().lock().expect("obs registry poisoned");
    *r = Registry::default();
}

/// Adds `delta` to the named counter. No-op (one atomic load) when disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("obs registry poisoned");
    r.api_calls += 1;
    match r.counters.get_mut(name) {
        Some(c) => *c += delta,
        None => {
            r.counters.insert(name.to_string(), delta);
        }
    }
}

/// Sets the named gauge (last write wins). No-op when disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().expect("obs registry poisoned");
    r.api_calls += 1;
    r.gauges.insert(name.to_string(), value);
}

/// Records a timestamped sample on the named *counter track* — rendered by
/// [`trace_json`] as a Chrome-trace `ph: "C"` counter event, so quantities
/// like pool resident bytes or the gradient norm plot as their own lanes
/// next to the span events. Trace-only: samples carry wall-clock
/// timestamps and never appear in snapshots. No-op when disabled.
pub fn trace_counter(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let ts_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let tid = thread_id();
    let mut r = registry().lock().expect("obs registry poisoned");
    r.api_calls += 1;
    r.counter_tracks.push(CounterSample {
        name: name.to_string(),
        tid,
        ts_ns,
        value,
    });
}

fn record_hist(timing: bool, name: &str, v: u64) {
    let mut r = registry().lock().expect("obs registry poisoned");
    r.api_calls += 1;
    let map = if timing {
        &mut r.timings
    } else {
        &mut r.values
    };
    match map.get_mut(name) {
        Some(h) => h.record(v),
        None => {
            let mut h = Histogram::new();
            h.record(v);
            map.insert(name.to_string(), h);
        }
    }
}

/// Records a *deterministic* sample (a size, a count, a plan statistic) into
/// the named value-histogram. Included in full detail in deterministic
/// snapshots. No-op when disabled.
pub fn record_value(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    record_hist(false, name, v);
}

/// Records a wall-clock sample in nanoseconds into the named
/// timing-histogram. Deterministic snapshots keep only its sample count.
/// No-op when disabled.
pub fn record_time_ns(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    record_hist(true, name, ns);
}

/// [`record_time_ns`] for a [`Duration`].
pub fn record_duration(name: &str, d: Duration) {
    if !enabled() {
        return;
    }
    record_hist(true, name, d.as_nanos().min(u64::MAX as u128) as u64);
}

/// Records a *scheduling-dependent* sample (e.g. items processed per pool
/// worker) into the volatile histogram family: like wall-clock timings, only
/// its sample count appears in deterministic snapshots. No-op when disabled.
pub fn record_volatile(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    record_hist(true, name, v);
}

/// A wall-clock stopwatch that measures regardless of the global enable
/// flag.
///
/// This is the sanctioned way for the rest of the workspace to take host
/// timings that must always be captured (training-phase breakdowns,
/// preprocessing cost): the `obs-routing` lint (`mega-lint`) forbids raw
/// `Instant::now` outside this crate and the benchmark binaries, so
/// timing flows through one auditable choke point.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in (fractional) seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// An optional timer that is live only while instrumentation is enabled.
///
/// [`timer`] costs one atomic load when disabled (no clock read at all);
/// enabled, [`Timer::observe`] records the elapsed wall-clock time into the
/// named timing-histogram, exactly like [`record_duration`]. Instrumented
/// hot paths use this instead of hand-rolling
/// `enabled().then(Instant::now)` — which the `obs-routing` lint would
/// reject outside this crate.
#[must_use = "a timer measures until observed; an unused timer records nothing"]
#[derive(Debug)]
pub struct Timer {
    start: Option<Instant>,
}

/// Starts a [`Timer`]: live when instrumentation is enabled, inert (a
/// single atomic load, no clock read) when disabled.
pub fn timer() -> Timer {
    Timer {
        start: enabled().then(Instant::now),
    }
}

impl Timer {
    /// Records the elapsed time into the named timing-histogram, when the
    /// timer is live. Consumes the timer; the disabled path does nothing.
    pub fn observe(self, name: &str) {
        if let Some(t0) = self.start {
            record_duration(name, t0.elapsed());
        }
    }
}

/// An in-flight RAII span; the measured interval ends when it drops.
///
/// Spans must be dropped in LIFO order per thread (the natural order of
/// stack-scoped guards); interleaved drops would misattribute nesting.
#[must_use = "a span measures until dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    /// `/`-joined names of the enclosing spans on this thread at start.
    prefix: String,
    start: Instant,
    start_ns: u64,
}

/// Opens a named span. With instrumentation disabled this is a single atomic
/// load; enabled, it notes the start time and this thread's span stack.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let prefix = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let prefix = s.join("/");
        s.push(name);
        prefix
    });
    let start = Instant::now();
    let start_ns = start
        .duration_since(epoch())
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    SpanGuard {
        inner: Some(SpanInner {
            name,
            prefix,
            start,
            start_ns,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(
                s.last().copied(),
                Some(inner.name),
                "span drops must be LIFO"
            );
            s.pop();
        });
        let path = if inner.prefix.is_empty() {
            inner.name.to_string()
        } else {
            format!("{}/{}", inner.prefix, inner.name)
        };
        let record = SpanRecord {
            path,
            tid: thread_id(),
            start_ns: inner.start_ns,
            dur_ns,
        };
        let mut r = registry().lock().expect("obs registry poisoned");
        r.api_calls += 2; // open + close both touch the enabled check
        if r.flight.len() == FLIGHT_CAPACITY {
            r.flight.pop_front();
        }
        r.flight.push_back(record.clone());
        r.spans.push(record);
    }
}

/// Aggregated histogram statistics in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Approximate percentiles (bucket upper bounds).
    pub p50: u64,
    /// The 90th percentile.
    pub p90: u64,
    /// The 99th percentile.
    pub p99: u64,
}

impl HistSummary {
    fn of(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            sum: h.sum(),
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
        }
    }
}

/// Aggregated statistics for one span path in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAgg {
    /// Full `/`-joined path.
    pub path: String,
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub total_ns: u64,
}

/// A point-in-time aggregation of everything recorded so far.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Deterministic value-histograms, sorted by name.
    pub values: Vec<(String, HistSummary)>,
    /// Wall-clock timing-histograms, sorted by name.
    pub timings: Vec<(String, HistSummary)>,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanAgg>,
    /// Total enabled-path API calls that produced this snapshot.
    pub api_calls: u64,
}

/// Takes a snapshot of the current registry contents.
pub fn snapshot() -> Snapshot {
    let r = registry().lock().expect("obs registry poisoned");
    let mut span_map: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in &r.spans {
        let e = span_map.entry(&s.path).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.dur_ns;
    }
    Snapshot {
        counters: r.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        gauges: r.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        values: r
            .values
            .iter()
            .map(|(k, h)| (k.clone(), HistSummary::of(h)))
            .collect(),
        timings: r
            .timings
            .iter()
            .map(|(k, h)| (k.clone(), HistSummary::of(h)))
            .collect(),
        spans: span_map
            .into_iter()
            .map(|(path, (count, total_ns))| SpanAgg {
                path: path.to_string(),
                count,
                total_ns,
            })
            .collect(),
        api_calls: r.api_calls,
    }
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

impl Snapshot {
    /// Serializes the snapshot as pretty JSON.
    ///
    /// With `deterministic == true` the output is **bit-identical across
    /// identical runs**: counters, gauges, and value-histograms appear in
    /// full, while timing-histograms and spans are reduced to their sample
    /// counts (wall-clock totals and percentiles — the nondeterministic
    /// part — are omitted; they live in the full mode and the Chrome trace).
    pub fn to_json(&self, deterministic: bool) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n  \"deterministic\": ");
        o.push_str(if deterministic { "true" } else { "false" });
        o.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json_escape(k, &mut o);
            let _ = write!(o, ": {v}");
        }
        o.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json_escape(k, &mut o);
            o.push_str(": ");
            json_f64(*v, &mut o);
        }
        o.push_str("\n  },\n  \"values\": {");
        for (i, (k, h)) in self.values.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json_escape(k, &mut o);
            let _ = write!(
                o,
                ": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count, h.sum, h.p50, h.p90, h.p99
            );
        }
        o.push_str("\n  },\n  \"timings\": {");
        for (i, (k, h)) in self.timings.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json_escape(k, &mut o);
            if deterministic {
                let _ = write!(o, ": {{\"count\": {}}}", h.count);
            } else {
                let _ = write!(
                    o,
                    ": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
                    h.count, h.sum, h.p50, h.p90, h.p99
                );
            }
        }
        o.push_str("\n  },\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json_escape(&s.path, &mut o);
            if deterministic {
                let _ = write!(o, ": {{\"count\": {}}}", s.count);
            } else {
                let _ = write!(
                    o,
                    ": {{\"count\": {}, \"total_ns\": {}}}",
                    s.count, s.total_ns
                );
            }
        }
        o.push_str("\n  }\n}\n");
        o
    }

    /// Renders the span aggregates as an indented tree with counts, total
    /// milliseconds, and the share of all root-span time — the reproduction's
    /// answer to the paper's Fig. 5 time-share plot.
    pub fn render_span_tree(&self) -> String {
        let root_total: u64 = self
            .spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .map(|s| s.total_ns)
            .sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<42} {:>8} {:>12} {:>7}",
            "span", "count", "total(ms)", "share"
        );
        let _ = writeln!(out, "{}", "-".repeat(73));
        for s in &self.spans {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let label = format!("{}{}", "  ".repeat(depth), name);
            let share = if root_total == 0 {
                0.0
            } else {
                s.total_ns as f64 / root_total as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:<42} {:>8} {:>12.3} {:>6.1}%",
                label,
                s.count,
                s.total_ns as f64 / 1e6,
                share
            );
        }
        out
    }
}

/// Serializes every completed span in Chrome trace-event JSON (an array of
/// `"ph": "X"` complete events plus `"ph": "C"` counter events from
/// [`trace_counter`], loadable in `chrome://tracing` / Perfetto).
/// Timestamps are microseconds since the process-wide trace epoch.
pub fn trace_json() -> String {
    let r = registry().lock().expect("obs registry poisoned");
    let mut o = String::with_capacity(64 + (r.spans.len() + r.counter_tracks.len()) * 96);
    o.push_str("[\n");
    let mut first = true;
    for s in &r.spans {
        if !first {
            o.push_str(",\n");
        }
        first = false;
        let name = s.path.rsplit('/').next().unwrap_or(&s.path);
        o.push_str("  {\"name\": ");
        json_escape(name, &mut o);
        o.push_str(", \"cat\": \"mega\", \"ph\": \"X\", \"pid\": 1, ");
        let _ = write!(
            o,
            "\"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"path\": ",
            s.tid,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3
        );
        json_escape(&s.path, &mut o);
        o.push_str("}}");
    }
    for c in &r.counter_tracks {
        if !first {
            o.push_str(",\n");
        }
        first = false;
        o.push_str("  {\"name\": ");
        json_escape(&c.name, &mut o);
        o.push_str(", \"cat\": \"mega\", \"ph\": \"C\", \"pid\": 1, ");
        let _ = write!(
            o,
            "\"tid\": {}, \"ts\": {:.3}, \"args\": {{\"value\": ",
            c.tid,
            c.ts_ns as f64 / 1e3
        );
        json_f64(c.value, &mut o);
        o.push_str("}}");
    }
    o.push_str("\n]\n");
    o
}

/// One entry of the flight-recorder ring (a recently completed span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Full `/`-joined span path.
    pub path: String,
    /// Sequential id of the recording thread.
    pub tid: u64,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

/// The flight recorder: the most recent completed spans (oldest first,
/// at most [`FLIGHT_CAPACITY`](self) entries). This is the bounded black
/// box the training NaN/Inf sentinel dumps on abort — cheap enough to
/// keep populated for a whole run, detailed enough to show what the
/// process was doing when a non-finite value appeared.
pub fn flight_recorder() -> Vec<FlightEvent> {
    let r = registry().lock().expect("obs registry poisoned");
    r.flight
        .iter()
        .map(|s| FlightEvent {
            path: s.path.clone(),
            tid: s.tid,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
        })
        .collect()
}

/// Renders the flight recorder as one line per event (oldest first), for
/// inclusion in diagnostic dumps. Empty when instrumentation never ran.
pub fn render_flight_recorder() -> String {
    let events = flight_recorder();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder ({} events, most recent last):",
        events.len()
    );
    for e in &events {
        let _ = writeln!(
            out,
            "  t={:>12.3}us +{:>10.3}us tid={} {}",
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.tid,
            e.path
        );
    }
    out
}

/// The distinct thread ids that appear in the recorded spans — useful for
/// asserting that work really ran on worker threads.
pub fn trace_tids() -> std::collections::BTreeSet<u64> {
    let r = registry().lock().expect("obs registry poisoned");
    r.spans.iter().map(|s| s.tid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Serializes tests that touch the process-global registry/flag.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        counter_add("x", 5);
        gauge_set("g", 1.0);
        record_value("v", 10);
        record_time_ns("t", 10);
        let s = span("nothing");
        drop(s);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.values.is_empty());
        assert!(snap.timings.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(snap.api_calls, 0);
    }

    #[test]
    fn deterministic_snapshot_is_stable_across_runs() {
        let _g = guard();
        // Two "runs" with identical logical work but different wall-clock
        // timings and volatile samples: the deterministic JSON must match
        // byte for byte; the full JSON generally differs.
        let run = |time_ns: u64, volatile: u64| {
            reset();
            set_enabled(true);
            counter_add("det.counter", 7);
            gauge_set("det.gauge", 0.25);
            record_value("det.value", 1024);
            record_time_ns("det.timing", time_ns);
            record_volatile("det.volatile", volatile);
            {
                let _outer = span("det_outer");
                std::thread::sleep(std::time::Duration::from_micros(volatile));
                let _inner = span("det_inner");
            }
            set_enabled(false);
            let snap = snapshot();
            (snap.to_json(true), snap.to_json(false))
        };
        let (det_a, full_a) = run(1_000, 1);
        let (det_b, full_b) = run(999_999, 17);
        assert_eq!(det_a, det_b, "deterministic snapshots diverged");
        assert_ne!(full_a, full_b, "full snapshots should carry wall clock");
        // And the deterministic form still names every metric family.
        for key in [
            "det.counter",
            "det.gauge",
            "det.value",
            "det.timing",
            "det_outer/det_inner",
        ] {
            assert!(
                det_a.contains(key),
                "missing {key} in deterministic snapshot"
            );
        }
        reset();
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let _g = guard();
        set_enabled(true);
        reset();
        counter_add("a.b", 2);
        counter_add("a.b", 3);
        gauge_set("g", 0.5);
        gauge_set("g", 0.75);
        for v in [1u64, 2, 4, 8] {
            record_value("sizes", v);
        }
        record_time_ns("lat", 1000);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counters, vec![("a.b".to_string(), 5)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 0.75)]);
        assert_eq!(snap.values[0].1.count, 4);
        assert_eq!(snap.values[0].1.sum, 15);
        assert_eq!(snap.timings[0].1.count, 1);
        assert!(snap.api_calls >= 8);
        reset();
    }

    #[test]
    fn span_nesting_builds_paths() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        set_enabled(false);
        let snap = snapshot();
        let paths: Vec<(&str, u64)> = snap
            .spans
            .iter()
            .map(|s| (s.path.as_str(), s.count))
            .collect();
        assert_eq!(paths, vec![("outer", 1), ("outer/inner", 2)]);
        reset();
    }

    #[test]
    fn json_modes_and_escaping() {
        let _g = guard();
        set_enabled(true);
        reset();
        counter_add("weird\"name", 1);
        record_time_ns("t", 5);
        {
            let _s = span("root");
        }
        set_enabled(false);
        let snap = snapshot();
        let det = snap.to_json(true);
        assert!(det.contains("\\\"")); // escaped quote
        assert!(
            !det.contains("total_ns"),
            "deterministic mode must omit wall-clock"
        );
        assert!(!det.contains("sum_ns"));
        let full = snap.to_json(false);
        assert!(full.contains("total_ns"));
        assert!(full.contains("sum_ns"));
        reset();
    }

    #[test]
    fn trace_contains_complete_events() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _a = span("alpha");
            let _b = span("beta");
        }
        set_enabled(false);
        let t = trace_json();
        assert!(t.trim_start().starts_with('['));
        assert!(t.trim_end().ends_with(']'));
        assert!(t.contains("\"ph\": \"X\""));
        assert!(t.contains("\"alpha\""));
        assert!(t.contains("alpha/beta"));
        reset();
    }

    #[test]
    fn counter_tracks_emit_chrome_counter_events() {
        let _g = guard();
        set_enabled(true);
        reset();
        trace_counter("pool.resident", 4096.0);
        trace_counter("pool.resident", 8192.0);
        {
            let _s = span("work");
        }
        set_enabled(false);
        trace_counter("pool.resident", 1.0); // disabled: dropped
        let t = trace_json();
        assert_eq!(t.matches("\"ph\": \"C\"").count(), 2);
        assert_eq!(t.matches("\"ph\": \"X\"").count(), 1);
        assert!(t.contains("\"value\": 8192.0"));
        // Counter samples are trace-only: snapshots ignore them.
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        reset();
    }

    #[test]
    fn flight_recorder_keeps_a_bounded_recent_window() {
        let _g = guard();
        set_enabled(true);
        reset();
        for _ in 0..FLIGHT_CAPACITY + 22 {
            let _s = span("tick");
        }
        {
            let _s = span("last_thing");
        }
        set_enabled(false);
        let events = flight_recorder();
        assert_eq!(events.len(), FLIGHT_CAPACITY, "ring must stay bounded");
        assert_eq!(
            events.last().map(|e| e.path.as_str()),
            Some("last_thing"),
            "most recent span must be retained"
        );
        let rendered = render_flight_recorder();
        assert!(rendered.contains("last_thing"));
        assert!(rendered.contains("128 events"));
        reset();
    }

    #[test]
    fn span_tree_renders_indented() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _a = span("train");
            {
                let _b = span("forward");
            }
        }
        set_enabled(false);
        let tree = snapshot().render_span_tree();
        assert!(tree.contains("train"));
        assert!(tree.contains("  forward"));
        reset();
    }
}
