//! Peephole fusion pass of the tape planner.
//!
//! When a [`Tape`](crate::Tape) is in planning mode, op methods record
//! nodes without executing them; at a flush boundary the pending span is
//! handed to [`fuse`], which rewrites recognized op chains into single
//! fused nodes before anything executes:
//!
//! * `matmul` → `add_row` → `relu` becomes one `linear_relu` node (the
//!   `leaky_relu` tail becomes a `linear_leaky_relu` node),
//! * `scale` → `add` becomes one `axpy` node,
//! * `layer_norm`/`batch_norm` → `relu`/`leaky_relu` becomes one fused
//!   norm-activation node.
//!
//! A chain only fuses when every interior node is pending in the same
//! flush window and consumed exactly once — by the next link. Interior
//! nodes of a fused chain are *elided*: they never materialize, reading
//! them later panics, and the backward pass never visits them (their
//! gradients stay zero because no surviving op lists them as an input).
//! Fusion preserves bit-exact values and gradients: every fused kernel
//! reproduces the unfused arithmetic element for element (enforced by the
//! planner property tests).

use crate::tape::{Node, Op, Var};
use mega_exec::Unary;
use std::collections::BTreeSet;

/// What one fusion pass did to a pending window.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FusionStats {
    /// Number of chain rewrites performed.
    pub(crate) rewrites: usize,
    /// Number of interior nodes elided by those rewrites.
    pub(crate) elided: usize,
}

/// Runs the peephole pass over the pending window, rewriting fusable
/// chains in place. Returns the set of elided (never-to-materialize) node
/// indices and the pass statistics. `roots` are nodes a flush consumer is
/// about to read; they count as consumers so they are never elided.
pub(crate) fn fuse(
    nodes: &mut [Node],
    pending: &[usize],
    roots: &[usize],
) -> (BTreeSet<usize>, FusionStats) {
    let mut elided: BTreeSet<usize> = BTreeSet::new();
    let mut stats = FusionStats::default();
    if pending.is_empty() {
        return (elided, stats);
    }
    let first = pending[0];
    let mut consumers = vec![0usize; nodes.len()];
    for &idx in pending {
        nodes[idx].op.for_each_input(|v| consumers[v.0] += 1);
    }
    for &r in roots {
        consumers[r] += 1;
    }

    for &idx in pending {
        if elided.contains(&idx) {
            continue;
        }
        let fused = match nodes[idx].op {
            Op::Relu(a) => fuse_activation(nodes, &consumers, &elided, first, a, None),
            Op::LeakyRelu(a, slope) if slope > 0.0 => {
                fuse_activation(nodes, &consumers, &elided, first, a, Some(slope))
            }
            Op::Add(p, q) => fuse_axpy(nodes, &consumers, &elided, first, p, q),
            _ => None,
        };
        if let Some((op, dead)) = fused {
            if mega_obs::enabled() {
                mega_obs::counter_add("tensor.plan.fused", 1);
                let mut name = String::with_capacity(40);
                name.push_str("tensor.plan.fused.");
                name.push_str(op.kind_name());
                mega_obs::counter_add(&name, 1);
            }
            stats.rewrites += 1;
            stats.elided += dead.len();
            nodes[idx].op = op;
            elided.extend(dead);
        }
    }
    (elided, stats)
}

/// Whether node `v` is an interior link that can fold into its sole
/// consumer: pending in the current window, not already claimed by an
/// earlier rewrite, and consumed exactly once.
fn fusable(
    nodes: &[Node],
    consumers: &[usize],
    elided: &BTreeSet<usize>,
    first: usize,
    v: usize,
) -> bool {
    v >= first && nodes[v].value.is_none() && !elided.contains(&v) && consumers[v] == 1
}

fn act_of(slope: Option<f32>) -> Unary {
    match slope {
        None => Unary::Relu,
        Some(s) => Unary::LeakyRelu(s),
    }
}

/// Fuses `relu`/`leaky_relu` applied to a pending matmul-plus-bias or
/// normalization chain. `slope` is `None` for plain relu. Leaky-relu
/// tails fuse only for positive slopes (checked by the caller): the fused
/// backward pass masks by the *output* sign, which matches the
/// pre-activation sign exactly when the activation preserves it.
fn fuse_activation(
    nodes: &[Node],
    consumers: &[usize],
    elided: &BTreeSet<usize>,
    first: usize,
    a: Var,
    slope: Option<f32>,
) -> Option<(Op, Vec<usize>)> {
    if !fusable(nodes, consumers, elided, first, a.0) {
        return None;
    }
    match nodes[a.0].op {
        Op::AddRow(mm, bias) => {
            if !fusable(nodes, consumers, elided, first, mm.0) {
                return None;
            }
            if let &Op::MatMul(x, w) = &nodes[mm.0].op {
                let op = match slope {
                    None => Op::LinearRelu(x, w, bias),
                    Some(s) => Op::LinearAct(x, w, bias, s),
                };
                Some((op, vec![a.0, mm.0]))
            } else {
                None
            }
        }
        Op::LayerNorm(x, gamma, beta, eps) => Some((
            Op::LayerNormAct(x, gamma, beta, eps, act_of(slope)),
            vec![a.0],
        )),
        Op::BatchNorm(x, gamma, beta, eps) => Some((
            Op::BatchNormAct(x, gamma, beta, eps, act_of(slope)),
            vec![a.0],
        )),
        _ => None,
    }
}

/// Fuses a pending `scale` into an `add` that consumes it, as one `axpy`
/// (`k·a + b`) node. The left operand is preferred; fusing a
/// right-operand scale relies on f32 addition being commutative, which
/// holds bitwise for all non-NaN values.
fn fuse_axpy(
    nodes: &[Node],
    consumers: &[usize],
    elided: &BTreeSet<usize>,
    first: usize,
    p: Var,
    q: Var,
) -> Option<(Op, Vec<usize>)> {
    if fusable(nodes, consumers, elided, first, p.0) {
        if let &Op::Scale(a, k) = &nodes[p.0].op {
            return Some((Op::Axpy(a, q, k), vec![p.0]));
        }
    }
    if p != q && fusable(nodes, consumers, elided, first, q.0) {
        if let &Op::Scale(b, k) = &nodes[q.0].op {
            return Some((Op::Axpy(b, p, k), vec![q.0]));
        }
    }
    None
}
