//! Bit-exact backend and planner equivalence check.
//!
//! Trains the same fixed-seed model under a matrix of execution backends
//! and planner settings and prints the loss trajectory as raw `f64` bit
//! patterns. `--backend a,b` selects the backends (default
//! `reference,reference`); `--plan on,off` additionally crosses the tape
//! planner (fusion + pack caching) against the unfused eager oracle. Every
//! configuration is compared against the first; the process exits non-zero
//! when any trajectory differs, so CI can assert reference ≡ blocked and
//! planned ≡ unplanned directly.

use mega_datasets::{zinc, DatasetSpec};
use mega_exec::{backend_by_name, Backend};
use mega_gnn::{EngineChoice, GnnConfig, ModelKind, Trainer, TrainingHistory};
use std::process::ExitCode;
use std::sync::Arc;

fn run(engine: EngineChoice, backend: Arc<dyn Backend>, plan: bool) -> TrainingHistory {
    let ds = zinc(&DatasetSpec {
        train: 64,
        val: 16,
        test: 16,
        seed: 7,
    });
    let cfg = GnnConfig::new(ModelKind::GatedGcn, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(32)
        .with_layers(2)
        .with_heads(4);
    Trainer::new(engine)
        .with_epochs(3)
        .with_batch_size(8)
        .with_backend(backend)
        .with_plan(plan)
        .run(&ds, cfg)
}

fn print_history(label: &str, hist: &TrainingHistory) {
    for r in &hist.records {
        println!(
            "{label} epoch {} train {:016x} val {:016x}",
            r.epoch,
            r.train_loss.to_bits(),
            r.val_loss.to_bits()
        );
    }
    println!("{label} test {:016x}", hist.test_loss.to_bits());
}

/// Loss trajectory as exact bit patterns, for comparison across backends.
fn bits(hist: &TrainingHistory) -> Vec<u64> {
    let mut v: Vec<u64> = hist
        .records
        .iter()
        .flat_map(|r| [r.train_loss.to_bits(), r.val_loss.to_bits()])
        .collect();
    v.push(hist.test_loss.to_bits());
    v
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut backends = "reference,reference".to_string();
    let mut plans = "on".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--backend" => backends = args.next().unwrap_or_default(),
            "--plan" => plans = args.next().unwrap_or_default(),
            _ => {}
        }
    }
    let names: Vec<&str> = backends.split(',').collect();
    let mut plan_flags = Vec::new();
    for p in plans.split(',') {
        match p {
            "on" => plan_flags.push(true),
            "off" => plan_flags.push(false),
            other => {
                eprintln!("unknown --plan value `{other}` (expected on or off)");
                return ExitCode::FAILURE;
            }
        }
    }
    // The configuration matrix: every backend crossed with every planner
    // setting, each trained under both engines.
    let mut configs: Vec<(String, Arc<dyn Backend>, bool)> = Vec::new();
    for name in &names {
        let Some(backend) = backend_by_name(name) else {
            eprintln!("unknown backend `{name}` (expected reference, blocked, or simd)");
            return ExitCode::FAILURE;
        };
        for &plan in &plan_flags {
            let label = format!("{name}[plan={}]", if plan { "on" } else { "off" });
            configs.push((label, backend.clone(), plan));
        }
    }
    let mut trajectories: Vec<(String, Vec<u64>)> = Vec::new();
    for (label, backend, plan) in &configs {
        for engine in [EngineChoice::Baseline, EngineChoice::Mega] {
            let hist = run(engine, backend.clone(), *plan);
            let full = format!("{label}/{}", engine.label());
            print_history(&full, &hist);
            trajectories.push((full, bits(&hist)));
        }
    }
    // Every configuration must match the first, engine by engine.
    let per_config = 2; // Baseline + Mega
    let mut ok = true;
    for c in 1..configs.len() {
        for e in 0..per_config {
            let (ref la, ref a) = trajectories[e];
            let (ref lb, ref b) = trajectories[c * per_config + e];
            if a != b {
                eprintln!("MISMATCH: {lb} differs from {la}");
                ok = false;
            } else {
                println!("MATCH: {lb} == {la} (bit-exact)");
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
