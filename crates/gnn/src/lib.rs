//! GNN models and execution engines for the MEGA reproduction.
//!
//! Two models from the paper's evaluation (§III):
//!
//! * **GatedGCN** (Bresson & Laurent) — gated edge aggregation with batch
//!   norm and residual connections; 5·d² parameters per layer.
//! * **Graph Transformer** (Dwivedi & Bresson) — multi-head attention with
//!   edge features, layer norm and FFNs; 14·d² parameters per layer.
//!
//! Each model runs under either execution engine:
//!
//! * [`batch::EngineIndices`] built **baseline-style** routes messages along
//!   the directed adjacency slots (the DGL pattern: index-driven
//!   gather/scatter).
//! * Built **MEGA-style** from an [`mega_core::AttentionSchedule`], messages
//!   ride the band slots of the path representation. Attention softmax and
//!   aggregation remain keyed by *node*, so with full edge coverage the MEGA
//!   engine computes *numerically identical* layer outputs — the property
//!   behind the paper's "comparable accuracy" claim (verified by this
//!   crate's tests).
//!
//! [`train::Trainer`] runs epochs over a dataset, tracks loss and task
//! metric, and (via [`cost`]) stamps every epoch with the simulated GPU
//! wall-clock from `mega-gpu-sim`, which is how the convergence-vs-time
//! figures (Figs. 11–15) are regenerated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod cost;
pub mod layers;
pub mod metrics;
pub mod model;
pub mod nn;
pub mod parallel;
pub mod train;

pub use batch::{Batch, EngineIndices};
pub use config::{EngineChoice, GnnConfig, ModelKind};
pub use model::Gnn;
pub use parallel::{preprocess_samples, BandScheduler};
pub use train::{EpochRecord, PhaseSeconds, Trainer, TrainingHistory};
