//! The objective graph traversal (paper Algorithm 1, Eq. 2).
//!
//! The traversal agent starts at a chosen vertex and repeatedly appends a next
//! node to the path `P`:
//!
//! 1. If the current node still has *uncovered-edge neighbors* (the paper's
//!    `N(curr)`, maintained exactly like the pseudocode's neighbors dict with
//!    `N(curr).remove(pre)` as edges are consumed), pick among them.
//! 2. Otherwise pop the stack of previously visited nodes that still have
//!    uncovered-edge neighbors — a *revisit*.
//! 3. Otherwise jump to an unvisited node (or, when all nodes are visited but
//!    the coverage target θ is not yet met, to any node with uncovered
//!    edges) — creating a *virtual edge* if the jump target is not adjacent
//!    to the path head.
//!
//! Within a candidate pool the default selection is Eq. 2: the candidate
//! maximizing `|N(v) ∩ P[-ω:]|`, the overlap between the candidate's original
//! neighborhood and the last ω path entries.
//!
//! An edge counts as *covered* as soon as its two endpoints appear within ω
//! positions of each other anywhere in the path, which is exactly the
//! condition for the edge to own a slot in the diagonal band (see
//! [`crate::band`]).

use crate::config::{CandidatePolicy, MegaConfig};
use crate::edge_drop::drop_edges;
use crate::error::MegaError;
use crate::window::resolve_window;
use mega_graph::Graph;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;
// mega-lint: allow(unordered-collection, reason = "(src,dst)->eid lookup only; neighbor iteration uses sorted open_nbrs")
use std::collections::HashMap;

/// The raw result of running Algorithm 1 on a graph.
#[derive(Debug, Clone)]
pub struct Traversal {
    /// The node id at each path position.
    pub path: Vec<usize>,
    /// `virtual_step[i]` is true when the step from `path[i-1]` to `path[i]`
    /// does not follow an original edge (`virtual_step[0]` is always false).
    pub virtual_step: Vec<bool>,
    /// The window ω the traversal was run with.
    pub window: usize,
    /// Number of working-graph edges covered by the band (endpoints within ω
    /// path positions of each other).
    pub covered_edges: usize,
    /// Edge count of the working (post-drop) graph.
    pub working_edges: usize,
    /// Number of node appearances beyond each node's first (revisits).
    pub revisits: usize,
    /// Number of virtual steps taken.
    pub virtual_edge_count: usize,
    /// Number of stack entries popped while searching for a revisit target
    /// (pool 2 of the walk loop; an observability statistic).
    pub stack_pops: usize,
    /// The working graph the traversal ran over (equals the input unless edge
    /// dropping was configured).
    pub working_graph: Graph,
}

impl Traversal {
    /// Fraction of working-graph edges covered by the band.
    pub fn coverage(&self) -> f64 {
        if self.working_edges == 0 {
            1.0
        } else {
            self.covered_edges as f64 / self.working_edges as f64
        }
    }

    /// Path length divided by node count: the memory-expansion factor the
    /// paper calls the justifiable tradeoff (§IV-B6).
    pub fn expansion_factor(&self) -> f64 {
        self.path.len() as f64 / self.working_graph.node_count() as f64
    }

    /// Revisit count per band window: the path chunked into consecutive
    /// windows of ω positions (the granularity at which the band mask sees
    /// it), each entry counting the node appearances in that chunk beyond a
    /// node's global first appearance. Uneven tails keep their own entry.
    ///
    /// This is the revisit *placement* signal hotness-driven tiering needs:
    /// a flat profile means revisits are an Eulerian-walk tax spread over
    /// the whole band, spikes mean specific band regions re-materialize the
    /// same nodes and are worth caching.
    pub fn band_window_revisits(&self) -> Vec<usize> {
        let w = self.window.max(1);
        let mut out = vec![0usize; self.path.len().div_ceil(w)];
        let mut seen = vec![false; self.working_graph.node_count()];
        for (i, &v) in self.path.iter().enumerate() {
            if seen[v] {
                out[i / w] += 1;
            } else {
                seen[v] = true;
            }
        }
        out
    }

    /// Number of path appearances per node id (0 for nodes the walk never
    /// reached — impossible for finished walks, which visit every node).
    /// Entries `> 1` are the re-materialized "hot" nodes.
    pub fn node_hotness(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.working_graph.node_count()];
        for &v in &self.path {
            out[v] += 1;
        }
        out
    }
}

struct State<'g> {
    g: &'g Graph,
    window: usize,
    policy: CandidatePolicy,
    rng: StdRng,
    /// Uncovered-edge neighbors per node (the pseudocode's `N` dict), kept
    /// sorted for deterministic argmax tie-breaking.
    open_nbrs: Vec<Vec<usize>>,
    /// Nodes with non-empty `open_nbrs`, ordered.
    open_nodes: BTreeSet<usize>,
    /// Edge id lookup for the working graph.
    // mega-lint: allow(unordered-collection, reason = "keyed lookup only; never iterated")
    edge_of: HashMap<(usize, usize), usize>,
    covered: Vec<bool>,
    covered_count: usize,
    visited: Vec<bool>,
    unvisited_count: usize,
    path: Vec<usize>,
    virtual_step: Vec<bool>,
    stack: Vec<usize>,
    revisits: usize,
    stack_pops: usize,
}

impl<'g> State<'g> {
    fn new(g: &'g Graph, window: usize, policy: CandidatePolicy, seed: u64) -> Self {
        let n = g.node_count();
        let mut open_nbrs: Vec<Vec<usize>> = Vec::with_capacity(n);
        for v in 0..n {
            open_nbrs.push(g.neighbors(v).to_vec());
        }
        let open_nodes: BTreeSet<usize> = (0..n).filter(|&v| !open_nbrs[v].is_empty()).collect();
        // mega-lint: allow(unordered-collection, reason = "keyed lookup only; never iterated")
        let mut edge_of = HashMap::with_capacity(g.edge_count());
        for (eid, (s, d)) in g.edges().enumerate() {
            edge_of.insert((s.min(d), s.max(d)), eid);
        }
        State {
            g,
            window,
            policy,
            rng: StdRng::seed_from_u64(seed),
            open_nbrs,
            open_nodes,
            edge_of,
            covered: vec![false; g.edge_count()],
            covered_count: 0,
            visited: vec![false; n],
            unvisited_count: n,
            path: Vec::with_capacity(n + 2 * g.edge_count()),
            virtual_step: Vec::with_capacity(n + 2 * g.edge_count()),
            stack: Vec::new(),
            revisits: 0,
            stack_pops: 0,
        }
    }

    /// Eq. 2: overlap between `v`'s original neighborhood and the last ω path
    /// entries.
    fn correlate(&self, v: usize) -> usize {
        let lo = self.path.len().saturating_sub(self.window);
        self.path[lo..]
            .iter()
            .filter(|&&p| p != v && self.g.contains_edge(p, v))
            .count()
    }

    /// Selects from a non-empty candidate pool according to the policy.
    fn select(&mut self, pool: &[usize]) -> usize {
        debug_assert!(!pool.is_empty());
        match self.policy {
            CandidatePolicy::CorrelateArgmax => {
                let mut best = pool[0];
                let mut best_score = self.correlate(best);
                for &v in &pool[1..] {
                    let s = self.correlate(v);
                    if s > best_score || (s == best_score && v < best) {
                        best = v;
                        best_score = s;
                    }
                }
                best
            }
            CandidatePolicy::FirstCandidate => *pool.iter().min().expect("non-empty pool"),
            CandidatePolicy::Random => pool[self.rng.gen_range(0..pool.len())],
        }
    }

    fn remove_open(&mut self, a: usize, b: usize) {
        if let Ok(i) = self.open_nbrs[a].binary_search(&b) {
            self.open_nbrs[a].remove(i);
            if self.open_nbrs[a].is_empty() {
                self.open_nodes.remove(&a);
            }
        }
    }

    /// Appends `v` to the path, marking the step virtual when it does not ride
    /// an original edge, and covering every uncovered edge from `v` to the ω
    /// previous path entries.
    fn append(&mut self, v: usize) {
        let is_virtual = match self.path.last() {
            Some(&prev) => prev == v || !self.g.contains_edge(prev, v),
            None => false,
        };
        if self.visited[v] {
            self.revisits += 1;
        } else {
            self.visited[v] = true;
            self.unvisited_count -= 1;
        }
        self.path.push(v);
        self.virtual_step.push(is_virtual);
        let i = self.path.len() - 1;
        let lo = i.saturating_sub(self.window);
        for j in lo..i {
            let u = self.path[j];
            if u == v {
                continue;
            }
            if let Some(&eid) = self.edge_of.get(&(u.min(v), u.max(v))) {
                if !self.covered[eid] {
                    self.covered[eid] = true;
                    self.covered_count += 1;
                    self.remove_open(u, v);
                    self.remove_open(v, u);
                }
            }
        }
        if !self.open_nbrs[v].is_empty() {
            self.stack.push(v);
        }
    }

    /// Pops the stack until a node with uncovered-edge neighbors surfaces.
    fn pop_open(&mut self) -> Option<usize> {
        while let Some(v) = self.stack.pop() {
            self.stack_pops += 1;
            if !self.open_nbrs[v].is_empty() {
                return Some(v);
            }
        }
        None
    }
}

/// Picks the starting vertex: the smallest-id odd-degree node if any (an
/// Eulerian path, when one exists, must start there), otherwise the
/// smallest-id node with non-zero degree, otherwise node 0.
fn start_node(g: &Graph) -> usize {
    (0..g.node_count())
        .find(|&v| g.degree(v) % 2 == 1)
        .or_else(|| (0..g.node_count()).find(|&v| g.degree(v) > 0))
        .unwrap_or(0)
}

/// Runs Algorithm 1 over `g` under `config`.
///
/// # Errors
///
/// * [`MegaError::InvalidConfig`] if the configuration fails validation.
/// * [`MegaError::CoverageUnreachable`] if the safety cap on path length is
///   hit before the coverage target (cannot happen with the shipped policies
///   and a valid θ ≤ 1).
pub fn traverse(g: &Graph, config: &MegaConfig) -> Result<Traversal, MegaError> {
    let _span = mega_obs::span("traverse");
    config.validate()?;
    let working = if config.edge_drop > 0.0 {
        drop_edges(g, config.edge_drop, config.seed)?
    } else {
        g.clone()
    };
    let out = traverse_working(working, config)?;
    emit_traversal_obs(&out);
    Ok(out)
}

/// Runs the walk over an already-prepared working graph (post edge-drop).
fn traverse_working(working: Graph, config: &MegaConfig) -> Result<Traversal, MegaError> {
    let window = resolve_window(&working, config.window);
    let m = working.edge_count();
    let mut st = State::new(&working, window, config.policy, config.seed);
    st.append(start_node(&working));
    complete_walk(&mut st, config)?;
    let out = st.into_output();
    finish(out, window, m, working)
}

/// The main loop of Algorithm 1: extends the walk until every node is
/// visited and the coverage target is met. Also used to finish a stitched
/// multi-agent path (see [`traverse_parallel`]), where it covers whatever
/// the independent agents left open — in particular edges crossing
/// partition cuts.
fn complete_walk(st: &mut State<'_>, config: &MegaConfig) -> Result<(), MegaError> {
    let n = st.g.node_count();
    let m = st.g.edge_count();
    let needed = (config.coverage * m as f64).ceil() as usize;
    let cap = config.max_path_factor * (n + 2 * m + 1);
    while st.unvisited_count > 0 || st.covered_count < needed {
        if st.path.len() >= cap {
            return Err(MegaError::CoverageUnreachable {
                requested: config.coverage,
                achieved: st.covered_count as f64 / m.max(1) as f64,
            });
        }
        let curr = *st.path.last().expect("path starts non-empty");
        let next = if !st.open_nbrs[curr].is_empty() {
            // Pool 1: neighbors over uncovered edges — extend the walk.
            let pool = st.open_nbrs[curr].clone();
            st.select(&pool)
        } else if let Some(v) = st.pop_open() {
            // Pool 2: revisit a node that still has open edges.
            v
        } else if st.unvisited_count > 0 {
            // Pool 3: jump to an unvisited node.
            let pool: Vec<usize> = (0..n).filter(|&v| !st.visited[v]).collect();
            st.select(&pool)
        } else {
            // Coverage not met but stack is empty: jump to any open node.
            // (Reachable when a far region's edges were only partly covered.)
            let pool: Vec<usize> = st.open_nodes.iter().copied().collect();
            if pool.is_empty() {
                // Every edge is covered; needed > m is impossible for θ ≤ 1.
                break;
            }
            st.select(&pool)
        };
        st.append(next);
    }
    Ok(())
}

/// The owned results of a finished walk, extracted so the borrowed working
/// graph can be moved into the returned [`Traversal`].
struct WalkOutput {
    path: Vec<usize>,
    virtual_step: Vec<bool>,
    covered_count: usize,
    revisits: usize,
    stack_pops: usize,
}

impl State<'_> {
    fn into_output(self) -> WalkOutput {
        WalkOutput {
            path: self.path,
            virtual_step: self.virtual_step,
            covered_count: self.covered_count,
            revisits: self.revisits,
            stack_pops: self.stack_pops,
        }
    }
}

fn finish(
    out: WalkOutput,
    window: usize,
    working_edges: usize,
    working: Graph,
) -> Result<Traversal, MegaError> {
    let virtual_edge_count = out.virtual_step.iter().filter(|&&b| b).count();
    Ok(Traversal {
        path: out.path,
        virtual_step: out.virtual_step,
        window,
        covered_edges: out.covered_count,
        working_edges,
        revisits: out.revisits,
        virtual_edge_count,
        stack_pops: out.stack_pops,
        working_graph: working,
    })
}

/// Emits the aggregate walk statistics of a finished traversal into the
/// `core.traversal.*` metric namespace (no-op when obs is disabled).
fn emit_traversal_obs(t: &Traversal) {
    if !mega_obs::enabled() {
        return;
    }
    mega_obs::counter_add("core.traversal.walks", 1);
    mega_obs::counter_add("core.traversal.visits", t.path.len() as u64);
    mega_obs::counter_add("core.traversal.revisits", t.revisits as u64);
    mega_obs::counter_add("core.traversal.virtual_edges", t.virtual_edge_count as u64);
    mega_obs::counter_add("core.traversal.stack_pops", t.stack_pops as u64);
    mega_obs::counter_add("core.traversal.covered_edges", t.covered_edges as u64);
    mega_obs::record_value("core.traversal.path_len", t.path.len() as u64);
    mega_obs::record_value("core.traversal.window", t.window as u64);
    // Revisit placement per band window and node re-materialization counts:
    // the distributions hotness-driven tiering consumes. Value histograms
    // are deterministic, so these survive into byte-compared reports.
    for &r in &t.band_window_revisits() {
        mega_obs::record_value("core.traversal.band_window_revisits", r as u64);
    }
    let mut hot_nodes = 0u64;
    for &count in &t.node_hotness() {
        if count > 1 {
            hot_nodes += 1;
            mega_obs::record_value("core.traversal.node_hotness", count as u64);
        }
    }
    mega_obs::counter_add("core.traversal.hot_nodes", hot_nodes);
}

/// Multi-seed objective traversal: `agents` independent walks on contiguous
/// node partitions, stitched back into one path.
///
/// Each agent runs Algorithm 1 on the subgraph induced by its node range
/// (with an agent-specific seed), in parallel on `par`'s worker pool. The
/// local paths are then *replayed* in agent order into a single global walk:
/// junction steps that do not ride an original edge become virtual edges, and
/// every appended node re-scores coverage against the last ω global path
/// entries (Eq. 2's window-overlap condition), so edges coincidentally
/// brought in-band across a stitch count as covered. A final serial
/// completion pass covers what no agent could see — edges crossing partition
/// cuts — and tops coverage up to θ.
///
/// The result is a function of `(g, config, agents)` only: worker threads
/// compute independent pure walks collected in agent order, so the output is
/// **independent of the thread count**. With `agents <= 1` this is exactly
/// [`traverse`].
///
/// # Errors
///
/// Same conditions as [`traverse`].
pub fn traverse_parallel(
    g: &Graph,
    config: &MegaConfig,
    agents: usize,
    par: &crate::parallel::Parallelism,
) -> Result<Traversal, MegaError> {
    let _span = mega_obs::span("traverse_parallel");
    config.validate()?;
    let working = if config.edge_drop > 0.0 {
        drop_edges(g, config.edge_drop, config.seed)?
    } else {
        g.clone()
    };
    let n = working.node_count();
    let agents = agents.clamp(1, n.max(1));
    if agents == 1 {
        let out = traverse_working(working, config)?;
        emit_traversal_obs(&out);
        return Ok(out);
    }
    mega_obs::counter_add("core.traversal.agents", agents as u64);
    let window = resolve_window(&working, config.window);
    let m = working.edge_count();

    // Contiguous node partitions of near-equal size.
    let bounds: Vec<(usize, usize)> = (0..agents)
        .map(|a| (a * n / agents, (a + 1) * n / agents))
        .filter(|(lo, hi)| hi > lo)
        .collect();

    // Local config: the working graph already has edges dropped, and every
    // agent uses the globally resolved window so coverage semantics match.
    let local_base = config
        .clone()
        .with_window(crate::config::WindowPolicy::Fixed(window))
        .with_edge_drop(0.0);

    let local_paths = crate::parallel::ordered_map(
        &bounds,
        par.effective_threads(),
        |a, &(lo, hi)| -> Result<Vec<usize>, MegaError> {
            let _agent_span = mega_obs::span("traverse_agent");
            let walk_timer = mega_obs::timer();
            let mut b = if working.is_undirected() {
                mega_graph::GraphBuilder::undirected(hi - lo)
            } else {
                mega_graph::GraphBuilder::directed(hi - lo)
            };
            for (s, d) in working.edges() {
                if (lo..hi).contains(&s) && (lo..hi).contains(&d) {
                    b.edge(s - lo, d - lo)
                        .expect("induced edge ids are in range");
                }
            }
            let sub = b.build().expect("induced subgraph is well-formed");
            let local = traverse_working(
                sub,
                &local_base.clone().with_seed(
                    config
                        .seed
                        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(a as u64 + 1)),
                ),
            )?;
            walk_timer.observe("core.traversal.agent_walk_ns");
            Ok(local.path.iter().map(|&v| v + lo).collect())
        },
    );

    // Replay the stitched path through one global walk state, then let the
    // standard loop finish the job (cross-partition edges, coverage top-up).
    let mut st = State::new(&working, window, config.policy, config.seed);
    for segment in local_paths {
        for v in segment? {
            st.append(v);
        }
    }
    if st.path.is_empty() {
        st.append(start_node(&working));
    }
    complete_walk(&mut st, config)?;
    let out = st.into_output();
    let result = finish(out, window, m, working)?;
    emit_traversal_obs(&result);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WindowPolicy;
    use mega_graph::{generate, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig3a() -> Graph {
        // The 7-node demonstration graph of Fig. 3a.
        GraphBuilder::undirected(7)
            .edges([
                (0, 1),
                (0, 5),
                (1, 2),
                (1, 5),
                (2, 3),
                (2, 6),
                (3, 6),
                (3, 4),
                (4, 6),
                (5, 6),
            ])
            .unwrap()
            .build()
            .unwrap()
    }

    fn full_cfg(window: usize) -> MegaConfig {
        MegaConfig::default().with_window(WindowPolicy::Fixed(window))
    }

    #[test]
    fn covers_all_nodes_and_edges_at_full_coverage() {
        let g = fig3a();
        let t = traverse(&g, &full_cfg(1)).unwrap();
        let mut seen = [false; 7];
        for &v in &t.path {
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(t.covered_edges, g.edge_count());
        assert!((t.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn real_steps_follow_original_edges() {
        let g = fig3a();
        let t = traverse(&g, &full_cfg(2)).unwrap();
        for i in 1..t.path.len() {
            if !t.virtual_step[i] {
                assert!(
                    g.contains_edge(t.path[i - 1], t.path[i]),
                    "step {} -> {} marked real but not an edge",
                    t.path[i - 1],
                    t.path[i]
                );
            }
        }
    }

    #[test]
    fn cycle_needs_no_virtual_edges_or_revisits_for_nodes() {
        // An even cycle has an Eulerian circuit; with ω=1 the walk just goes
        // around it.
        let g = generate::cycle(10).unwrap();
        let t = traverse(&g, &full_cfg(1)).unwrap();
        assert_eq!(t.virtual_edge_count, 0);
        // Path is 0,1,...,9 plus one revisit closing the last edge (9,0).
        assert_eq!(t.path.len(), 11);
        assert_eq!(t.revisits, 1);
    }

    #[test]
    fn disconnected_graph_uses_virtual_jumps() {
        let g = GraphBuilder::undirected(6)
            .edges([(0, 1), (1, 2), (3, 4), (4, 5)])
            .unwrap()
            .build()
            .unwrap();
        let t = traverse(&g, &full_cfg(1)).unwrap();
        assert!(t.virtual_edge_count >= 1);
        assert_eq!(t.covered_edges, 4);
        let mut seen = [false; 6];
        for &v in &t.path {
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn isolated_nodes_appear_in_path() {
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1)])
            .unwrap()
            .build()
            .unwrap();
        let t = traverse(&g, &full_cfg(1)).unwrap();
        for v in 0..4 {
            assert!(t.path.contains(&v), "node {v} missing from path");
        }
    }

    #[test]
    fn partial_coverage_stops_early() {
        let g = generate::complete(12).unwrap(); // 66 edges
        let half = MegaConfig::default()
            .with_window(WindowPolicy::Fixed(1))
            .with_coverage(0.5);
        let t = traverse(&g, &half).unwrap();
        assert!(t.coverage() >= 0.5);
        let full = traverse(&g, &full_cfg(1)).unwrap();
        assert!(t.path.len() < full.path.len());
    }

    #[test]
    fn larger_window_covers_with_fewer_revisits() {
        let g = generate::complete(10).unwrap();
        let t1 = traverse(&g, &full_cfg(1)).unwrap();
        let t4 = traverse(&g, &full_cfg(4)).unwrap();
        assert!(t4.revisits <= t1.revisits);
        assert!(t4.path.len() <= t1.path.len());
        assert_eq!(t4.covered_edges, 45);
    }

    #[test]
    fn revisits_respect_two_sided_floor() {
        let g = generate::barabasi_albert(60, 3, &mut StdRng::seed_from_u64(5)).unwrap();
        for w in [1usize, 2, 4] {
            let t = traverse(&g, &full_cfg(w)).unwrap();
            let floor = crate::window::revisit_floor_two_sided(&g.degrees(), w);
            assert!(
                t.revisits >= floor,
                "window {w}: revisits {} below floor {floor}",
                t.revisits
            );
        }
    }

    #[test]
    fn edge_drop_shortens_path() {
        let g = generate::complete(14).unwrap();
        let base = traverse(&g, &full_cfg(2)).unwrap();
        let dropped = traverse(&g, &full_cfg(2).with_edge_drop(0.5)).unwrap();
        assert!(dropped.working_edges < base.working_edges);
        assert!(dropped.path.len() < base.path.len());
        assert!((dropped.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generate::erdos_renyi(40, 0.15, &mut StdRng::seed_from_u64(3)).unwrap();
        let a = traverse(&g, &full_cfg(2)).unwrap();
        let b = traverse(&g, &full_cfg(2)).unwrap();
        assert_eq!(a.path, b.path);
        assert_eq!(a.virtual_step, b.virtual_step);
    }

    #[test]
    fn policies_all_reach_full_coverage() {
        let g = generate::erdos_renyi(30, 0.2, &mut StdRng::seed_from_u64(8)).unwrap();
        for policy in [
            CandidatePolicy::CorrelateArgmax,
            CandidatePolicy::FirstCandidate,
            CandidatePolicy::Random,
        ] {
            let cfg = full_cfg(2).with_policy(policy);
            let t = traverse(&g, &cfg).unwrap();
            assert_eq!(t.covered_edges, g.edge_count(), "policy {policy:?}");
        }
    }

    #[test]
    fn start_prefers_odd_degree() {
        // Path graph: endpoints have odd degree; node 0 is one.
        let g = generate::path(5).unwrap();
        assert_eq!(start_node(&g), 0);
        // Star: all leaves odd (degree 1), hub even when n-1 even.
        let g = generate::star(5).unwrap();
        assert_eq!(start_node(&g), 1);
    }

    #[test]
    fn parallel_one_agent_matches_serial() {
        let g = generate::erdos_renyi(50, 0.12, &mut StdRng::seed_from_u64(11)).unwrap();
        let cfg = full_cfg(2);
        let serial = traverse(&g, &cfg).unwrap();
        let par = crate::parallel::Parallelism::pinned(4);
        let p = traverse_parallel(&g, &cfg, 1, &par).unwrap();
        assert_eq!(serial.path, p.path);
        assert_eq!(serial.virtual_step, p.virtual_step);
        assert_eq!(serial.covered_edges, p.covered_edges);
    }

    #[test]
    fn parallel_output_independent_of_thread_count() {
        let g = generate::erdos_renyi(64, 0.1, &mut StdRng::seed_from_u64(12)).unwrap();
        let cfg = full_cfg(2);
        let reference =
            traverse_parallel(&g, &cfg, 4, &crate::parallel::Parallelism::with_threads(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let t = traverse_parallel(&g, &cfg, 4, &crate::parallel::Parallelism::pinned(threads))
                .unwrap();
            assert_eq!(reference.path, t.path, "threads={threads}");
            assert_eq!(reference.virtual_step, t.virtual_step);
            assert_eq!(reference.revisits, t.revisits);
        }
    }

    #[test]
    fn parallel_agents_reach_full_coverage() {
        let g = generate::erdos_renyi(80, 0.08, &mut StdRng::seed_from_u64(13)).unwrap();
        let cfg = full_cfg(3);
        for agents in [2usize, 4, 7] {
            let t = traverse_parallel(&g, &cfg, agents, &crate::parallel::Parallelism::default())
                .unwrap();
            assert_eq!(t.covered_edges, g.edge_count(), "agents={agents}");
            let mut seen = vec![false; g.node_count()];
            for &v in &t.path {
                seen[v] = true;
            }
            assert!(seen.iter().all(|&s| s));
            for i in 1..t.path.len() {
                if !t.virtual_step[i] {
                    assert!(g.contains_edge(t.path[i - 1], t.path[i]));
                }
            }
        }
    }

    #[test]
    fn parallel_agents_clamped_to_node_count() {
        let g = generate::cycle(5).unwrap();
        let t = traverse_parallel(
            &g,
            &full_cfg(1),
            64,
            &crate::parallel::Parallelism::pinned(2),
        )
        .unwrap();
        assert_eq!(t.covered_edges, 5);
    }

    #[test]
    fn band_window_revisits_partition_the_revisit_total() {
        let g = generate::complete(10).unwrap();
        for w in [1usize, 2, 4] {
            let t = traverse(&g, &full_cfg(w)).unwrap();
            let per_window = t.band_window_revisits();
            assert_eq!(per_window.len(), t.path.len().div_ceil(w));
            assert_eq!(
                per_window.iter().sum::<usize>(),
                t.revisits,
                "window {w}: per-window revisits must partition the total"
            );
        }
    }

    #[test]
    fn node_hotness_counts_path_appearances() {
        let g = fig3a();
        let t = traverse(&g, &full_cfg(2)).unwrap();
        let hot = t.node_hotness();
        assert_eq!(hot.len(), 7);
        assert_eq!(hot.iter().sum::<usize>(), t.path.len());
        for (v, &count) in hot.iter().enumerate() {
            assert_eq!(count, t.path.iter().filter(|&&p| p == v).count());
        }
        // Revisits are exactly the appearances beyond each node's first.
        let beyond_first: usize = hot.iter().map(|&c| c.saturating_sub(1)).sum();
        assert_eq!(beyond_first, t.revisits);
    }

    #[test]
    fn single_node_graph() {
        let g = GraphBuilder::undirected(1).build().unwrap();
        let t = traverse(&g, &full_cfg(1)).unwrap();
        assert_eq!(t.path, vec![0]);
        assert_eq!(t.covered_edges, 0);
        assert!((t.coverage() - 1.0).abs() < 1e-12);
    }
}
