//! Figure 8: isomorphism (aggregation-similarity) evaluation.
//!
//! WL-style similarity between the original graph's k-hop aggregation and
//! (a) MEGA's path representation, (b) global attention's "full label set",
//! at two sparsity levels and two graph sizes. The path representation is
//! exact at 1 hop and degrades gracefully; global attention destroys
//! locality on sparse graphs.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::{preprocess, MegaConfig};
use mega_graph::generate;
use mega_wl::{global_similarity, path_similarity, path_similarity_merged};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    representation: String,
    nodes: usize,
    sparsity: f64,
    hops: usize,
    similarity: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rows = Vec::new();
    let mut table = TableWriter::new(&["repr", "nodes", "sparsity", "1-hop", "2-hop", "3-hop"]);
    for &sparsity in &[0.05f64, 0.1] {
        for &n in &[32usize, 96] {
            let mut rng = StdRng::seed_from_u64((n as u64) * 100 + (sparsity * 100.0) as u64);
            let g = generate::erdos_renyi(n, sparsity, &mut rng).unwrap();
            let schedule = preprocess(&g, &MegaConfig::default()).unwrap();

            let mut p_scores = Vec::new();
            let mut g_scores = Vec::new();
            let mut m_scores = Vec::new();
            for hops in 1..=3 {
                let p = path_similarity(&g, &schedule, hops);
                let q = global_similarity(&g, hops);
                let m = path_similarity_merged(&g, &schedule, hops);
                rows.push(Row {
                    representation: "path".into(),
                    nodes: n,
                    sparsity,
                    hops,
                    similarity: p,
                });
                rows.push(Row {
                    representation: "global".into(),
                    nodes: n,
                    sparsity,
                    hops,
                    similarity: q,
                });
                rows.push(Row {
                    representation: "path-merged".into(),
                    nodes: n,
                    sparsity,
                    hops,
                    similarity: m,
                });
                p_scores.push(p);
                g_scores.push(q);
                m_scores.push(m);
            }
            table.row(&[
                format!("p{n}"),
                n.to_string(),
                fmt(sparsity, 2),
                fmt(p_scores[0], 3),
                fmt(p_scores[1], 3),
                fmt(p_scores[2], 3),
            ]);
            table.row(&[
                format!("g{n}"),
                n.to_string(),
                fmt(sparsity, 2),
                fmt(g_scores[0], 3),
                fmt(g_scores[1], 3),
                fmt(g_scores[2], 3),
            ]);
            table.row(&[
                format!("p{n}-merged"),
                n.to_string(),
                fmt(sparsity, 2),
                fmt(m_scores[0], 3),
                fmt(m_scores[1], 3),
                fmt(m_scores[2], 3),
            ]);
        }
    }
    mega_obs::data!(
        "Figure 8 — aggregation similarity: path representation (p) vs global attention (g)\n"
    );
    table.print();
    mega_obs::data!(
        "\nPaper claims: p-rows are exactly 1.0 at 1 hop and stay high at more hops;\n\
         g-rows are low on sparse graphs. (path-merged = per-layer scatter flow used by\n\
         the trained engine: exact at every hop.)"
    );
    save_json("fig08_isomorphism", &rows);
}
