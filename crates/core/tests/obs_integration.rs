//! Integration of the observability layer with the worker-thread pool:
//! span parent attribution is thread-local, so spans opened inside
//! `ordered_map` workers are roots of their own thread's tree, while the
//! inline (single-thread) path nests under the caller's open span.
//!
//! The obs registry and enable flag are process-global; these tests
//! serialize on a static mutex so the parallel test runner cannot
//! interleave them (same pattern as the `mega-obs` unit tests).

use mega_core::parallel::ordered_map;
use std::sync::{Mutex, MutexGuard};

static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn worker_thread_spans_are_thread_local_roots() {
    let _g = guard();
    mega_obs::reset();
    mega_obs::set_enabled(true);
    let items: Vec<usize> = (0..64).collect();
    let out = {
        let _outer = mega_obs::span("outer");
        ordered_map(&items, 4, |i, &v| {
            let _w = mega_obs::span("worker_op");
            i + v
        })
    };
    mega_obs::set_enabled(false);
    assert_eq!(out[10], 20);

    let snap = mega_obs::snapshot();
    let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
    // The pool runs f on scoped worker threads: their spans must be
    // roots, never children of the caller's "outer" span.
    let worker = snap
        .spans
        .iter()
        .find(|s| s.path == "worker_op")
        .unwrap_or_else(|| panic!("no root worker_op span in {paths:?}"));
    assert_eq!(worker.count, 64, "one span per item");
    assert!(paths.contains(&"outer"));
    assert!(
        !paths.contains(&"outer/worker_op"),
        "worker spans leaked into caller tree"
    );
    // Workers get distinct thread ids in the raw span records.
    let tids: std::collections::BTreeSet<u64> = mega_obs::trace_tids();
    assert!(
        tids.len() >= 2,
        "expected multiple thread ids, got {tids:?}"
    );
    mega_obs::reset();
}

#[test]
fn inline_path_nests_under_caller_span() {
    let _g = guard();
    mega_obs::reset();
    mega_obs::set_enabled(true);
    let items: Vec<usize> = (0..8).collect();
    {
        let _outer = mega_obs::span("outer");
        // threads == 1 → inline on the calling thread.
        let _ = ordered_map(&items, 1, |_, &v| {
            let _w = mega_obs::span("worker_op");
            v
        });
    }
    mega_obs::set_enabled(false);
    let snap = mega_obs::snapshot();
    let inline = snap.spans.iter().find(|s| s.path == "outer/worker_op");
    assert!(
        inline.is_some_and(|s| s.count == 8),
        "inline spans must nest under outer"
    );
    let counters: std::collections::BTreeMap<_, _> = snap.counters.iter().cloned().collect();
    assert_eq!(counters.get("core.parallel.inline_runs"), Some(&1));
    mega_obs::reset();
}
