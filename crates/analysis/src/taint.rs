//! `determinism-taint`: call-graph propagation of nondeterminism sources.
//!
//! A *source* is a token the extractor recognizes as machine- or
//! seed-dependent: `Instant::now`, `SystemTime::now`,
//! `available_parallelism`, RNG-from-entropy (`thread_rng`,
//! `from_entropy`, `OsRng`), or same-line `HashMap`/`HashSet` iteration.
//! Taint flows from a source fn to every transitive caller, except through
//! *boundary* fns: everything in `crates/obs/` (the audited observability
//! layer — its clocks feed metrics, never results) and any fn whose
//! definition line carries an `allow(determinism-taint, ...)` pragma.
//!
//! A finding fires where taint *enters* result-affecting code (the
//! order-sensitive `src/` trees shared with `unordered-collection`):
//! either at the source line itself when the source sits in a
//! result-affecting fn, or at a fn that calls a tainted fn living outside
//! the result-affecting scope. Callers further up the chain stay silent —
//! one actionable site per taint entry.
//!
//! A pragma on a source's own line drops that source (and counts as used);
//! a pragma on a fn's definition line makes the whole fn a boundary and
//! counts as used only when it actually intercepts taint, so stale
//! boundaries surface under `stale-pragma`.

use crate::graph::{bfs, Graph};
use crate::pragma::Suppressions;
use crate::rules;
use crate::{Finding, Rule};
use std::collections::BTreeMap;

/// True for scopes whose results the determinism contract covers.
fn result_affecting(scope: &str) -> bool {
    rules::ORDER_SENSITIVE.iter().any(|p| scope.starts_with(p)) && !scope.contains("/tests/")
}

/// Runs the rule over the workspace graph, appending raw findings (the
/// caller still applies generic pragma filtering).
pub(crate) fn run(g: &Graph, sups: &BTreeMap<String, Suppressions>, findings: &mut Vec<Finding>) {
    let n = g.fns.len();
    // Sources surviving a pragma on their own line.
    let mut sources: Vec<Vec<usize>> = Vec::with_capacity(n);
    for f in &g.fns {
        let mut keep = Vec::new();
        for (k, s) in f.sources.iter().enumerate() {
            match sups.get(&f.file) {
                Some(sp) if sp.covers_peek(s.line, Rule::DeterminismTaint) => {
                    sp.mark_used(s.line, Rule::DeterminismTaint);
                }
                _ => keep.push(k),
            }
        }
        sources.push(keep);
    }
    let boundary: Vec<bool> = g
        .fns
        .iter()
        .map(|f| {
            f.scope.starts_with("crates/obs/")
                || sups
                    .get(&f.file)
                    .is_some_and(|sp| sp.covers_peek(f.line, Rule::DeterminismTaint))
        })
        .collect();
    let rev = g.reverse_edges(false);
    let seeds: Vec<usize> = (0..n)
        .filter(|&i| !sources[i].is_empty() && !boundary[i])
        .collect();
    let parents = bfs(&rev, seeds, |i| boundary[i]);
    let tainted = |i: usize| parents[i].is_some() && !boundary[i];
    // A boundary pragma earns its keep only when it intercepts something.
    for i in 0..n {
        let f = &g.fns[i];
        if boundary[i] && !f.scope.starts_with("crates/obs/") {
            let intercepts = !sources[i].is_empty() || g.edges[i].iter().any(|&j| tainted(j));
            if intercepts {
                if let Some(sp) = sups.get(&f.file) {
                    sp.mark_used(f.line, Rule::DeterminismTaint);
                }
            }
        }
    }
    for i in 0..n {
        let f = &g.fns[i];
        if !tainted(i) || f.in_test || !result_affecting(&f.scope) {
            continue;
        }
        if let Some(&k) = sources[i].first() {
            let s = &f.sources[k];
            findings.push(Finding {
                file: f.file.clone(),
                line: s.line,
                rule: Rule::DeterminismTaint,
                message: format!(
                    "`fn {}` in a result-affecting crate calls nondeterminism source \
                     `{}`; route it through mega-obs or an audited boundary, or add \
                     `allow(determinism-taint, ...)` stating why results cannot depend on it",
                    f.name, s.what
                ),
            });
            continue;
        }
        // Taint arriving from outside the result-affecting scope: this fn
        // is where the contract is breached.
        let entry = g.edges[i]
            .iter()
            .copied()
            .find(|&j| tainted(j) && !result_affecting(&g.fns[j].scope));
        if let Some(j) = entry {
            findings.push(Finding {
                file: f.file.clone(),
                line: f.line,
                rule: Rule::DeterminismTaint,
                message: format!(
                    "`fn {}` in a result-affecting crate reaches nondeterminism source \
                     `{}` (call chain: {}); break the chain or declare an audited \
                     boundary with `allow(determinism-taint, ...)`",
                    f.name,
                    root_source(g, &parents, &sources, j),
                    chain_to_source(g, &parents, i)
                ),
            });
        }
    }
}

/// Renders `f → g → ... → source_fn` following the reverse-BFS parents.
fn chain_to_source(g: &Graph, parents: &[Option<usize>], mut at: usize) -> String {
    let mut names = vec![g.fns[at].name.clone()];
    let mut hops = 0;
    while let Some(p) = parents[at] {
        if p == at || hops > 64 {
            break;
        }
        names.push(g.fns[p].name.clone());
        at = p;
        hops += 1;
    }
    names.join(" → ")
}

/// The source token at the seed end of a tainted fn's chain.
fn root_source(
    g: &Graph,
    parents: &[Option<usize>],
    sources: &[Vec<usize>],
    mut at: usize,
) -> String {
    let mut hops = 0;
    while let Some(p) = parents[at] {
        if p == at || hops > 64 {
            break;
        }
        at = p;
        hops += 1;
    }
    match sources[at].first() {
        Some(&k) => g.fns[at].sources[k].what.clone(),
        None => "unknown".to_string(),
    }
}
