//! Figure 9: aggregate memory metrics — Mega vs DGL.
//!
//! Paper setup: batch 64, hidden 128. Invocation-weighted SM efficiency and
//! memory-stall percentage (the paper's aggregate-metric equation) for both
//! engines across every dataset and model. Mega holds stable high efficiency
//! and low stalls regardless of dataset or model.

use mega_bench::{bench_datasets, fmt, profile_config, save_json, TableWriter};
use mega_datasets::DatasetSpec;
use mega_gnn::{EngineChoice, ModelKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    engine: String,
    aggregate_sm_efficiency: f64,
    aggregate_stall_pct: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let spec = DatasetSpec::small(9);
    let (batch, hidden, layers) = (64usize, 128usize, 2usize);
    let mut table = TableWriter::new(&["dataset", "model", "engine", "agg sm_eff", "agg stall%"]);
    let mut rows = Vec::new();
    for ds in bench_datasets(&spec) {
        for kind in [ModelKind::GatedGcn, ModelKind::GraphTransformer] {
            for engine in [EngineChoice::Baseline, EngineChoice::Mega] {
                let cost = profile_config(&ds, kind, engine, batch, hidden, layers);
                let eff = cost.report.aggregate_sm_efficiency();
                let stall = cost.report.aggregate_stall_pct();
                table.row(&[
                    ds.name.clone(),
                    kind.label().to_string(),
                    engine.label().to_string(),
                    fmt(eff, 2),
                    fmt(stall * 100.0, 1),
                ]);
                rows.push(Row {
                    dataset: ds.name.clone(),
                    model: kind.label().to_string(),
                    engine: engine.label().to_string(),
                    aggregate_sm_efficiency: eff,
                    aggregate_stall_pct: stall,
                });
            }
        }
    }
    mega_obs::data!("Figure 9 — aggregate memory metrics, Mega vs DGL (batch 64, hidden 128)\n");
    table.print();
    mega_obs::data!(
        "\nPaper claims: Mega's SM efficiency is high and stable across datasets/models;\n\
         DGL's varies and drops hardest for GT (5x more scatter ops)."
    );
    save_json("fig09_memory_metrics", &rows);
}
