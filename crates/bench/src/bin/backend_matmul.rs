//! Dense-GEMM backend micro-benchmark and CI performance gate.
//!
//! Times every execution backend (reference loops, cache-blocked, SIMD)
//! across square sizes, single-threaded (the blocking and vectorization
//! wins are per-core, not parallelism), plus a lane-width sweep of the
//! SIMD backend's portable fallback at the gate size. Results land in
//! `bench_results/backend_matmul.json`.
//!
//! Gates (process exits non-zero on violation):
//!
//! * blocked must beat reference on the 512×512 GEMM;
//! * simd must be at least as fast as blocked on the 512×512 GEMM;
//! * with `--baseline <json> [--tolerance <frac>]`, no (backend, size)
//!   timing may regress more than the tolerance (default 15%) against the
//!   committed baseline — the CI bench-regression gate. Timings are
//!   compared as ratios to the same run's reference time at that size, so
//!   the gate tracks how much each optimized backend wins by, not absolute
//!   wall-clock — it holds across machines of different speeds and under
//!   noisy-neighbour CI runners.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::Parallelism;
use mega_exec::{Backend, BlockedBackend, ReferenceBackend, SimdBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;

const SIZES: [usize; 4] = [64, 128, 256, 512];
/// The size whose timings gate CI.
const GATE_SIZE: usize = 512;
const REPS: usize = 7;

#[derive(Serialize, Deserialize)]
struct Row {
    size: usize,
    backend: String,
    ms: f64,
    gflops: f64,
}

#[derive(Serialize, Deserialize)]
struct LaneRow {
    lanes: usize,
    accelerated: bool,
    ms: f64,
    gflops: f64,
}

/// One packed-GEMM gate row: the planner's cached-pack entry point vs the
/// plain per-call-packing kernel on the same backend and size.
#[derive(Serialize, Deserialize)]
struct PackedRow {
    backend: String,
    unpacked_ms: f64,
    packed_ms: f64,
    speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    threads: usize,
    reps: usize,
    rows: Vec<Row>,
    lane_sweep: Vec<LaneRow>,
    packed: Vec<PackedRow>,
}

/// The slice of a baseline report the regression gate consumes. Loading
/// through this view (extra JSON fields are ignored) keeps baselines
/// committed before the planner existed — which lack `packed` — valid.
#[derive(Deserialize)]
struct BaselineReport {
    rows: Vec<Row>,
}

/// Best-of-`REPS` wall time. The minimum is the noise-robust statistic
/// here: scheduler preemption and CPU steal only ever *add* time, so the
/// fastest reap is the closest observation of the kernel's true cost.
fn best_ms<F: FnMut()>(mut f: F) -> f64 {
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn time_backend(backend: &dyn Backend, a: &[f32], b: &[f32], n: usize) -> f64 {
    let par = Parallelism::with_threads(1);
    let mut out = vec![0.0f32; n * n];
    best_ms(|| {
        out.iter_mut().for_each(|v| *v = 0.0);
        backend.matmul(a, b, n, n, n, &par, &mut out);
        std::hint::black_box(&out);
    })
}

/// Best-of-`PAIRED_REPS` times of the plain kernel and the packed entry
/// point (`b` prepacked once outside the timed region — the steady state
/// the plan cache buys on every GEMM after the first per optimizer step).
/// The two paths are interleaved rep-by-rep so bursty CPU steal or thermal
/// drift lands on both alike: timing them in disjoint windows was observed
/// to invert a ~1.2x speedup into a ~0.8x "slowdown" on noisy runners.
fn time_packed_pair(backend: &dyn Backend, a: &[f32], b: &[f32], n: usize) -> (f64, f64) {
    const PAIRED_REPS: usize = 11;
    let par = Parallelism::with_threads(1);
    let packed = backend
        .prepack(b, n, n)
        .expect("packing backends must prepack");
    let mut out = vec![0.0f32; n * n];
    let (mut unpacked_ms, mut packed_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..PAIRED_REPS {
        out.iter_mut().for_each(|v| *v = 0.0);
        let t = Instant::now();
        backend.matmul(a, b, n, n, n, &par, &mut out);
        unpacked_ms = unpacked_ms.min(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(&out);
        out.iter_mut().for_each(|v| *v = 0.0);
        let t = Instant::now();
        backend.matmul_packed(a, &packed, n, &par, &mut out);
        packed_ms = packed_ms.min(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(&out);
    }
    (unpacked_ms, packed_ms)
}

fn gflops(n: usize, ms: f64) -> f64 {
    2.0 * (n as f64).powi(3) / (ms * 1e-3) / 1e9
}

fn square(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// The recorded time for `(size, backend)` in a row set.
fn lookup(rows: &[Row], size: usize, backend: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.size == size && r.backend == backend)
        .map(|r| r.ms)
}

/// Checks every optimized (backend, size) pair present in both runs against
/// the allowed regression; returns the offending descriptions.
///
/// Times are normalized to the reference backend at the same size *within
/// each run* before comparing, so a uniformly slower or faster machine
/// cancels out and only changes in the backend's speedup over reference
/// trip the gate. The reference rows themselves are the normalizer and are
/// covered by the absolute `GATE_SIZE` ordering checks instead.
fn regressions(current: &[Row], baseline: &[Row], tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for b in baseline {
        if b.backend == "reference" {
            continue;
        }
        let (Some(now), Some(now_ref), Some(base_ref)) = (
            lookup(current, b.size, &b.backend),
            lookup(current, b.size, "reference"),
            lookup(baseline, b.size, "reference"),
        ) else {
            continue;
        };
        let ratio = (now / now_ref) / (b.ms / base_ref);
        if ratio > 1.0 + tolerance {
            out.push(format!(
                "{} {}x{}: {:.3}x reference vs baseline {:.3}x ({:+.1}%, tolerance {:.0}%)",
                b.backend,
                b.size,
                b.size,
                now / now_ref,
                b.ms / base_ref,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    out
}

fn main() -> ExitCode {
    mega_obs::report::init_from_env();
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 0.15f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|t| t.parse().ok())
                    .expect("--tolerance takes a fraction, e.g. 0.15");
            }
            other => {
                mega_obs::error!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(42);
    let simd = SimdBackend::new();
    let backends: [(&str, &dyn Backend); 3] = [
        ("reference", &ReferenceBackend),
        ("blocked", &BlockedBackend),
        ("simd", &simd),
    ];

    let mut table = TableWriter::new(&[
        "size",
        "reference(ms)",
        "blocked(ms)",
        "simd(ms)",
        "simd/blocked",
    ]);
    let mut rows = Vec::new();
    for &n in &SIZES {
        let a = square(n, &mut rng);
        let b = square(n, &mut rng);
        let mut ms = Vec::new();
        for (name, backend) in backends {
            let t = time_backend(backend, &a, &b, n);
            ms.push(t);
            rows.push(Row {
                size: n,
                backend: name.to_string(),
                ms: t,
                gflops: gflops(n, t),
            });
        }
        table.row(&[
            fmt(n as f64, 0),
            fmt(ms[0], 3),
            fmt(ms[1], 3),
            fmt(ms[2], 3),
            fmt(ms[1] / ms[2], 2),
        ]);
    }
    table.print();

    // Lane-width sweep at the gate size: the portable scalar-lane fallback
    // at each supported width, plus the auto-detected native path.
    let n = GATE_SIZE;
    let a = square(n, &mut rng);
    let b = square(n, &mut rng);
    let mut sweep_table = TableWriter::new(&["lanes", "path", "ms", "gflops"]);
    let mut lane_sweep = Vec::new();
    let sweep: Vec<SimdBackend> = [4usize, 8, 16]
        .iter()
        .map(|&w| SimdBackend::with_portable_lanes(w))
        .chain(std::iter::once(SimdBackend::new()))
        .collect();
    for be in sweep {
        let ms = time_backend(&be, &a, &b, n);
        sweep_table.row(&[
            fmt(be.lane_width() as f64, 0),
            if be.is_accelerated() {
                "native".to_string()
            } else {
                "portable".to_string()
            },
            fmt(ms, 3),
            fmt(gflops(n, ms), 2),
        ]);
        lane_sweep.push(LaneRow {
            lanes: be.lane_width(),
            accelerated: be.is_accelerated(),
            ms,
            gflops: gflops(n, ms),
        });
    }
    mega_obs::data!("\nlane-width sweep at {n}x{n}:");
    sweep_table.print();

    // Packed-GEMM gate at the gate size: with `b` prepacked (what the tape
    // planner's pack cache provides on every call after the first), the
    // packed entry point must be at least as fast as the plain kernel that
    // repacks per call. Compared as a within-run ratio, so the gate is
    // machine-speed invariant; the 5% margin absorbs runner noise on a
    // difference that is inherently small (packing is O(n^2) against the
    // GEMM's O(n^3)).
    let mut packed_failed = false;
    let mut packed_rows = Vec::new();
    let mut packed_table = TableWriter::new(&["backend", "unpacked(ms)", "packed(ms)", "speedup"]);
    let simd_gate = SimdBackend::new();
    let packing: [(&str, &dyn Backend); 2] = [("blocked", &BlockedBackend), ("simd", &simd_gate)];
    for (name, backend) in packing {
        let (unpacked_ms, packed_ms) = time_packed_pair(backend, &a, &b, n);
        let speedup = unpacked_ms / packed_ms;
        packed_table.row(&[
            name.to_string(),
            fmt(unpacked_ms, 3),
            fmt(packed_ms, 3),
            fmt(speedup, 3),
        ]);
        if packed_ms > unpacked_ms * 1.05 {
            mega_obs::error!(
                "FAIL: {name} packed GEMM slower than per-call packing at \
                 {n}x{n} ({packed_ms:.3} ms vs {unpacked_ms:.3} ms)"
            );
            packed_failed = true;
        }
        packed_rows.push(PackedRow {
            backend: name.to_string(),
            unpacked_ms,
            packed_ms,
            speedup,
        });
    }
    mega_obs::data!("\nplanned (prepacked) vs unplanned GEMM at {n}x{n}:");
    packed_table.print();

    let reference = lookup(&rows, GATE_SIZE, "reference").expect("gate row present");
    let blocked = lookup(&rows, GATE_SIZE, "blocked").expect("gate row present");
    let simd_ms = lookup(&rows, GATE_SIZE, "simd").expect("gate row present");
    mega_obs::data!(
        "{GATE_SIZE}x{GATE_SIZE} gate: reference {:.3} ms, blocked {:.3} ms, simd {:.3} ms",
        reference,
        blocked,
        simd_ms
    );

    let mut failed = packed_failed;
    if blocked >= reference {
        mega_obs::error!("FAIL: blocked did not beat reference at {GATE_SIZE}x{GATE_SIZE}");
        failed = true;
    }
    if simd_ms > blocked {
        mega_obs::error!("FAIL: simd slower than blocked at {GATE_SIZE}x{GATE_SIZE}");
        failed = true;
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("baseline {path} unreadable: {e}"));
        let base: BaselineReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("baseline {path} unparsable: {e}"));
        let regs = regressions(&rows, &base.rows, tolerance);
        if regs.is_empty() {
            mega_obs::data!(
                "regression gate: all {} baseline timings within {:.0}%",
                base.rows.len(),
                tolerance * 100.0
            );
        } else {
            for r in &regs {
                mega_obs::error!("FAIL (regression): {r}");
            }
            failed = true;
        }
    }

    save_json(
        "backend_matmul",
        &Report {
            threads: 1,
            reps: REPS,
            rows,
            lane_sweep,
            packed: packed_rows,
        },
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
