//! Classic Weisfeiler-Lehman color refinement.
//!
//! Every vertex starts with color 0. Each round, a vertex's new color is the
//! canonical id of the pair *(own color, sorted multiset of neighbor
//! colors)*; canonical ids are assigned in a deterministic order shared by
//! every graph refined against the same [`RefinementHistory`]-producing call,
//! so colors are comparable across graphs within one [`refine_pair`] run.

use mega_graph::Graph;
use std::collections::BTreeMap;

/// The per-round colors of one graph under WL refinement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinementHistory {
    /// `rounds[k][v]` is the color of vertex `v` after `k` rounds
    /// (`rounds[0]` is the uniform initial coloring).
    pub rounds: Vec<Vec<u64>>,
}

impl RefinementHistory {
    /// Colors after the final round.
    pub fn final_colors(&self) -> &[u64] {
        self.rounds
            .last()
            .expect("at least the initial round exists")
    }

    /// Number of refinement rounds performed (excluding the initial one).
    pub fn round_count(&self) -> usize {
        self.rounds.len() - 1
    }

    /// Sorted multiset of colors after round `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > round_count()`.
    pub fn color_multiset(&self, k: usize) -> Vec<u64> {
        let mut m = self.rounds[k].clone();
        m.sort_unstable();
        m
    }
}

fn refine_rounds(graphs: &[&Graph], iterations: usize) -> Vec<RefinementHistory> {
    let mut histories: Vec<RefinementHistory> = graphs
        .iter()
        .map(|g| RefinementHistory {
            rounds: vec![vec![0u64; g.node_count()]],
        })
        .collect();
    for _ in 0..iterations {
        // One shared canonical dictionary per round keeps colors comparable
        // across all graphs in the batch.
        let mut dict: BTreeMap<(u64, Vec<u64>), u64> = BTreeMap::new();
        // First pass: collect signatures deterministically (graph order, then
        // vertex order) so dictionary ids do not depend on hashing.
        let mut signatures: Vec<Vec<(u64, Vec<u64>)>> = Vec::with_capacity(graphs.len());
        for (gi, g) in graphs.iter().enumerate() {
            let prev = histories[gi].final_colors().to_vec();
            let mut sigs = Vec::with_capacity(g.node_count());
            for v in 0..g.node_count() {
                let mut nb: Vec<u64> = g.neighbors(v).iter().map(|&u| prev[u]).collect();
                nb.sort_unstable();
                sigs.push((prev[v], nb));
            }
            signatures.push(sigs);
        }
        let mut next_id = 0u64;
        for sigs in &signatures {
            for sig in sigs {
                dict.entry(sig.clone()).or_insert_with(|| {
                    let id = next_id;
                    next_id += 1;
                    id
                });
            }
        }
        for (gi, sigs) in signatures.into_iter().enumerate() {
            let colors: Vec<u64> = sigs.into_iter().map(|s| dict[&s]).collect();
            histories[gi].rounds.push(colors);
        }
    }
    histories
}

/// Refines a single graph for `iterations` rounds.
///
/// # Example
///
/// ```
/// use mega_graph::generate;
/// use mega_wl::refine;
///
/// let g = generate::star(5).unwrap();
/// let h = refine(&g, 2);
/// // Hub and leaves get distinct colors after one round.
/// assert_ne!(h.rounds[1][0], h.rounds[1][1]);
/// ```
pub fn refine(g: &Graph, iterations: usize) -> RefinementHistory {
    refine_rounds(&[g], iterations)
        .pop()
        .expect("one history per input graph")
}

/// Refines two graphs against a shared color dictionary.
pub fn refine_pair(
    a: &Graph,
    b: &Graph,
    iterations: usize,
) -> (RefinementHistory, RefinementHistory) {
    let mut hs = refine_rounds(&[a, b], iterations);
    let hb = hs.pop().expect("two histories");
    let ha = hs.pop().expect("two histories");
    (ha, hb)
}

/// Whether `a` and `b` are WL-indistinguishable after `iterations` rounds
/// (same color multiset every round). WL-indistinguishable graphs may still
/// be non-isomorphic, but distinguishable graphs are certainly
/// non-isomorphic.
pub fn wl_indistinguishable(a: &Graph, b: &Graph, iterations: usize) -> bool {
    if a.node_count() != b.node_count() {
        return false;
    }
    let (ha, hb) = refine_pair(a, b, iterations);
    (0..=iterations).all(|k| ha.color_multiset(k) == hb.color_multiset(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::{generate, GraphBuilder};

    #[test]
    fn regular_graphs_stay_monochrome() {
        let g = generate::cycle(8).unwrap();
        let h = refine(&g, 3);
        for round in &h.rounds {
            let first = round[0];
            assert!(round.iter().all(|&c| c == first));
        }
    }

    #[test]
    fn distinguishes_cycle_lengths_by_count() {
        // C6 vs two C3s: same degrees, WL-indistinguishable on colors alone
        // within rounds (both 2-regular) — a known WL blind spot. Node counts
        // equal, multisets equal: expect indistinguishable.
        let c6 = generate::cycle(6).unwrap();
        let two_c3 = GraphBuilder::undirected(6)
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap()
            .build()
            .unwrap();
        assert!(wl_indistinguishable(&c6, &two_c3, 4));
    }

    #[test]
    fn distinguishes_star_from_path() {
        let star = generate::star(5).unwrap();
        let path = generate::path(5).unwrap();
        assert!(!wl_indistinguishable(&star, &path, 2));
    }

    #[test]
    fn isomorphic_relabelings_are_indistinguishable() {
        // The same 4-cycle under two labelings.
        let a = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .unwrap()
            .build()
            .unwrap();
        let b = GraphBuilder::undirected(4)
            .edges([(0, 2), (2, 1), (1, 3), (3, 0)])
            .unwrap()
            .build()
            .unwrap();
        assert!(wl_indistinguishable(&a, &b, 4));
    }

    #[test]
    fn node_count_mismatch_short_circuits() {
        let a = generate::cycle(4).unwrap();
        let b = generate::cycle(5).unwrap();
        assert!(!wl_indistinguishable(&a, &b, 1));
    }

    #[test]
    fn refinement_stabilizes() {
        let g = generate::path(6).unwrap();
        let h = refine(&g, 10);
        // Once the partition stabilizes, the number of distinct colors stops
        // growing.
        let distinct = |round: &Vec<u64>| {
            let mut r = round.clone();
            r.sort_unstable();
            r.dedup();
            r.len()
        };
        let last = distinct(&h.rounds[10]);
        let prev = distinct(&h.rounds[9]);
        assert_eq!(last, prev);
    }
}
