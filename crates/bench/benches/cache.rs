//! Criterion benches of the GPU simulator: cache throughput and kernel
//! launch simulation speed.

use criterion::{criterion_group, criterion_main, Criterion};
use mega_gpu_sim::{cache::SectoredCache, DeviceConfig, Profiler};

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_cache");
    group.bench_function("sequential_64k", |b| {
        let mut cache = SectoredCache::new(2 * 1024 * 1024, 128, 32, 16);
        b.iter(|| {
            for a in (0..64 * 1024u64).step_by(32) {
                cache.access_sector(a);
            }
        })
    });
    group.bench_function("strided_64k", |b| {
        let mut cache = SectoredCache::new(2 * 1024 * 1024, 128, 32, 16);
        b.iter(|| {
            for i in 0..2048u64 {
                cache.access_sector((i * 7919 * 32) % (8 * 1024 * 1024));
            }
        })
    });
    group.finish();
}

fn bench_kernel_launches(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiler");
    group.bench_function("gather_10k_rows", |b| {
        let idx: Vec<usize> = (0..10_000).map(|i| (i * 6151) % 10_000).collect();
        b.iter(|| {
            let mut p = Profiler::new(DeviceConfig::gtx_1080());
            let src = p.alloc(10_000 * 64 * 4);
            p.launch_gather(src, &idx, 64, 10_000);
            p.total_cycles()
        })
    });
    group.bench_function("sgemm_512", |b| {
        b.iter(|| {
            let mut p = Profiler::new(DeviceConfig::gtx_1080());
            let a = p.alloc(512 * 512 * 4);
            let bb = p.alloc(512 * 512 * 4);
            let cc = p.alloc(512 * 512 * 4);
            p.launch_sgemm(a, bb, cc, 512, 512, 512);
            p.total_cycles()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache_access, bench_kernel_launches);
criterion_main!(benches);
