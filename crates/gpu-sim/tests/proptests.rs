//! Property-based tests for the GPU simulator.

use mega_gpu_sim::cache::{Access, SectoredCache};
use mega_gpu_sim::coalesce::{coalesce_stream, warp_sectors};
use mega_gpu_sim::{DeviceConfig, KernelKind, Profiler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A warp never issues more transactions than lanes, and never fewer
    /// than the distinct sectors demand.
    #[test]
    fn coalescer_bounds(addrs in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let sectors = warp_sectors(&addrs, 32);
        prop_assert!(sectors.len() <= addrs.len());
        let distinct: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 32).collect();
        prop_assert_eq!(sectors.len(), distinct.len());
    }

    /// Stream chunking covers every element exactly once.
    #[test]
    fn stream_chunking_is_total(addrs in proptest::collection::vec(0u64..100_000, 0..300)) {
        let warps = coalesce_stream(&addrs, 32, 32);
        let expected = addrs.len().div_ceil(32);
        prop_assert_eq!(warps.len(), expected);
    }

    /// Cache counters are consistent: hits + misses == accesses, and a
    /// repeated access to the same address always hits immediately after.
    #[test]
    fn cache_counter_consistency(addrs in proptest::collection::vec(0u64..(1u64 << 22), 1..500)) {
        let mut c = SectoredCache::new(64 * 1024, 128, 32, 8);
        for &a in &addrs {
            let _ = c.access_sector(a);
            prop_assert_eq!(c.access_sector(a), Access::Hit);
        }
        prop_assert_eq!(c.hits() + c.misses(), c.accesses());
        prop_assert!(c.hit_rate() >= 0.5); // every address re-accessed once
    }

    /// A working set within capacity converges to all-hits on the second
    /// pass regardless of the address base.
    #[test]
    fn small_working_set_hits(base in 0u64..(1u64 << 30)) {
        let base = base & !31; // sector aligned
        let mut c = SectoredCache::new(128 * 1024, 128, 32, 8);
        for _ in 0..2 {
            for off in (0..32 * 1024u64).step_by(32) {
                c.access_sector(base + off);
            }
        }
        // Second pass: 1024 sectors, all hits.
        prop_assert!(c.hits() >= 1024);
    }

    /// Simulated time is monotone in workload size for the same kernel.
    #[test]
    fn gather_time_monotone(rows in 64usize..2048) {
        let mut small = Profiler::new(DeviceConfig::gtx_1080());
        let src = small.alloc(rows * 64 * 4);
        let idx: Vec<usize> = (0..rows).map(|i| (i * 31) % rows).collect();
        small.launch_gather(src, &idx, 64, rows);
        let t_small = small.total_cycles();

        let mut big = Profiler::new(DeviceConfig::gtx_1080());
        let src = big.alloc(2 * rows * 64 * 4);
        let idx: Vec<usize> = (0..2 * rows).map(|i| (i * 31) % (2 * rows)).collect();
        big.launch_gather(src, &idx, 64, 2 * rows);
        prop_assert!(big.total_cycles() >= t_small);
    }

    /// Report time shares always sum to 1 over a non-empty profile.
    #[test]
    fn report_shares_sum_to_one(n in 1usize..6) {
        let mut p = Profiler::new(DeviceConfig::gtx_1080());
        for i in 0..n {
            let buf = p.alloc(4096 * (i + 1));
            p.launch_memcpy(buf, 4096 * (i + 1));
        }
        let r = p.report();
        let total: f64 = r.kernels().iter().map(|k| k.time_share).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(r.kernel(KernelKind::Memcpy).is_some());
    }

    /// Every kernel's SM efficiency and stall fraction stay in [0, 1].
    #[test]
    fn metric_ranges(rows in 32usize..512, feat in 1usize..96) {
        let mut p = Profiler::new(DeviceConfig::gtx_1080());
        let buf = p.alloc(rows * feat * 4);
        let idx: Vec<usize> = (0..rows).map(|i| (i * 17) % rows).collect();
        p.launch_gather(buf, &idx, feat, rows);
        p.launch_scatter(buf, &idx, feat, rows);
        p.launch_sort(buf, rows);
        p.launch_band_gather(buf, rows, 2, feat);
        for k in p.report().kernels() {
            prop_assert!((0.0..=1.0).contains(&k.sm_efficiency), "{:?}", k.kind);
            prop_assert!((0.0..=1.0).contains(&k.stall_pct), "{:?}", k.kind);
            prop_assert!(k.l2_hits <= k.load_transactions);
        }
    }
}
