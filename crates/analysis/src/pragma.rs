//! Inline suppression pragmas.
//!
//! A finding is suppressed by a comment of the form
//! `// mega-lint: allow(unordered-collection, reason = "lookup only")` —
//! the rule id names which rule to silence and the reason string is
//! mandatory and non-empty, so every suppression carries its justification
//! into the source. A pragma silences its own line; when the pragma line
//! carries no code (comment-only), it silences the following line instead,
//! which is the usual "pragma above the offending statement" shape.
//!
//! Anything that *looks* like a pragma but does not parse — wrong shape,
//! unknown rule id, missing or empty reason — is itself reported under the
//! `bad-pragma` rule, so a typo cannot silently disable enforcement.
//! `bad-pragma` findings are never suppressible.

use crate::scan::Line;
use crate::{Finding, Rule};
use std::collections::BTreeSet;

const MARKER: &str = "mega-lint:";

/// The set of `(line, rule)` pairs silenced by pragmas in one file.
#[derive(Debug, Default)]
pub struct Suppressions {
    allowed: BTreeSet<(usize, Rule)>,
}

impl Suppressions {
    /// True when `rule` findings on 1-based `line` are silenced.
    pub fn covers(&self, line: usize, rule: Rule) -> bool {
        rule != Rule::BadPragma && self.allowed.contains(&(line, rule))
    }
}

/// Scans every comment for pragmas; returns the suppression set plus a
/// `bad-pragma` finding for each malformed one.
pub fn collect(path: &str, lines: &[Line]) -> (Suppressions, Vec<Finding>) {
    let mut sup = Suppressions::default();
    let mut bad = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.comment.find(MARKER) else {
            continue;
        };
        match parse(&line.comment[pos + MARKER.len()..]) {
            Ok(rule) => {
                sup.allowed.insert((lineno, rule));
                if line.is_comment_only() {
                    sup.allowed.insert((lineno + 1, rule));
                }
            }
            Err(why) => bad.push(Finding {
                file: path.to_string(),
                line: lineno,
                rule: Rule::BadPragma,
                message: why,
            }),
        }
    }
    (sup, bad)
}

/// Parses the text after the pragma marker into the rule it allows.
fn parse(text: &str) -> Result<Rule, String> {
    const SHAPE: &str = "pragma must be `mega-lint: allow(<rule>, reason = \"...\")`";
    let body = text
        .trim_start()
        .strip_prefix("allow")
        .ok_or(SHAPE)?
        .trim_start()
        .strip_prefix('(')
        .ok_or(SHAPE)?;
    let inner = &body[..body.rfind(')').ok_or(SHAPE)?];
    let (rule_name, rest) = inner.split_once(',').ok_or(SHAPE)?;
    let rule = Rule::from_id(rule_name.trim())
        .ok_or_else(|| format!("pragma names unknown rule `{}`", rule_name.trim()))?;
    let reason = rest
        .trim()
        .strip_prefix("reason")
        .ok_or(SHAPE)?
        .trim_start()
        .strip_prefix('=')
        .ok_or(SHAPE)?
        .trim_start()
        .strip_prefix('"')
        .ok_or(SHAPE)?;
    let quoted = &reason[..reason.rfind('"').ok_or(SHAPE)?];
    if quoted.trim().is_empty() {
        return Err("pragma reason must not be empty".to_string());
    }
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;

    #[test]
    fn valid_pragma_covers_own_and_next_line() {
        let lines = strip(
            "// mega-lint: allow(unordered-collection, reason = \"membership only\")\nlet x = 1;",
        );
        let (sup, bad) = collect("f.rs", &lines);
        assert!(bad.is_empty());
        assert!(sup.covers(1, Rule::UnorderedCollection));
        assert!(sup.covers(2, Rule::UnorderedCollection));
        assert!(!sup.covers(2, Rule::NoFma));
        assert!(!sup.covers(3, Rule::UnorderedCollection));
    }

    #[test]
    fn trailing_pragma_covers_only_its_line() {
        let lines =
            strip("let x = 1; // mega-lint: allow(obs-routing, reason = \"usage text\")\nnext();");
        let (sup, _) = collect("f.rs", &lines);
        assert!(sup.covers(1, Rule::ObsRouting));
        assert!(!sup.covers(2, Rule::ObsRouting));
    }

    #[test]
    fn malformed_pragmas_are_reported() {
        let src = "// mega-lint: allow(no-fma)\n// mega-lint: allow(not-a-rule, reason = \"x\")\n// mega-lint: allow(no-fma, reason = \"\")";
        let (sup, bad) = collect("f.rs", &strip(src));
        assert_eq!(bad.len(), 3);
        assert!(bad.iter().all(|f| f.rule == Rule::BadPragma));
        assert!(bad[1].message.contains("unknown rule"));
        assert!(bad[2].message.contains("must not be empty"));
        assert!(!sup.covers(1, Rule::NoFma));
        assert!(!sup.covers(2, Rule::NoFma));
    }

    #[test]
    fn pragma_inside_string_literal_is_inert() {
        let lines = strip("let s = \"mega-lint: allow(no-fma)\";");
        let (_, bad) = collect("f.rs", &lines);
        assert!(bad.is_empty());
    }

    #[test]
    fn bad_pragma_is_never_suppressible() {
        let mut sup = Suppressions::default();
        sup.allowed.insert((1, Rule::BadPragma));
        assert!(!sup.covers(1, Rule::BadPragma));
    }
}
