//! ZINC-like molecular regression dataset.
//!
//! Real ZINC graphs are small organic molecules: ~23 atoms, ~24 bonds (the
//! paper's Table II lists 50 adjacency slots), sparsity ≈ 0.096, a tight
//! low-degree distribution. The synthetic equivalent samples bounded-branch
//! molecular chains with a few ring closures, categorical "atom type" node
//! features and "bond type" edge features.
//!
//! **Target.** A solubility-flavored scalar computable from structure and
//! features:
//!
//! ```text
//! y = 0.8·mean_degree + 1.5·frac(atom type 0) − 0.6·rings + 0.3·mean_bond
//! ```
//!
//! where `rings = m − n + components` is the cyclomatic number. Both engines
//! (baseline and MEGA) can learn it from 1-hop aggregations stacked a few
//! layers deep, which is what the convergence experiments need.

use crate::sample::{Dataset, GraphSample, Target, Task};
use crate::spec::DatasetSpec;
use mega_graph::{algo, generate, Graph};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Atom-type vocabulary size of the synthetic molecules.
pub const NODE_VOCAB: usize = 8;
/// Bond-type vocabulary size.
pub const EDGE_VOCAB: usize = 4;

pub(crate) struct MolecularParams {
    pub name: &'static str,
    pub nodes_mean: usize,
    pub nodes_jitter: usize,
    pub ring_closures: usize,
    pub max_branch: usize,
}

pub(crate) fn molecular_dataset(spec: &DatasetSpec, p: &MolecularParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let make = |count: usize, rng: &mut StdRng| -> Vec<GraphSample> {
        (0..count).map(|_| molecular_sample(p, rng)).collect()
    };
    let train = make(spec.train, &mut rng);
    let val = make(spec.val, &mut rng);
    let test = make(spec.test, &mut rng);
    Dataset {
        name: p.name.to_string(),
        task: Task::Regression,
        node_vocab: NODE_VOCAB,
        edge_vocab: EDGE_VOCAB,
        train,
        val,
        test,
    }
}

fn molecular_sample(p: &MolecularParams, rng: &mut StdRng) -> GraphSample {
    let jitter = if p.nodes_jitter == 0 {
        0
    } else {
        rng.gen_range(0..=2 * p.nodes_jitter)
    };
    let n = (p.nodes_mean + jitter)
        .saturating_sub(p.nodes_jitter)
        .max(4);
    let rings = rng.gen_range(0..=p.ring_closures);
    let graph: Graph = generate::molecular_chain(n, rings, p.max_branch, rng)
        .expect("molecular generator with n >= 4 cannot fail");
    // Skewed atom types, as in real molecules (carbon dominates).
    let node_features: Vec<usize> = (0..graph.node_count())
        .map(|_| {
            let r: f64 = rng.gen();
            if r < 0.55 {
                0
            } else if r < 0.75 {
                1
            } else {
                rng.gen_range(2..NODE_VOCAB)
            }
        })
        .collect();
    let edge_features: Vec<usize> = (0..graph.edge_count())
        .map(|_| rng.gen_range(0..EDGE_VOCAB))
        .collect();
    let target = Target::Regression(molecular_target(&graph, &node_features, &edge_features));
    GraphSample {
        graph,
        node_features,
        edge_features,
        target,
    }
}

/// The synthetic solubility target (documented in the module docs).
pub fn molecular_target(graph: &Graph, node_features: &[usize], edge_features: &[usize]) -> f32 {
    let n = graph.node_count().max(1) as f32;
    let m = graph.edge_count() as f32;
    let (_, components) = algo::connected_components(graph);
    let rings = (m - n + components as f32).max(0.0);
    let type0 = node_features.iter().filter(|&&t| t == 0).count() as f32 / n;
    let mean_bond = if edge_features.is_empty() {
        0.0
    } else {
        edge_features.iter().sum::<usize>() as f32 / edge_features.len() as f32
    };
    0.8 * graph.mean_degree() as f32 + 1.5 * type0 - 0.6 * rings / n * 10.0 + 0.3 * mean_bond
}

/// Generates the ZINC-like dataset (Table II row: 23 nodes, ~24 bonds,
/// sparsity ≈ 0.10).
pub fn zinc(spec: &DatasetSpec) -> Dataset {
    molecular_dataset(
        spec,
        &MolecularParams {
            name: "ZINC",
            nodes_mean: 23,
            nodes_jitter: 4,
            ring_closures: 3,
            max_branch: 3,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zinc_matches_table_ii_statistics() {
        let ds = zinc(&DatasetSpec::small(1));
        assert!(ds.validate());
        let st = ds.stats(64);
        assert!(
            (st.mean_nodes - 23.0).abs() < 2.0,
            "nodes {}",
            st.mean_nodes
        );
        // Table II sparsity 0.096.
        assert!(
            (st.mean_sparsity - 0.096).abs() < 0.03,
            "sparsity {}",
            st.mean_sparsity
        );
        // Table III: tight degree distribution, high KS similarity.
        assert!(
            st.mean_degree_std < 1.2,
            "degree std {}",
            st.mean_degree_std
        );
        assert!(st.mean_ks_similarity > 0.75, "ks {}", st.mean_ks_similarity);
    }

    #[test]
    fn splits_have_requested_sizes() {
        let spec = DatasetSpec::tiny(2);
        let ds = zinc(&spec);
        assert_eq!(ds.train.len(), spec.train);
        assert_eq!(ds.val.len(), spec.val);
        assert_eq!(ds.test.len(), spec.test);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = zinc(&DatasetSpec::tiny(3));
        let b = zinc(&DatasetSpec::tiny(3));
        assert_eq!(a.train[0].graph.edge_list(), b.train[0].graph.edge_list());
        assert_eq!(a.train[0].node_features, b.train[0].node_features);
        let c = zinc(&DatasetSpec::tiny(4));
        assert_ne!(a.train[0].node_features, c.train[0].node_features);
    }

    #[test]
    fn targets_vary_and_are_feature_dependent() {
        let ds = zinc(&DatasetSpec::tiny(5));
        let values: Vec<f32> = ds.train.iter().map(|s| s.target.value()).collect();
        let min = values.iter().cloned().fold(f32::MAX, f32::min);
        let max = values.iter().cloned().fold(f32::MIN, f32::max);
        assert!(max - min > 0.1, "targets nearly constant: [{min}, {max}]");
        // Changing a node feature changes the target.
        let s = &ds.train[0];
        let mut altered = s.node_features.clone();
        altered[0] = if altered[0] == 0 { 1 } else { 0 };
        let y0 = molecular_target(&s.graph, &s.node_features, &s.edge_features);
        let y1 = molecular_target(&s.graph, &altered, &s.edge_features);
        assert!((y0 - y1).abs() > 1e-6);
    }
}
