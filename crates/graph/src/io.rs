//! Plain-text and JSON graph I/O.
//!
//! The text format is the ubiquitous whitespace edge list: one `src dst`
//! pair per line, `#`-prefixed comment lines ignored. Node count is inferred
//! as `max id + 1` unless a `# nodes: N` header pins it (needed for trailing
//! isolated nodes).

use crate::coo::EdgeList;
use crate::error::GraphError;
use crate::graph::{Direction, Graph};
use std::io::{BufRead, Write};

/// Parses a whitespace edge list.
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] on malformed lines or ids.
/// * Propagates [`Graph::from_edge_list`] validation errors.
///
/// # Example
///
/// ```
/// use mega_graph::io::read_edge_list;
/// use mega_graph::Direction;
///
/// let text = "# nodes: 4\n0 1\n1 2\n";
/// let g = read_edge_list(text.as_bytes(), Direction::Undirected).unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 2);
/// ```
pub fn read_edge_list<R: BufRead>(reader: R, direction: Direction) -> Result<Graph, GraphError> {
    let mut pairs = Vec::new();
    let mut max_id = 0usize;
    let mut pinned_nodes: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::InvalidParameter {
            name: "reader",
            reason: format!("I/O error at line {}: {e}", lineno + 1),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("nodes:") {
                pinned_nodes =
                    Some(n.trim().parse().map_err(|_| GraphError::InvalidParameter {
                        name: "nodes",
                        reason: format!("bad node-count header at line {}", lineno + 1),
                    })?);
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, GraphError> {
            tok.ok_or_else(|| GraphError::InvalidParameter {
                name: "line",
                reason: format!("expected `src dst` at line {}", lineno + 1),
            })?
            .parse()
            .map_err(|_| GraphError::InvalidParameter {
                name: "line",
                reason: format!("non-integer id at line {}", lineno + 1),
            })
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        max_id = max_id.max(s).max(d);
        pairs.push((s, d));
    }
    let n = match pinned_nodes {
        Some(n) => n,
        None if pairs.is_empty() => {
            return Err(GraphError::Empty);
        }
        None => max_id + 1,
    };
    let coo = EdgeList::from_pairs(n, pairs)?;
    Graph::from_edge_list(coo, direction)
}

/// Writes the graph in the text edge-list format (with a node-count header).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] wrapping any I/O failure.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    let io_err = |e: std::io::Error| GraphError::InvalidParameter {
        name: "writer",
        reason: format!("I/O error: {e}"),
    };
    writeln!(writer, "# nodes: {}", g.node_count()).map_err(io_err)?;
    for (s, d) in g.edges() {
        writeln!(writer, "{s} {d}").map_err(io_err)?;
    }
    Ok(())
}

/// Serializes a graph to JSON (via serde).
///
/// # Panics
///
/// Never — the graph types serialize infallibly.
pub fn to_json(g: &Graph) -> String {
    serde_json::to_string(g).expect("graph serialization is infallible")
}

/// Deserializes a graph from JSON.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] when the JSON is malformed.
pub fn from_json(json: &str) -> Result<Graph, GraphError> {
    serde_json::from_str(json).map_err(|e| GraphError::InvalidParameter {
        name: "json",
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn round_trip_text() {
        let g = generate::barabasi_albert(
            30,
            2,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], Direction::Undirected).unwrap();
        assert_eq!(g.node_count(), back.node_count());
        assert_eq!(g.edge_list(), back.edge_list());
    }

    #[test]
    fn header_pins_isolated_nodes() {
        let g = read_edge_list("# nodes: 10\n0 1\n".as_bytes(), Direction::Undirected).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\n0 1\n\n1 2\n";
        let g = read_edge_list(text.as_bytes(), Direction::Undirected).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(read_edge_list("0\n".as_bytes(), Direction::Undirected).is_err());
        assert!(read_edge_list("a b\n".as_bytes(), Direction::Undirected).is_err());
        assert!(read_edge_list("".as_bytes(), Direction::Undirected).is_err());
    }

    #[test]
    fn round_trip_json() {
        let g = generate::cycle(7).unwrap();
        let back = from_json(&to_json(&g)).unwrap();
        assert_eq!(g, back);
        assert!(from_json("{not json").is_err());
    }
}
